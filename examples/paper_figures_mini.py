"""Miniature reproduction of the paper's evaluation figures (§6.4).

Runs the same sweeps as Figures 7–10 at small, laptop-instant sizes and prints
the (x, y) series each figure plots: the spectral bound and the convex min-cut
baseline against the graph size parameter, plus the spectral bound against the
published analytical growth term.  For the full-size sweeps use the benchmark
harness (``pytest benchmarks/ --benchmark-only``).

Run with:  python examples/paper_figures_mini.py
"""

from __future__ import annotations

import math

from repro.analysis.figures import series_from_rows
from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    naive_matmul_graph,
    strassen_graph,
)

FIGURES = [
    {
        "name": "Figure 7 (FFT)",
        "family": "fft",
        "builder": fft_graph,
        "sizes": [4, 5, 6, 7, 8],
        "memory_sizes": [4, 8],
        "growth_term": lambda r: r.size_param * 2**r.size_param,
        "growth_label": "l * 2^l",
        "convex_cap": 500,
    },
    {
        "name": "Figure 8 (naive matmul)",
        "family": "naive-matmul",
        "builder": lambda n: naive_matmul_graph(n, reduction="flat"),
        "sizes": [4, 8, 12],
        "memory_sizes": [32, 64],
        "growth_term": lambda r: r.size_param**3,
        "growth_label": "n^3",
        "convex_cap": 800,
    },
    {
        "name": "Figure 9 (Strassen)",
        "family": "strassen",
        "builder": strassen_graph,
        "sizes": [4, 8],
        "memory_sizes": [8, 16],
        "growth_term": lambda r: r.size_param ** math.log2(7),
        "growth_label": "n^(log2 7)",
        "convex_cap": 800,
    },
    {
        "name": "Figure 10 (Bellman-Held-Karp)",
        "family": "bellman-held-karp",
        "builder": bellman_held_karp_graph,
        "sizes": [6, 8, 10, 11],
        "memory_sizes": [16, 32],
        "growth_term": lambda r: 2**r.size_param / r.size_param,
        "growth_label": "2^l / l",
        "convex_cap": 300,
    },
]


def run_figure(config) -> None:
    rows = sweep(
        config["family"],
        config["builder"],
        size_params=config["sizes"],
        memory_sizes=config["memory_sizes"],
        methods=("spectral", "convex-min-cut"),
        max_vertices={"convex-min-cut": config["convex_cap"]},
    )
    print("=" * 72)
    print(config["name"])
    print("=" * 72)
    print(format_table(rows, columns=["size_param", "num_vertices", "memory_size", "method", "bound", "best_k"]))
    top = series_from_rows("vs size", rows, x_of=lambda r: r.size_param, x_label="size")
    bottom = series_from_rows(
        "vs growth term",
        [r for r in rows if r.method == "spectral"],
        x_of=config["growth_term"],
        x_label=config["growth_label"],
    )
    for figure in (top, bottom):
        print(f"\n  [{figure.name}]  bound vs {figure.x_label}")
        for label, points in sorted(figure.series.items()):
            series = ", ".join(f"({x:g}, {y:.1f})" for x, y in points)
            print(f"    {label}: {series}")
    print()


if __name__ == "__main__":
    for figure_config in FIGURES:
        run_figure(figure_config)
