"""Closed-form analytical bounds (Section 5): hypercube, butterfly, random graphs.

Shows how to use the library as a *proof assistant* rather than a numerical
tool: when the Laplacian spectrum of a computation graph is known in closed
form, the spectral method yields pencil-and-paper I/O lower bounds.  The
script evaluates the paper's closed forms, checks them against the numerical
bounds on the generated graphs, and prints the butterfly-spectrum derivation
(Theorem 7) for a small instance.

Run with:  python examples/closed_form_analysis.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.closed_form import (
    erdos_renyi_io_bound,
    fft_io_bound,
    hypercube_io_bound,
    hypercube_io_bound_alpha1,
    published_fft_bound,
)
from repro.core.bounds import spectral_bound_unnormalized
from repro.core.spectra import butterfly_laplacian_spectrum, butterfly_spectrum_array
from repro.graphs.generators import bellman_held_karp_graph, erdos_renyi_dag, fft_graph
from repro.graphs.laplacian import laplacian
from repro.solvers.dense import dense_spectrum


def hypercube_section() -> None:
    print("== §5.1  Bellman-Held-Karp (hypercube) ==")
    for cities, memory in ((10, 16), (12, 16), (14, 32)):
        closed = hypercube_io_bound(cities, memory)
        simple = max(0.0, hypercube_io_bound_alpha1(cities, memory))
        print(
            f"  l={cities:2d} M={memory:3d}:  closed form = {closed.value:10.1f} "
            f"(alpha={closed.alpha}, k={closed.k}),  alpha=1 form = {simple:10.1f}"
        )
    graph = bellman_held_karp_graph(10)
    numeric = spectral_bound_unnormalized(graph, 16)
    print(f"  numerical Theorem-5 bound on the generated graph (l=10, M=16): {numeric.value:.1f}\n")


def butterfly_section() -> None:
    print("== §5.2 + Theorem 7  FFT (unwrapped butterfly) ==")
    levels = 4
    closed_spectrum = butterfly_spectrum_array(levels)
    numeric_spectrum = dense_spectrum(laplacian(fft_graph(levels), normalized=False))
    error = float(np.max(np.abs(np.sort(numeric_spectrum) - closed_spectrum)))
    multiplicities = butterfly_laplacian_spectrum(levels)
    print(f"  B_{levels}: {len(closed_spectrum)} eigenvalues, "
          f"{len(multiplicities)} distinct (value, multiplicity) pairs, "
          f"closed-form vs numeric max error = {error:.2e}")
    for value, mult in sorted(multiplicities)[:5]:
        print(f"    lambda = {value:8.5f}   multiplicity {mult}")
    print("    ...")
    for levels, memory in ((12, 4), (16, 8), (20, 16)):
        closed = fft_io_bound(levels, memory)
        tight = published_fft_bound(levels, memory)
        print(
            f"  l={levels:2d} M={memory:3d}:  spectral closed form = {closed.value:12.1f}   "
            f"published tight growth term l*2^l/log M = {tight:12.1f}"
        )
    print()


def random_graph_section() -> None:
    print("== §5.3  Erdős–Rényi graphs ==")
    memory = 8
    for n in (500, 1000, 2000):
        p_sparse = 12.0 * math.log(n) / (n - 1)
        p_dense = 0.3
        sparse_pred = erdos_renyi_io_bound(n, p_sparse, memory, regime="sparse")
        dense_pred = erdos_renyi_io_bound(n, p_dense, memory, regime="dense")
        measured = spectral_bound_unnormalized(
            erdos_renyi_dag(n, p_dense, seed=n), memory, num_eigenvalues=10
        )
        print(
            f"  n={n:5d}:  sparse-regime prediction = {sparse_pred:8.1f}   "
            f"dense-regime prediction = {dense_pred:8.1f}   "
            f"measured (one dense sample) = {measured.value:8.1f}"
        )
    print()


if __name__ == "__main__":
    hypercube_section()
    butterfly_section()
    random_graph_section()
