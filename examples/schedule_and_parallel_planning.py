"""Using the bounds to judge schedules and parallel distributions.

A lower bound is most useful next to an achievable number: this example

1. simulates several concrete schedules (natural, DFS, locality-greedy) of the
   Bellman-Held-Karp graph under different eviction policies and compares
   their I/O against the spectral lower bound — showing how much headroom a
   scheduler still has, and
2. evaluates the parallel bound of Theorem 6 for increasing processor counts
   and compares it with a concrete block-distributed execution.

Run with:  python examples/schedule_and_parallel_planning.py
"""

from __future__ import annotations

from repro import parallel_spectral_bound, spectral_bound
from repro.graphs.generators import bellman_held_karp_graph, fft_graph
from repro.graphs.stats import graph_stats
from repro.parallel.assignment import contiguous_assignment, round_robin_assignment
from repro.parallel.bound import parallel_io_per_processor
from repro.pebbling import make_schedule, simulate_order


def schedule_comparison() -> None:
    graph = bellman_held_karp_graph(10)
    memory = 16
    print("Schedule comparison on the 10-city Bellman-Held-Karp graph")
    print(f"  {graph_stats(graph)}")
    lower = spectral_bound(graph, memory)
    print(f"  spectral lower bound at M={memory}: {lower.value:.0f} I/Os\n")

    print(f"  {'schedule':<10} {'policy':<8} {'reads':>8} {'writes':>8} {'total':>8} {'vs bound':>9}")
    for schedule_name in ("natural", "dfs", "min-live"):
        order = make_schedule(graph, schedule_name)
        for policy in ("belady", "lru"):
            sim = simulate_order(graph, order, memory, policy=policy)
            ratio = sim.total_io / lower.value if lower.value else float("inf")
            print(
                f"  {schedule_name:<10} {policy:<8} {sim.reads:>8} {sim.writes:>8} "
                f"{sim.total_io:>8} {ratio:>8.1f}x"
            )
    print("  (every schedule sits above the lower bound; the gap is the scheduler's headroom)\n")


def parallel_planning() -> None:
    graph = fft_graph(9)
    memory = 8
    print("Parallel planning on the 2^9-point FFT butterfly")
    print(f"  {graph_stats(graph)}")
    for processors in (1, 2, 4, 8):
        lower = parallel_spectral_bound(graph, memory, num_processors=processors)
        block = parallel_io_per_processor(
            graph, contiguous_assignment(graph, processors), memory
        )
        scattered = parallel_io_per_processor(
            graph, round_robin_assignment(graph, processors), memory
        )
        worst_block = max(p.total_io for p in block)
        worst_scattered = max(p.total_io for p in scattered)
        print(
            f"  p={processors}:  Theorem-6 lower bound (worst processor) = {lower.value:8.1f}   "
            f"block distribution = {worst_block:6d}   round-robin = {worst_scattered:6d}"
        )
    print("  (the lower bound holds for *every* distribution; the two concrete ones show the")
    print("   price of ignoring locality when assigning vertices to processors)")


if __name__ == "__main__":
    schedule_comparison()
    parallel_planning()
