"""Tracing arbitrary Python computations (the "solver" of §6.1).

The paper's evaluation extracts computation graphs by tracing ordinary Python
code.  This example traces three programs you could have written yourself —
a polynomial evaluator, a small neural-network-style layer, and a blocked
matrix multiply — and computes spectral I/O lower bounds for each, without
ever constructing a graph by hand.

Run with:  python examples/trace_your_own_computation.py
"""

from __future__ import annotations

from repro import spectral_bound, trace_computation
from repro.graphs.stats import graph_stats
from repro.trace import custom_op


def horner(coefficients, x):
    """Polynomial evaluation — a purely sequential, I/O-friendly computation."""
    acc = coefficients[0]
    for c in coefficients[1:]:
        acc = acc * x + c
    return acc


@custom_op("relu")
def relu(value):
    """A custom scalar op: traced as a single vertex with one operand."""
    return max(0.0, value)


def tiny_mlp_layer(inputs, weights):
    """One dense layer with a ReLU: outputs[j] = relu(sum_i inputs[i]*W[i][j])."""
    outputs = []
    for j in range(len(weights[0])):
        acc = inputs[0] * weights[0][j]
        for i in range(1, len(inputs)):
            acc = acc + inputs[i] * weights[i][j]
        outputs.append(relu(acc))
    return outputs


def blocked_matmul(a, b):
    """Naive matrix multiply written as plain nested loops."""
    n = len(a)
    c = []
    for i in range(n):
        row = []
        for j in range(n):
            acc = a[i][0] * b[0][j]
            for k in range(1, n):
                acc = acc + a[i][k] * b[k][j]
            row.append(acc)
        c.append(row)
    return c


def analyse(name: str, graph, memory_sizes=(4, 8, 16)) -> None:
    print(f"{name}: {graph_stats(graph)}")
    for memory in memory_sizes:
        if graph.max_in_degree + 1 > memory:
            print(f"  M = {memory:3d}:  infeasible (an operation needs more operands than M-1)")
            continue
        result = spectral_bound(graph, memory)
        print(f"  M = {memory:3d}:  spectral lower bound = {result.value:8.2f}")
    print()


if __name__ == "__main__":
    poly_graph, _ = trace_computation(horner, [1.0, -2.0, 3.0, 0.5, 2.25, -1.0], 1.7)
    analyse("Horner polynomial evaluation (sequential, low I/O)", poly_graph)

    mlp_graph, _ = trace_computation(
        tiny_mlp_layer,
        [0.5] * 16,                              # 16 inputs
        [[0.1] * 8 for _ in range(16)],          # 16x8 weight matrix
    )
    analyse("Dense layer + ReLU (16 -> 8)", mlp_graph)

    n = 6
    matmul_graph, _ = trace_computation(
        blocked_matmul,
        [[1.0] * n for _ in range(n)],
        [[2.0] * n for _ in range(n)],
    )
    analyse(f"Traced {n}x{n} matrix multiplication", matmul_graph, memory_sizes=(8, 16, 32))
