"""Quickstart: spectral I/O lower bounds in five minutes.

This script walks through the core workflow of the library:

1. build (or trace) a computation graph,
2. compute the spectral I/O lower bound of Theorem 4 for a fast-memory size,
3. compare it with the Theorem 5 variant, the convex min-cut baseline and a
   concrete simulated schedule (an upper bound),
4. look at how the bound scales with the memory size.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ComputationGraph, fft_graph, spectral_bound, spectral_bound_unnormalized
from repro.baselines.convex_mincut import convex_min_cut_bound
from repro.graphs.stats import graph_stats
from repro.pebbling import best_simulated_io


def manual_graph_example() -> None:
    """Build the inner-product graph of Figure 1 by hand and bound it."""
    graph = ComputationGraph()
    x0, x1 = graph.add_vertex(label="x0", op="input"), graph.add_vertex(label="x1", op="input")
    y0, y1 = graph.add_vertex(label="y0", op="input"), graph.add_vertex(label="y1", op="input")
    p0, p1 = graph.add_vertex(op="mul"), graph.add_vertex(op="mul")
    s = graph.add_vertex(label="dot", op="add")
    graph.add_edges([(x0, p0), (y0, p0), (x1, p1), (y1, p1), (p0, s), (p1, s)])

    print("Figure-1 inner product graph:", graph_stats(graph))
    result = spectral_bound(graph, M=3)
    print(f"  spectral lower bound at M=3: {result.value:.2f} (best k = {result.best_k})")
    print("  (tiny graphs fit in cache, so a trivial bound of 0 is expected)\n")


def fft_example() -> None:
    """The paper's headline workload: the FFT butterfly graph."""
    levels, memory = 8, 4
    graph = fft_graph(levels)
    print(f"2^{levels}-point FFT butterfly:", graph_stats(graph))

    lower_t4 = spectral_bound(graph, memory)
    lower_t5 = spectral_bound_unnormalized(graph, memory)
    baseline = convex_min_cut_bound(
        graph, memory, vertices=range(0, graph.num_vertices, 16)
    )
    upper = best_simulated_io(graph, memory, num_random_orders=1)

    print(f"  Theorem 4 spectral bound  (M={memory}): {lower_t4.value:8.1f}  (k = {lower_t4.best_k})")
    print(f"  Theorem 5 variant         (M={memory}): {lower_t5.value:8.1f}")
    print(f"  convex min-cut baseline   (M={memory}): {baseline.value:8.1f}")
    print(f"  best simulated schedule   (M={memory}): {upper.total_io:8d}  (upper bound)")
    print("  --> any schedule for this FFT must move at least the spectral-bound")
    print("      number of values between fast and slow memory.\n")


def memory_scaling_example() -> None:
    """How the bound decays as fast memory grows (one line per M)."""
    graph = fft_graph(9)
    print("Memory scaling on the 2^9-point FFT:")
    for memory in (4, 8, 16, 32):
        result = spectral_bound(graph, memory)
        print(f"  M = {memory:3d}:  lower bound = {result.value:8.1f}   (best k = {result.best_k})")
    print()


if __name__ == "__main__":
    manual_graph_example()
    fft_example()
    memory_scaling_example()
