"""Pytest configuration for the repository root.

Adds ``src/`` to ``sys.path`` so the test-suite and benchmarks run against
the in-tree sources even when the package has not been installed (useful in
fully offline environments where editable installs are awkward).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
