"""Validation bench — sandwiching the optimal I/O between lower and upper bounds.

Not a paper figure, but the strongest end-to-end check the library offers: for
every evaluation graph family,

    convex-min-cut bound,  spectral bound   <=   J*_G   <=   best simulated schedule.

The bench reports all three numbers side by side (together with the gap), so a
reader can see how tight the spectral bound is against an achievable schedule,
and asserts the ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.baselines.convex_mincut import convex_min_cut_bound
from repro.baselines.exact import minimum_io_upper_bound
from repro.core.bounds import spectral_bound
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    naive_matmul_graph,
    strassen_graph,
)

CASES = [
    ("fft", lambda: fft_graph(pick(6, 8)), 4),
    ("bellman-held-karp", lambda: bellman_held_karp_graph(pick(9, 11)), 16),
    ("naive-matmul", lambda: naive_matmul_graph(pick(6, 10), reduction="flat"), 16),
    ("strassen", lambda: strassen_graph(8), 8),
]


@pytest.fixture(scope="module")
def sandwich_rows():
    rows = []
    for family, builder, M in CASES:
        graph = builder()
        spectral = spectral_bound(graph, M)
        convex = convex_min_cut_bound(
            graph, M, vertices=range(0, graph.num_vertices, max(1, graph.num_vertices // 150))
        )
        upper = minimum_io_upper_bound(graph, M, policies=("belady",), num_random_orders=2)
        rows.append(
            {
                "family": family,
                "n": graph.num_vertices,
                "M": M,
                "convex_min_cut_lower": convex.value,
                "spectral_lower": spectral.value,
                "simulated_upper": upper.total_io,
                "upper_over_spectral": (
                    round(upper.total_io / spectral.value, 2) if spectral.value > 0 else None
                ),
            }
        )
    return rows


def test_sandwich_lower_below_upper(benchmark, sandwich_rows):
    rows = sandwich_rows
    family, builder, M = CASES[0]
    run_once(benchmark, lambda: spectral_bound(builder(), M))

    print_dict_rows("Sandwich: lower bounds vs achievable schedules", rows, csv_name="sandwich")

    for row in rows:
        assert row["spectral_lower"] <= row["simulated_upper"] + 1e-9
        assert row["convex_min_cut_lower"] <= row["simulated_upper"] + 1e-9
