"""Figure 7 — I/O lower bounds for the 2^l-point FFT butterfly.

Top panel: computed bound vs ``l`` for ``M ∈ {4, 8, 16}``, spectral method vs
convex min-cut baseline.  Bottom panel: the spectral bound vs the published
growth term ``l·2^l`` (should be roughly linear, §6.4).

Defaults sweep ``l = 3..9`` with the convex baseline capped at graphs of ~500
vertices; set ``REPRO_BENCH_LARGE=1`` for the paper's ``l = 3..12`` range.
"""

from __future__ import annotations

import pytest

from benchmarks.common import check_series_shape, pick, print_figure, print_rows, run_once
from repro.analysis.figures import series_from_rows
from repro.analysis.sweep import sweep
from repro.graphs.generators import fft_graph

MEMORY_SIZES = [4, 8, 16]
LEVELS = pick(list(range(3, 10)), list(range(3, 13)))
CONVEX_MAX_VERTICES = pick(500, 2500)


def _run_sweep():
    return sweep(
        "fft",
        fft_graph,
        size_params=LEVELS,
        memory_sizes=MEMORY_SIZES,
        methods=("spectral", "convex-min-cut"),
        max_vertices={"convex-min-cut": CONVEX_MAX_VERTICES},
    )


@pytest.fixture(scope="module")
def fft_rows():
    return _run_sweep()


def test_fig07_fft_bounds(benchmark, fft_rows):
    """Regenerate both panels of Figure 7 and time the full sweep."""
    rows = fft_rows
    # Time one representative bound computation (largest graph, M=4).
    largest = max(LEVELS)
    from repro.core.bounds import spectral_bound

    run_once(benchmark, lambda: spectral_bound(fft_graph(largest), 4))

    print_rows("Figure 7 data: FFT I/O lower bounds", rows, csv_name="fig07_fft")
    top = series_from_rows("fig7-top", rows, x_of=lambda r: r.size_param, x_label="l")
    bottom = series_from_rows(
        "fig7-bottom",
        [r for r in rows if r.method == "spectral"],
        x_of=lambda r: r.size_param * 2**r.size_param,
        x_label="l * 2^l",
    )
    print_figure(top)
    print_figure(bottom)

    # Shape checks (§6.4): the spectral bound grows with l·2^l roughly linearly.
    check_series_shape(
        [r for r in rows if r.method == "spectral"],
        x_of=lambda r: r.size_param * 2**r.size_param,
        min_r_squared=0.8,
    )
    # The spectral bound dominates the convex min-cut baseline on the largest
    # graphs where both were evaluated (the paper's headline comparison).
    spectral_by_key = {
        (r.size_param, r.memory_size): r.bound for r in rows if r.method == "spectral"
    }
    convex_rows = [r for r in rows if r.method == "convex-min-cut"]
    if convex_rows:
        largest_convex = max(r.size_param for r in convex_rows)
        for r in convex_rows:
            if r.size_param == largest_convex and r.memory_size == 4:
                assert spectral_by_key[(max(LEVELS), 4)] >= r.bound
