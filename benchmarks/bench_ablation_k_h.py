"""Ablation (§6.5) — sensitivity to the eigenvalue truncation ``h`` and the
partition count ``k``.

The paper computes up to ``h = 100`` eigenvalues and optimises ``k`` over
``{2..h}``, observing that "the best k is usually far below 100 even for
large graphs, so the higher level eigenvalues remain unused".  This bench
quantifies that claim: for the FFT and Bellman-Held-Karp graphs it reports the
bound obtained with ``h ∈ {5, 10, 25, 50, 100}`` and the ``k`` attaining it.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bound
from repro.graphs.generators import bellman_held_karp_graph, fft_graph

H_VALUES = [5, 10, 25, 50, 100]
CASES = [
    ("fft", fft_graph, pick(8, 10), 4),
    ("bellman-held-karp", bellman_held_karp_graph, pick(11, 13), 16),
]


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for family, builder, size, M in CASES:
        graph = builder(size)
        for h in H_VALUES:
            result = spectral_bound(graph, M, num_eigenvalues=h)
            rows.append(
                {
                    "family": family,
                    "size_param": size,
                    "n": graph.num_vertices,
                    "M": M,
                    "h": h,
                    "bound": result.value,
                    "best_k": result.best_k,
                    "eigensolve_seconds": round(result.elapsed_seconds, 4),
                }
            )
    return rows


def test_ablation_num_eigenvalues_and_k(benchmark, ablation_rows):
    rows = ablation_rows
    family, builder, size, M = CASES[0]
    run_once(benchmark, lambda: spectral_bound(builder(size), M, num_eigenvalues=100))

    print_dict_rows("Ablation: bound vs eigenvalue truncation h", rows, csv_name="ablation_k_h")

    for family, _, size, M in CASES:
        family_rows = sorted(
            (r for r in rows if r["family"] == family), key=lambda r: r["h"]
        )
        bounds = [r["bound"] for r in family_rows]
        # More eigenvalues can only help (the k sweep is a superset)...
        assert all(a <= b + 1e-6 for a, b in zip(bounds, bounds[1:]))
        # ...but the paper's point is that h = 100 adds nothing over a moderate
        # truncation because the best k is small.
        full = family_rows[-1]
        assert full["best_k"] < 100
        moderate = next(r for r in family_rows if r["h"] >= full["best_k"])
        assert moderate["bound"] == pytest.approx(full["bound"], rel=1e-6, abs=1e-6)
