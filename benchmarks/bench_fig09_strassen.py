"""Figure 9 — I/O lower bounds for Strassen matrix multiplication.

Top panel: computed bound vs ``n`` for ``M ∈ {8, 16}``.  Bottom panel: the
spectral bound vs the published growth term ``n^{log2 7}``.  The graphs use
the paper's granularity (fused output combinations, max in-degree 4).

Defaults sweep ``n ∈ {4, 8, 16}`` — exactly the paper's range; the convex
min-cut baseline is evaluated for ``n ∈ {4, 8}`` (the ``n = 16`` graph has
~13k vertices, far beyond the baseline's practical reach, mirroring the
paper's cutoff).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import check_series_shape, pick, print_figure, print_rows, run_once
from repro.analysis.figures import series_from_rows
from repro.analysis.sweep import sweep
from repro.graphs.generators import strassen_graph

MEMORY_SIZES = [8, 16]
SIZES = pick([4, 8, 16], [4, 8, 16, 32])
CONVEX_MAX_VERTICES = pick(800, 2500)


@pytest.fixture(scope="module")
def strassen_rows():
    return sweep(
        "strassen",
        strassen_graph,
        size_params=SIZES,
        memory_sizes=MEMORY_SIZES,
        methods=("spectral", "convex-min-cut"),
        num_eigenvalues=60,
        max_vertices={"convex-min-cut": CONVEX_MAX_VERTICES},
    )


def test_fig09_strassen_bounds(benchmark, strassen_rows):
    rows = strassen_rows
    from repro.core.bounds import spectral_bound

    run_once(benchmark, lambda: spectral_bound(strassen_graph(8), 8, num_eigenvalues=60))

    print_rows("Figure 9 data: Strassen I/O lower bounds", rows, csv_name="fig09_strassen")
    print_figure(series_from_rows("fig9-top", rows, x_of=lambda r: r.size_param, x_label="n"))
    print_figure(
        series_from_rows(
            "fig9-bottom",
            [r for r in rows if r.method == "spectral"],
            x_of=lambda r: r.size_param ** math.log2(7),
            x_label="n^{log2 7}",
        )
    )

    check_series_shape(
        [r for r in rows if r.method == "spectral"],
        x_of=lambda r: r.size_param ** math.log2(7),
    )
    # The largest size must produce a non-trivial spectral bound at M=8.
    largest = max(SIZES)
    best = [r for r in rows if r.method == "spectral" and r.size_param == largest and r.memory_size == 8]
    assert best and best[0].bound > 0
