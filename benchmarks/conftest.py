"""Benchmark-suite configuration.

The console output of the benchmark files *is* the reproduction (each bench
prints the table/series of the corresponding paper figure), so the printing
helper in :mod:`benchmarks.common` temporarily disables pytest's output
capture; this hook hands it the capture manager.
"""

from __future__ import annotations


def pytest_configure(config) -> None:
    from benchmarks import common

    common.set_capture_manager(config.pluginmanager.getplugin("capturemanager"))
