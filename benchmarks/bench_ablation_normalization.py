"""Ablation — Theorem 4 (out-degree-normalised Laplacian) vs Theorem 5
(ordinary Laplacian divided by the maximum out-degree).

The paper introduces Theorem 5 as a deliberately looser but closed-form-
friendly variant.  This bench quantifies the gap on all four evaluation graph
families: on graphs with uniform out-degree (the butterfly) the two coincide;
on graphs with skewed out-degrees (hypercube, matmul) Theorem 4 is strictly
tighter.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bounds_for_memory_sizes
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    naive_matmul_graph,
    strassen_graph,
)

CASES = [
    ("fft", lambda: fft_graph(pick(8, 10)), [4, 8]),
    ("bellman-held-karp", lambda: bellman_held_karp_graph(pick(11, 13)), [16, 32]),
    ("naive-matmul", lambda: naive_matmul_graph(pick(12, 16), reduction="flat"), [32, 64]),
    ("strassen", lambda: strassen_graph(8), [8, 16]),
]


@pytest.fixture(scope="module")
def normalization_rows():
    rows = []
    for family, builder, memory_sizes in CASES:
        graph = builder()
        thm4 = spectral_bounds_for_memory_sizes(graph, memory_sizes, normalized=True)
        thm5 = spectral_bounds_for_memory_sizes(graph, memory_sizes, normalized=False)
        for M in memory_sizes:
            rows.append(
                {
                    "family": family,
                    "n": graph.num_vertices,
                    "max_out_degree": graph.max_out_degree,
                    "M": M,
                    "thm4_bound": thm4[M].value,
                    "thm5_bound": thm5[M].value,
                    "gap_ratio": (
                        round(thm4[M].value / thm5[M].value, 3) if thm5[M].value > 0 else None
                    ),
                }
            )
    return rows


def test_ablation_laplacian_normalization(benchmark, normalization_rows):
    rows = normalization_rows
    run_once(
        benchmark,
        lambda: spectral_bounds_for_memory_sizes(fft_graph(pick(8, 10)), [4], normalized=True),
    )

    print_dict_rows("Ablation: Theorem 4 vs Theorem 5 bound strength", rows, csv_name="ablation_normalization")

    for row in rows:
        # Theorem 5 is never tighter than Theorem 4.
        assert row["thm5_bound"] <= row["thm4_bound"] + 1e-6
    # On the butterfly (uniform out-degree 2) the two coincide.
    fft_rows = [r for r in rows if r["family"] == "fft"]
    for row in fft_rows:
        assert row["thm5_bound"] == pytest.approx(row["thm4_bound"], rel=1e-6, abs=1e-6)
    # On the hypercube (out-degrees 0..l) Theorem 4 is strictly tighter
    # wherever the bound is non-trivial.
    bhk_rows = [r for r in rows if r["family"] == "bellman-held-karp" and r["thm4_bound"] > 0]
    assert any(r["thm4_bound"] > r["thm5_bound"] for r in bhk_rows)
