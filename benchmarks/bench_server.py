"""Multi-threaded load generation against the HTTP bounds server.

Three serving-layer claims, measured end to end through real sockets and
recorded in ``BENCH_server.json``:

* **cold vs warm** — a query mix (both spectral normalisations + the
  convex min-cut baseline over the Figure 7 FFT family) served against a
  fresh :class:`SpectrumStore` pays the eigensolves/max-flow calls once;
  the same mix against a *new server process state* on the warm store
  answers every request without a single solve (asserted through
  ``/metrics``: ``repro_eigensolves_total`` and ``repro_flow_calls_total``
  stay 0) and with correspondingly higher throughput;
* **parity** — every HTTP answer equals the direct
  :meth:`BoundService.submit` answer for the same query, float for float;
* **thundering herd** — many threads requesting the same cold graph at
  once pay exactly **one** eigensolve thanks to in-flight coalescing
  (without it, concurrent misses race past the spectrum cache and solve
  redundantly); the coalescing hit rate is recorded.

Defaults are CI-scale; ``REPRO_BENCH_LARGE=1`` lifts the FFT levels and
the thread count.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List

from benchmarks.common import bench_print, pick, run_once, write_perf_record
from repro.runtime.families import GraphSpec
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import SpectrumStore
from repro.server.client import BoundsClient
from repro.server.runner import BoundServer

LEVELS = pick([3, 4, 5], [6, 7, 8])
MEMORY_SIZES = [4, 8, 16, 32]
NUM_EIGENVALUES = 30
THREADS = pick(4, 8)
HERD_THREADS = pick(8, 32)
HERD_REQUESTS_PER_THREAD = 4
HERD_LEVEL = pick(5, 9)


def build_queries() -> List[BoundQuery]:
    queries = []
    for level in LEVELS:
        spec = GraphSpec(family="fft", size_param=level)
        for memory_size in MEMORY_SIZES:
            queries.append(BoundQuery(spec, memory_size))
            queries.append(BoundQuery(spec, memory_size, normalization="unnormalized"))
            queries.append(BoundQuery(spec, memory_size, method="convex-min-cut"))
    return queries


def replay(url: str, queries: List[BoundQuery], threads: int):
    """Fire every query as its own request from a thread pool.

    Returns (answers in query order, elapsed seconds, per-request latency
    seconds).  Any request error propagates — the benchmark must fail
    loudly, not record a partially-served run.
    """
    answers: List = [None] * len(queries)
    latencies: List[float] = [0.0] * len(queries)
    errors: List[BaseException] = []

    def worker(worker_index: int) -> None:
        client = BoundsClient(url)
        try:
            for index in range(worker_index, len(queries), threads):
                request_start = time.perf_counter()
                [answers[index]] = client.bounds([queries[index]])
                latencies[index] = time.perf_counter() - request_start
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(threads)
    ]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return answers, elapsed, latencies


def serve_and_replay(store_root, queries: List[BoundQuery]) -> Dict[str, object]:
    """Boot a fresh server on ``store_root`` and replay the query mix."""
    service = BoundService(
        store=SpectrumStore(store_root), num_eigenvalues=NUM_EIGENVALUES
    )
    with BoundServer(service, port=0) as server:
        server.start()
        answers, elapsed, latencies = replay(server.url, queries, THREADS)
        client = BoundsClient(server.url)
        eigensolves = client.metric("repro_eigensolves_total")
        flow_calls = client.metric("repro_flow_calls_total")
    ordered = sorted(latencies)
    return {
        "answers": answers,
        "seconds": elapsed,
        "rps": len(queries) / elapsed if elapsed > 0 else float("inf"),
        "latency_mean_ms": 1000.0 * sum(latencies) / len(latencies),
        "latency_p95_ms": 1000.0 * ordered[int(0.95 * (len(ordered) - 1))],
        "eigensolves": eigensolves,
        "flow_calls": flow_calls,
    }


def test_server_cold_warm_and_herd(benchmark, tmp_path):
    queries = build_queries()
    store_root = tmp_path / "spectra"

    cold = serve_and_replay(store_root, queries)
    warm = serve_and_replay(store_root, queries)

    # Parity: the HTTP path answers exactly what direct submission answers.
    direct = BoundService(num_eigenvalues=NUM_EIGENVALUES).submit(queries)
    for via_http, reference in zip(cold["answers"], direct):
        assert via_http.bound == reference.bound
        assert via_http.raw_value == reference.raw_value
    assert [a.bound for a in warm["answers"]] == [a.bound for a in cold["answers"]]

    # The serving-layer cache contract, observed through /metrics alone.
    # Cold needs at least one solve per (level, normalization); a few
    # duplicates are possible when *different* query keys needing the same
    # spectrum (same level, different M/method) race their cold misses —
    # coalescing only collapses identical queries, the herd phase below
    # pins that down exactly.
    assert 2 * len(LEVELS) <= cold["eigensolves"] <= len(queries)
    assert cold["flow_calls"] > 0
    assert warm["eigensolves"] == 0
    assert warm["flow_calls"] == 0

    # Thundering herd on one cold graph: one eigensolve, shared by all.
    herd_queries = [
        BoundQuery(GraphSpec(family="fft", size_param=HERD_LEVEL), 8)
    ] * (HERD_THREADS * HERD_REQUESTS_PER_THREAD)
    herd_service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
    with BoundServer(herd_service, port=0) as server:
        server.start()
        herd_answers, herd_seconds, _ = replay(server.url, herd_queries, HERD_THREADS)
        coalesced = server.coalescer.coalesced
        herd_eigensolves = BoundsClient(server.url).metric("repro_eigensolves_total")
    assert herd_eigensolves == 1, "the herd must pay exactly one eigensolve"
    assert len({a.bound for a in herd_answers}) == 1
    coalesce_rate = coalesced / len(herd_queries)

    warm_speedup = (
        cold["seconds"] / warm["seconds"] if warm["seconds"] > 0 else float("inf")
    )
    bench_print()
    bench_print("== HTTP bounds server: cold vs warm vs thundering herd ==")
    bench_print(
        f"  workload: fft {LEVELS} x M={MEMORY_SIZES} x "
        f"(spectral, unnormalized, convex-min-cut), {THREADS} client threads"
    )
    for label, phase in (("cold", cold), ("warm", warm)):
        bench_print(
            f"  {label}: {phase['seconds']:7.3f}s  {phase['rps']:7.1f} req/s  "
            f"mean {phase['latency_mean_ms']:6.2f}ms  p95 {phase['latency_p95_ms']:6.2f}ms  "
            f"({phase['eigensolves']:.0f} eigensolves, {phase['flow_calls']:.0f} flow calls)"
        )
    bench_print(f"  warm speedup: {warm_speedup:6.2f}x")
    bench_print(
        f"  herd: {len(herd_queries)} identical requests from {HERD_THREADS} threads "
        f"in {herd_seconds:.3f}s -> {herd_eigensolves:.0f} eigensolve, "
        f"{coalesced} coalesced ({100 * coalesce_rate:.0f}% hit rate)"
    )

    path = write_perf_record(
        "BENCH_server.json",
        {
            "benchmark": "http_server_fft",
            "levels": LEVELS,
            "memory_sizes": MEMORY_SIZES,
            "num_eigenvalues": NUM_EIGENVALUES,
            "client_threads": THREADS,
            "requests_per_pass": len(queries),
            "cold_seconds": round(cold["seconds"], 4),
            "cold_rps": round(cold["rps"], 1),
            "cold_latency_mean_ms": round(cold["latency_mean_ms"], 3),
            "cold_latency_p95_ms": round(cold["latency_p95_ms"], 3),
            "cold_eigensolves": cold["eigensolves"],
            "cold_flow_calls": cold["flow_calls"],
            "warm_seconds": round(warm["seconds"], 4),
            "warm_rps": round(warm["rps"], 1),
            "warm_latency_mean_ms": round(warm["latency_mean_ms"], 3),
            "warm_latency_p95_ms": round(warm["latency_p95_ms"], 3),
            "warm_eigensolves": warm["eigensolves"],
            "warm_flow_calls": warm["flow_calls"],
            "warm_speedup": round(warm_speedup, 2),
            "herd_threads": HERD_THREADS,
            "herd_requests": len(herd_queries),
            "herd_level": HERD_LEVEL,
            "herd_seconds": round(herd_seconds, 4),
            "herd_eigensolves": herd_eigensolves,
            "herd_coalesced": coalesced,
            "herd_coalesce_rate": round(coalesce_rate, 3),
        },
    )
    bench_print(f"[perf record written to {path}]")

    # Skipping every solve must be an end-to-end serving win; wall-clock
    # assertions can be disabled on noisy shared runners (the /metrics
    # counters above prove the cache behaviour deterministically).
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert warm_speedup >= 1.5, f"warm serving only {warm_speedup:.2f}x faster"

    # Track the warm serving pass (fresh server state, warm disk) over time.
    def warm_pass():
        return serve_and_replay(store_root, queries)["seconds"]

    run_once(benchmark, warm_pass)
