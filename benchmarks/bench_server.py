"""Multi-threaded load generation against the HTTP bounds server.

Serving-layer claims, measured end to end through real sockets and
recorded in ``BENCH_server.json``:

* **cold vs warm** — a query mix (both spectral normalisations + the
  convex min-cut baseline over the Figure 7 FFT family) served against a
  fresh :class:`SpectrumStore` pays the eigensolves/max-flow calls once;
  the same mix against a *new server process state* on the warm store
  answers every request without a single solve (asserted through
  ``/metrics``: ``repro_eigensolves_total`` and ``repro_flow_calls_total``
  stay 0) and with correspondingly higher throughput;
* **parity** — every HTTP answer equals the direct
  :meth:`BoundService.submit` answer for the same query, float for float;
* **thundering herd** — many threads requesting the same cold graph at
  once (released together by a barrier) pay exactly **one** eigensolve
  thanks to in-flight coalescing (without it, concurrent misses race past
  the spectrum cache and solve redundantly); the coalescing hit rate is
  recorded;
* **multi-worker fleet** — the same warm mix through a two-worker
  pre-forked :class:`ServerFleet` (shared port, shard redirects followed
  by the client) still performs zero solves, and on a multi-core host
  outscores the single-process server; a *cold* herd fired at both
  workers' direct ports — different memory sizes, so neither the HTTP
  coalescer nor batch dedup can help — pays exactly one eigensolve
  across both processes via the store's solve lease, with the lease
  leader/follower split recorded.

Defaults are CI-scale; ``REPRO_BENCH_LARGE=1`` lifts the FFT levels and
the thread count.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Sequence, Union

from benchmarks.common import bench_print, pick, run_once, write_perf_record
from repro.runtime.families import GraphSpec
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import SpectrumStore
from repro.server.client import BoundsClient
from repro.server.runner import BoundServer, FleetConfig, ServerFleet

LEVELS = pick([3, 4, 5], [6, 7, 8])
MEMORY_SIZES = [4, 8, 16, 32]
NUM_EIGENVALUES = 30
THREADS = pick(4, 8)
HERD_THREADS = pick(8, 32)
HERD_REQUESTS_PER_THREAD = 4
HERD_LEVEL = pick(5, 9)
FLEET_WORKERS = 2
FLEET_HERD_LEVEL = pick(6, 10)


def build_queries() -> List[BoundQuery]:
    queries = []
    for level in LEVELS:
        spec = GraphSpec(family="fft", size_param=level)
        for memory_size in MEMORY_SIZES:
            queries.append(BoundQuery(spec, memory_size))
            queries.append(BoundQuery(spec, memory_size, normalization="unnormalized"))
            queries.append(BoundQuery(spec, memory_size, method="convex-min-cut"))
    return queries


def replay(urls: Union[str, Sequence[str]], queries: List[BoundQuery], threads: int):
    """Fire every query as its own request from a thread pool.

    ``urls`` is one base URL or a list the threads round-robin over (how
    the fleet herd spans every worker's direct port).  All threads
    connect first and start together on a barrier, so the measured window
    (and a herd's cold-miss race) begins with every client already
    running.  Returns (answers in query order, elapsed seconds,
    per-request latency seconds).  Any request error propagates — the
    benchmark must fail loudly, not record a partially-served run.
    """
    if isinstance(urls, str):
        urls = [urls]
    answers: List = [None] * len(queries)
    latencies: List[float] = [0.0] * len(queries)
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def worker(worker_index: int) -> None:
        try:
            with BoundsClient(urls[worker_index % len(urls)]) as client:
                barrier.wait()
                for index in range(worker_index, len(queries), threads):
                    request_start = time.perf_counter()
                    [answers[index]] = client.bounds([queries[index]])
                    latencies[index] = time.perf_counter() - request_start
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
            barrier.abort()

    pool = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker already failed; fall through to the re-raise
    start = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return answers, elapsed, latencies


def scrape_metric(url: str, name: str, **labels) -> float:
    """One endpoint's summed metric; 0 when the series was never touched."""
    with BoundsClient(url) as client:
        try:
            return client.metric(name, **labels)
        except KeyError:
            return 0.0


def serve_and_replay(store_root, queries: List[BoundQuery]) -> Dict[str, object]:
    """Boot a fresh server on ``store_root`` and replay the query mix."""
    service = BoundService(
        store=SpectrumStore(store_root), num_eigenvalues=NUM_EIGENVALUES
    )
    with BoundServer(service, port=0) as server:
        server.start()
        answers, elapsed, latencies = replay(server.url, queries, THREADS)
        eigensolves = scrape_metric(server.url, "repro_eigensolves_total")
        flow_calls = scrape_metric(server.url, "repro_flow_calls_total")
    ordered = sorted(latencies)
    return {
        "answers": answers,
        "seconds": elapsed,
        "rps": len(queries) / elapsed if elapsed > 0 else float("inf"),
        "latency_mean_ms": 1000.0 * sum(latencies) / len(latencies),
        "latency_p95_ms": 1000.0 * ordered[int(0.95 * (len(ordered) - 1))],
        "eigensolves": eigensolves,
        "flow_calls": flow_calls,
    }


def fleet_serve_and_replay(
    store_root, queries: List[BoundQuery]
) -> Dict[str, object]:
    """Boot a two-worker fleet on ``store_root`` and replay via the shared port."""
    config = FleetConfig(store_root=str(store_root), num_eigenvalues=NUM_EIGENVALUES)
    with ServerFleet(config, workers=FLEET_WORKERS) as fleet:
        fleet.start()
        with BoundsClient(fleet.url) as probe:
            probe.health()  # blocks until a worker is accepting
        answers, elapsed, latencies = replay(fleet.url, queries, THREADS)
        # One scrape of the shared port returns the merged all-worker
        # exposition (worker=<id> labels preserved), so the fleet-wide
        # eigensolve count no longer needs hand-summing the direct ports.
        eigensolves = scrape_metric(fleet.url, "repro_eigensolves_total")
    return {
        "answers": answers,
        "seconds": elapsed,
        "rps": len(queries) / elapsed if elapsed > 0 else float("inf"),
        "eigensolves": eigensolves,
    }


def fleet_cold_herd(store_root) -> Dict[str, object]:
    """A cold herd across both workers' direct ports, coalesced by the lease.

    Every query wants the same cold graph at a *different* memory size,
    fired at both workers' direct ports concurrently — four processes'
    worth of cold misses that only the store-level solve lease can
    collapse.  Exactly one eigensolve must happen fleet-wide.
    """
    spec = GraphSpec(family="fft", size_param=FLEET_HERD_LEVEL)
    # M-major order: with len(MEMORY_SIZES) threads striding the list, the
    # first concurrent wave is four *distinct* memory sizes — keys the
    # per-worker HTTP coalescer and batch dedup cannot collapse.
    herd_queries = [
        BoundQuery(spec, memory_size)
        for _ in range(HERD_REQUESTS_PER_THREAD)
        for memory_size in MEMORY_SIZES
    ]
    config = FleetConfig(store_root=str(store_root), num_eigenvalues=NUM_EIGENVALUES)
    with ServerFleet(config, workers=FLEET_WORKERS) as fleet:
        fleet.start()
        for url in fleet.worker_urls:
            with BoundsClient(url) as probe:
                probe.health()
        answers, elapsed, _ = replay(
            list(fleet.worker_urls), herd_queries, threads=len(MEMORY_SIZES)
        )
        # The shared-port exposition is the merged view of every worker,
        # so the lease leader/follower split is one scrape instead of a
        # per-direct-port sum.
        eigensolves = scrape_metric(fleet.url, "repro_eigensolves_total")
        leaders = scrape_metric(fleet.url, "repro_lease_total", role="leader")
        followers = scrape_metric(fleet.url, "repro_lease_total", role="follower")
    return {
        "queries": herd_queries,
        "answers": answers,
        "seconds": elapsed,
        "requests": len(herd_queries),
        "eigensolves": eigensolves,
        "lease_leaders": leaders,
        "lease_followers": followers,
    }


def test_server_cold_warm_and_herd(benchmark, tmp_path):
    queries = build_queries()
    store_root = tmp_path / "spectra"

    cold = serve_and_replay(store_root, queries)
    warm = serve_and_replay(store_root, queries)

    # Parity: the HTTP path answers exactly what direct submission answers.
    direct = BoundService(num_eigenvalues=NUM_EIGENVALUES).submit(queries)
    for via_http, reference in zip(cold["answers"], direct):
        assert via_http.bound == reference.bound
        assert via_http.raw_value == reference.raw_value
    assert [a.bound for a in warm["answers"]] == [a.bound for a in cold["answers"]]

    # The serving-layer cache contract, observed through /metrics alone.
    # Cold needs at least one solve per (level, normalization); a few
    # duplicates are possible when *different* query keys needing the same
    # spectrum (same level, different M/method) race their cold misses —
    # coalescing only collapses identical queries, the herd phase below
    # pins that down exactly.
    assert 2 * len(LEVELS) <= cold["eigensolves"] <= len(queries)
    assert cold["flow_calls"] > 0
    assert warm["eigensolves"] == 0
    assert warm["flow_calls"] == 0

    # Thundering herd on one cold graph: one eigensolve, shared by all.
    herd_queries = [
        BoundQuery(GraphSpec(family="fft", size_param=HERD_LEVEL), 8)
    ] * (HERD_THREADS * HERD_REQUESTS_PER_THREAD)
    herd_service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
    with BoundServer(herd_service, port=0) as server:
        server.start()
        herd_answers, herd_seconds, _ = replay(server.url, herd_queries, HERD_THREADS)
        coalesced = server.coalescer.coalesced
        herd_eigensolves = scrape_metric(server.url, "repro_eigensolves_total")
    assert herd_eigensolves == 1, "the herd must pay exactly one eigensolve"
    assert len({a.bound for a in herd_answers}) == 1
    coalesce_rate = coalesced / len(herd_queries)

    # Multi-worker fleet: the warm mix through the shared port (shard
    # redirects and all) still performs zero solves...
    fleet_warm = fleet_serve_and_replay(store_root, queries)
    assert fleet_warm["eigensolves"] == 0
    assert [a.bound for a in fleet_warm["answers"]] == [
        a.bound for a in cold["answers"]
    ]
    fleet_speedup = fleet_warm["rps"] / warm["rps"] if warm["rps"] > 0 else 0.0

    # ...and a cold cross-process herd pays exactly one eigensolve via the
    # store's solve lease — one leader fleet-wide, everyone else follows
    # or reads the published spectrum.
    fleet_herd = fleet_cold_herd(tmp_path / "fleet-herd")
    assert fleet_herd["eigensolves"] == 1, (
        f"cross-process herd paid {fleet_herd['eigensolves']:.0f} eigensolves; "
        f"the solve lease must collapse them to one"
    )
    assert fleet_herd["lease_leaders"] == 1
    # Lease followers read the *published* spectrum: every answer must
    # match a direct solve of the same query, whichever worker served it.
    herd_spec = GraphSpec(family="fft", size_param=FLEET_HERD_LEVEL)
    herd_reference = {
        memory_size: answer.bound
        for memory_size, answer in zip(
            MEMORY_SIZES,
            BoundService(num_eigenvalues=NUM_EIGENVALUES).submit(
                [BoundQuery(herd_spec, memory_size) for memory_size in MEMORY_SIZES]
            ),
        )
    }
    for query, answer in zip(fleet_herd["queries"], fleet_herd["answers"]):
        assert answer.bound == herd_reference[query.memory_size]

    warm_speedup = (
        cold["seconds"] / warm["seconds"] if warm["seconds"] > 0 else float("inf")
    )
    bench_print()
    bench_print("== HTTP bounds server: cold vs warm vs thundering herd ==")
    bench_print(
        f"  workload: fft {LEVELS} x M={MEMORY_SIZES} x "
        f"(spectral, unnormalized, convex-min-cut), {THREADS} client threads"
    )
    for label, phase in (("cold", cold), ("warm", warm)):
        bench_print(
            f"  {label}: {phase['seconds']:7.3f}s  {phase['rps']:7.1f} req/s  "
            f"mean {phase['latency_mean_ms']:6.2f}ms  p95 {phase['latency_p95_ms']:6.2f}ms  "
            f"({phase['eigensolves']:.0f} eigensolves, {phase['flow_calls']:.0f} flow calls)"
        )
    bench_print(f"  warm speedup: {warm_speedup:6.2f}x")
    bench_print(
        f"  herd: {len(herd_queries)} identical requests from {HERD_THREADS} threads "
        f"in {herd_seconds:.3f}s -> {herd_eigensolves:.0f} eigensolve, "
        f"{coalesced} coalesced ({100 * coalesce_rate:.0f}% hit rate)"
    )
    bench_print(
        f"  fleet ({FLEET_WORKERS} workers): warm {fleet_warm['seconds']:7.3f}s  "
        f"{fleet_warm['rps']:7.1f} req/s ({fleet_speedup:.2f}x single-process warm, "
        f"{fleet_warm['eigensolves']:.0f} eigensolves)"
    )
    bench_print(
        f"  fleet herd: {fleet_herd['requests']} cold requests across "
        f"{FLEET_WORKERS} workers' direct ports in {fleet_herd['seconds']:.3f}s -> "
        f"{fleet_herd['eigensolves']:.0f} eigensolve "
        f"({fleet_herd['lease_leaders']:.0f} lease leader, "
        f"{fleet_herd['lease_followers']:.0f} followers)"
    )

    path = write_perf_record(
        "BENCH_server.json",
        {
            "benchmark": "http_server_fft",
            "levels": LEVELS,
            "memory_sizes": MEMORY_SIZES,
            "num_eigenvalues": NUM_EIGENVALUES,
            "client_threads": THREADS,
            "requests_per_pass": len(queries),
            "cold_seconds": round(cold["seconds"], 4),
            "cold_rps": round(cold["rps"], 1),
            "cold_latency_mean_ms": round(cold["latency_mean_ms"], 3),
            "cold_latency_p95_ms": round(cold["latency_p95_ms"], 3),
            "cold_eigensolves": cold["eigensolves"],
            "cold_flow_calls": cold["flow_calls"],
            "warm_seconds": round(warm["seconds"], 4),
            "warm_rps": round(warm["rps"], 1),
            "warm_latency_mean_ms": round(warm["latency_mean_ms"], 3),
            "warm_latency_p95_ms": round(warm["latency_p95_ms"], 3),
            "warm_eigensolves": warm["eigensolves"],
            "warm_flow_calls": warm["flow_calls"],
            "warm_speedup": round(warm_speedup, 2),
            "herd_threads": HERD_THREADS,
            "herd_requests": len(herd_queries),
            "herd_level": HERD_LEVEL,
            "herd_seconds": round(herd_seconds, 4),
            "herd_eigensolves": herd_eigensolves,
            "herd_coalesced": coalesced,
            "herd_coalesce_rate": round(coalesce_rate, 3),
            "fleet_workers": FLEET_WORKERS,
            "fleet_warm_seconds": round(fleet_warm["seconds"], 4),
            "fleet_warm_rps": round(fleet_warm["rps"], 1),
            "fleet_warm_eigensolves": fleet_warm["eigensolves"],
            "fleet_warm_speedup": round(fleet_speedup, 2),
            "fleet_herd_level": FLEET_HERD_LEVEL,
            "fleet_herd_requests": fleet_herd["requests"],
            "fleet_herd_seconds": round(fleet_herd["seconds"], 4),
            "fleet_herd_eigensolves": fleet_herd["eigensolves"],
            "fleet_herd_lease_leaders": fleet_herd["lease_leaders"],
            "fleet_herd_lease_followers": fleet_herd["lease_followers"],
        },
    )
    bench_print(f"[perf record written to {path}]")

    # Skipping every solve must be an end-to-end serving win; wall-clock
    # assertions can be disabled on noisy shared runners (the /metrics
    # counters above prove the cache behaviour deterministically).
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert warm_speedup >= 1.5, f"warm serving only {warm_speedup:.2f}x faster"
        # Two workers beating one process needs two actual cores; the
        # solve-count assertions above hold regardless.
        if (os.cpu_count() or 1) >= 2:
            assert fleet_speedup >= 1.6, (
                f"2-worker fleet only {fleet_speedup:.2f}x single-process warm rps"
            )

    # Track the warm serving pass (fresh server state, warm disk) over time.
    def warm_pass():
        return serve_and_replay(store_root, queries)["seconds"]

    run_once(benchmark, warm_pass)
