"""Figure 11 — runtime of the spectral method vs the convex min-cut baseline.

The paper measures wall-clock seconds to compute the lower bound for the
Bellman-Held-Karp graph as the number of cities grows: the convex min-cut
method explodes (``O(n^5)``, ~8.5 hours at ``l = 15``) while the spectral
method stays under two minutes.  This bench reproduces the measurement at
CI-friendly sizes (``l = 6..9`` by default, both methods) and additionally
reports the spectral method alone up to the Figure-10 sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, print_rows, run_once
from repro.analysis.runtime import runtime_comparison
from repro.graphs.generators import bellman_held_karp_graph

M = 16
BOTH_METHOD_CITIES = pick(list(range(6, 10)), list(range(6, 12)))
SPECTRAL_ONLY_CITIES = pick(list(range(10, 13)), list(range(12, 16)))


@pytest.fixture(scope="module")
def runtime_rows():
    rows = runtime_comparison(
        "bellman-held-karp",
        bellman_held_karp_graph,
        size_params=BOTH_METHOD_CITIES,
        M=M,
        methods=("spectral", "convex-min-cut"),
    )
    rows += runtime_comparison(
        "bellman-held-karp",
        bellman_held_karp_graph,
        size_params=SPECTRAL_ONLY_CITIES,
        M=M,
        methods=("spectral",),
    )
    return rows


def test_fig11_runtime_comparison(benchmark, runtime_rows):
    rows = runtime_rows
    run_once(benchmark, lambda: None)  # the measurement *is* the elapsed columns below

    print_dict_rows("Figure 11 data: lower-bound runtime (seconds)", rows, csv_name="fig11_runtime")

    # Qualitative reproduction: at the largest size where both ran, the convex
    # min-cut method is slower than the spectral method, and its runtime grows
    # faster than the spectral method's as l increases.
    largest = max(BOTH_METHOD_CITIES)
    spectral = {r.size_param: r.elapsed_seconds for r in rows if r.method == "spectral"}
    convex = {r.size_param: r.elapsed_seconds for r in rows if r.method == "convex-min-cut"}
    assert convex[largest] > spectral[largest]
    smallest = min(BOTH_METHOD_CITIES)
    convex_growth = convex[largest] / max(convex[smallest], 1e-9)
    spectral_growth = spectral[largest] / max(spectral[smallest], 1e-9)
    assert convex_growth > spectral_growth
