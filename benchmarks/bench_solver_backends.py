"""Spectral-backend layer benchmark: LOBPCG, warm starts, AMG, scheduling.

Three claims of the pluggable solver layer (PR 3 + PR 6), measured on the
Figure 7 FFT family and persisted to ``BENCH_solvers.json``:

* **warm-started LOBPCG vs cold solves** — sweeping the family through one
  :class:`~repro.solvers.backends.WarmStartContext` leaves the context
  holding the largest level's Ritz block (bounded memory: one block per
  lineage, far smaller than the spectrum caches).  When that level's
  *spectrum* is gone — evicted from the size-capped store or the in-memory
  LRU, or requested by a process whose caches are cold while the context is
  shared — re-solving seeded from the context converges in ~10 shift-invert
  LOBPCG iterations instead of ~20, and the recorded numbers show it beating
  the cold dense *and* cold sparse (ARPACK) backends on the largest CI-scale
  FFT level.  (Cross-level prolongation is deliberately not attempted: see
  :func:`repro.solvers.backends.adapt_subspace` for the measurements.)
* **largest-first per-normalization scheduling** — the same family sweep
  over a 2-worker pool, once with the legacy one-task-per-graph unit and
  once with per-(graph, normalization) tasks scheduled largest-first.  Rows
  are identical to the serial sweep either way; alongside the measured
  wall-clocks the record carries *simulated* 2-worker makespans computed
  from the measured per-task costs, because on single-core containers (like
  the one that produced the checked-in record) a process pool can only
  timeshare and no schedule can win wall-clock.

* **AMG-preconditioned LOBPCG at paper scale** — the ``amg`` backend solves
  the ``h = 16`` smallest eigenvalues of the 114,688-vertex FFT level-13
  Laplacian (matrix-free, through the spectrum cache) on one core in tens
  of seconds, where the ``sparse`` (ARPACK shift-invert) and plain
  ``lobpcg`` backends take ~2 minutes each — the checked-in record shows
  the >=5x speedup (8.65x measured) at the largest shared size.  A second request for the same
  spectrum must perform **zero** eigensolves (the warm-path contract the
  other cache benches assert for the small backends).  The 100k+ vertex
  smoke runs in CI too; baselines run at FFT level 9 there (they are the
  slow side of the comparison) and at level 13 under ``REPRO_BENCH_LARGE=1``,
  optionally restricted via ``REPRO_BENCH_AMG_BASELINES=sparse,lobpcg``.

Defaults are CI scale (chain ``l = 6..9``, pool sweep ``l = 5..8``); set
``REPRO_BENCH_LARGE=1`` for paper-scale levels.  Wall-clock assertions are
disabled with ``REPRO_BENCH_TIMING_ASSERT=0`` (shared CI runners); the
agreement/row-identity/simulation assertions always run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Sequence, Tuple

import numpy as np

from benchmarks.common import (
    bench_print,
    large_mode,
    pick,
    print_dict_rows,
    run_once,
    write_perf_record,
)
from repro.graphs.generators import fft_graph
from repro.graphs.laplacian import laplacian
from repro.runtime.orchestrator import SweepOrchestrator
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.backends import WarmStartContext, solve_smallest
from repro.solvers.spectrum_cache import SpectrumCache

CHAIN_LEVELS = pick([6, 7, 8, 9], [8, 9, 10, 11])
SWEEP_LEVELS = pick(list(range(5, 9)), list(range(8, 12)))
MEMORY_SIZES = [4, 8, 16, 32]
METHODS = ("spectral", "spectral-unnormalized")
NUM_EIGENVALUES = 100
POOL_PROCESSES = 2
#: Dense is O(n^3); beyond this it stops being a sensible cold baseline.
DENSE_CAP = 6000

TIMING_ASSERT = os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0"

#: Paper-scale AMG smoke: always >= 100k vertices, even in CI.
AMG_SMOKE_LEVEL = 13  # (13+1) * 2^13 = 114,688 vertices
AMG_BASELINE_LEVEL = pick(9, 13)
AMG_H = 16
#: Tight budget asserted locally (TIMING_ASSERT); the hard budget always.
AMG_CI_BUDGET_SECONDS = 240.0
AMG_HARD_BUDGET_SECONDS = 600.0
#: Which iterative baselines to time at AMG_BASELINE_LEVEL (comma list;
#: empty = none).  Lets paper-scale runs split the 5+ minute baselines
#: across invocations — the perf record merges per-backend keys.
AMG_BASELINES = tuple(
    name
    for name in os.environ.get("REPRO_BENCH_AMG_BASELINES", "sparse,lobpcg").split(",")
    if name.strip()
)


def _timed_solve(matrix, options, context=None, lineage=None, num_eigenvalues=None):
    start = time.perf_counter()
    result = solve_smallest(
        matrix,
        NUM_EIGENVALUES if num_eigenvalues is None else num_eigenvalues,
        options,
        warm_start=context,
        lineage=lineage,
    )
    return result, time.perf_counter() - start


def test_warm_started_lobpcg_vs_cold_backends(benchmark):
    laplacians = {
        level: laplacian(fft_graph(level), normalized=True, sparse=True)
        for level in CHAIN_LEVELS
    }
    largest = CHAIN_LEVELS[-1]
    n = laplacians[largest].shape[0]
    lobpcg = EigenSolverOptions(method="lobpcg")

    # Family sweep through one warm-start context: each level solves cold
    # (sizes differ, so nothing seeds) and deposits its Ritz block; after
    # the loop the context holds the largest level's block.
    context = WarmStartContext()
    chain_rows = []
    for level in CHAIN_LEVELS:
        result, seconds = _timed_solve(
            laplacians[level], lobpcg, context=context, lineage="fft"
        )
        chain_rows.append(
            {
                "level": level,
                "n": laplacians[level].shape[0],
                "seconds": round(seconds, 4),
                "warm_started": result.warm_started,
            }
        )

    # The headline scenario: the largest level's *spectrum* is gone (LRU /
    # size-capped eviction, or another consumer of the shared context) but
    # the warm context survives — re-solve seeded vs every cold backend.
    warm_result, warm_seconds = run_once(
        benchmark,
        lambda: _timed_solve(laplacians[largest], lobpcg, context=context, lineage="fft"),
    )
    assert warm_result.warm_started

    cold = {}
    cold_results = {}
    cold_results["lobpcg"], cold["lobpcg"] = _timed_solve(laplacians[largest], lobpcg)
    cold_results["sparse"], cold["sparse"] = _timed_solve(
        laplacians[largest], EigenSolverOptions(method="sparse")
    )
    if n <= DENSE_CAP:
        dense_matrix = np.asarray(laplacians[largest].todense())
        cold_results["dense"], cold["dense"] = _timed_solve(
            dense_matrix, EigenSolverOptions(method="dense")
        )
    _, float32_seconds = _timed_solve(
        laplacians[largest], EigenSolverOptions(method="lobpcg", dtype="float32")
    )

    # All backends must agree on the spectrum they produce.
    for name, result in cold_results.items():
        np.testing.assert_allclose(
            result.eigenvalues, warm_result.eigenvalues, atol=1e-6,
            err_msg=f"{name} disagrees with warm lobpcg",
        )

    solver_rows = [
        {"solver": "lobpcg (warm-started)", "seconds": round(warm_seconds, 4)},
        {"solver": "lobpcg (cold)", "seconds": round(cold["lobpcg"], 4)},
        {"solver": "lobpcg float32 (cold)", "seconds": round(float32_seconds, 4)},
        {"solver": "sparse/ARPACK (cold)", "seconds": round(cold["sparse"], 4)},
    ]
    if "dense" in cold:
        solver_rows.append({"solver": "dense (cold)", "seconds": round(cold["dense"], 4)})
    print_dict_rows(
        f"Warm-started LOBPCG vs cold backends (fft level {largest}, n={n}, "
        f"h={NUM_EIGENVALUES})",
        solver_rows,
    )
    print_dict_rows("Warm-start context population (ascending levels)", chain_rows)

    _merge_perf_record(
        {
            "benchmark": "solver_backends_fft",
            "levels": CHAIN_LEVELS,
            "largest_level": largest,
            "largest_n": n,
            "num_eigenvalues": NUM_EIGENVALUES,
            "warm_lobpcg_seconds": round(warm_seconds, 4),
            "cold_lobpcg_seconds": round(cold["lobpcg"], 4),
            "cold_sparse_seconds": round(cold["sparse"], 4),
            "cold_dense_seconds": round(cold.get("dense", float("nan")), 4),
            "cold_lobpcg_float32_seconds": round(float32_seconds, 4),
            "warm_vs_cold_sparse_speedup": round(cold["sparse"] / warm_seconds, 2),
            "warm_vs_cold_dense_speedup": (
                round(cold["dense"] / warm_seconds, 2) if "dense" in cold else None
            ),
            "chain": chain_rows,
        }
    )

    if TIMING_ASSERT:
        assert warm_seconds < cold["sparse"], (
            f"warm lobpcg ({warm_seconds:.3f}s) should beat cold sparse "
            f"({cold['sparse']:.3f}s)"
        )
        if "dense" in cold:
            assert warm_seconds < cold["dense"], (
                f"warm lobpcg ({warm_seconds:.3f}s) should beat cold dense "
                f"({cold['dense']:.3f}s)"
            )


def _row_values(rows):
    """The value-carrying fields of sweep rows (timings excluded)."""
    return [
        (r.family, r.size_param, r.num_vertices, r.num_edges, r.max_in_degree,
         r.memory_size, r.method, round(r.bound, 9), r.best_k)
        for r in rows
    ]


def _timed_family_sweep(**orchestrator_kwargs):
    orchestrator = SweepOrchestrator(
        num_eigenvalues=NUM_EIGENVALUES, **orchestrator_kwargs
    )
    start = time.perf_counter()
    report = orchestrator.run_family(
        "fft", fft_graph, SWEEP_LEVELS, MEMORY_SIZES, methods=METHODS
    )
    return report, time.perf_counter() - start


def _simulate_makespan(
    task_seconds: Sequence[float], submission_order: Sequence[int], workers: int
) -> float:
    """List-scheduling makespan: each task goes to the earliest-free worker.

    This is exactly what ``ProcessPoolExecutor`` does with a FIFO queue, so
    simulating it with the *measured* per-task costs isolates the effect of
    the submission order from pool overhead and core-count limits.
    """
    free_at = [0.0] * workers
    for index in submission_order:
        worker = min(range(workers), key=lambda w: free_at[w])
        free_at[worker] += task_seconds[index]
    return max(free_at)


def _schedule_simulation(serial_split_report, serial_fused_report) -> Tuple[float, float]:
    """Simulated 2-worker makespans: one-task-per-graph vs largest-first split."""
    fused_seconds = serial_fused_report.per_task_seconds
    fused_order = list(range(len(fused_seconds)))  # FIFO in task order
    baseline = _simulate_makespan(fused_seconds, fused_order, POOL_PROCESSES)

    split_seconds = serial_split_report.per_task_seconds
    split_tasks = serial_split_report.tasks
    largest_first = sorted(
        range(len(split_seconds)),
        key=lambda i: (-split_tasks[i].size_estimate, i),
    )
    scheduled = _simulate_makespan(split_seconds, largest_first, POOL_PROCESSES)
    return baseline, scheduled


def test_largest_first_scheduling_vs_one_task_per_graph(benchmark):
    serial_report, serial_seconds = _timed_family_sweep(processes=1)
    serial_fused_report, _ = _timed_family_sweep(processes=1, split_methods=False)
    baseline_report, baseline_seconds = run_once(
        benchmark,
        lambda: _timed_family_sweep(
            processes=POOL_PROCESSES, split_methods=False, largest_first=False
        ),
    )
    scheduled_report, scheduled_seconds = _timed_family_sweep(processes=POOL_PROCESSES)

    # Rows must be identical to the serial sweep whatever the schedule.
    assert _row_values(baseline_report.rows) == _row_values(serial_report.rows)
    assert _row_values(scheduled_report.rows) == _row_values(serial_report.rows)
    # And the split schedule really did start the dominant task first.
    first_scheduled = min(
        scheduled_report.tasks, key=lambda record: record.schedule_rank
    )
    assert first_scheduled.size_estimate == max(
        record.size_estimate for record in scheduled_report.tasks
    )

    # Schedule quality, isolated from pool overhead/core count: simulated
    # 2-worker makespans over the *measured* per-task costs.
    simulated_baseline, simulated_scheduled = _schedule_simulation(
        serial_report, serial_fused_report
    )
    assert simulated_scheduled <= simulated_baseline * 1.001, (
        f"largest-first split makespan ({simulated_scheduled:.3f}s simulated) "
        f"should not lose to one-task-per-graph ({simulated_baseline:.3f}s)"
    )

    rows = [
        {"schedule": "serial", "tasks": len(serial_report.tasks),
         "seconds": round(serial_seconds, 3), "simulated_x2": "-"},
        {"schedule": f"pool x{POOL_PROCESSES}, one task per graph",
         "tasks": len(baseline_report.tasks),
         "seconds": round(baseline_seconds, 3),
         "simulated_x2": round(simulated_baseline, 3)},
        {"schedule": f"pool x{POOL_PROCESSES}, split + largest-first",
         "tasks": len(scheduled_report.tasks),
         "seconds": round(scheduled_seconds, 3),
         "simulated_x2": round(simulated_scheduled, 3)},
    ]
    print_dict_rows(
        f"Pooled scheduling (fft levels {SWEEP_LEVELS}, methods={len(METHODS)}, "
        f"{os.cpu_count()} cores)",
        rows,
    )

    _merge_perf_record(
        {
            "sweep_levels": SWEEP_LEVELS,
            "pool_processes": POOL_PROCESSES,
            "cpu_cores": os.cpu_count(),
            "serial_seconds": round(serial_seconds, 4),
            "one_task_per_graph_seconds": round(baseline_seconds, 4),
            "largest_first_split_seconds": round(scheduled_seconds, 4),
            "simulated_makespan_one_task_per_graph": round(simulated_baseline, 4),
            "simulated_makespan_largest_first_split": round(simulated_scheduled, 4),
            "simulated_scheduling_speedup": round(
                simulated_baseline / simulated_scheduled, 2
            ),
            "rows_identical_to_serial": True,
        }
    )

    # A wall-clock win needs real parallel hardware: with one core the pool
    # can only timeshare, so the measured numbers are recorded but only
    # asserted where a schedule *can* change the outcome.
    if TIMING_ASSERT and (os.cpu_count() or 1) >= 2:
        assert scheduled_seconds < baseline_seconds * 1.05, (
            f"largest-first split schedule ({scheduled_seconds:.3f}s) should not "
            f"lose to the one-task-per-graph baseline ({baseline_seconds:.3f}s)"
        )


def test_amg_paper_scale_vs_iterative(benchmark):
    """The 100k+ vertex AMG smoke plus the shared-size backend comparison."""
    graph = fft_graph(AMG_SMOKE_LEVEL)
    n = graph.num_vertices
    assert n >= 100_000, f"smoke must cover >= 100k vertices, got n={n}"
    amg = EigenSolverOptions(method="amg")

    # Cold solve through the spectrum cache: this exercises the matrix-free
    # LaplacianOperator path end to end (the cache hands operators, not
    # assembled matrices, to iterative backends).
    cache = SpectrumCache()
    cold, cold_seconds = run_once(
        benchmark,
        lambda: _timed_cache_spectrum(cache, graph, amg),
    )
    assert not cold.cache_hit and cache.misses == 1
    assert cold.backend == "amg"
    values = np.asarray(cold.eigenvalues)
    assert values.shape == (AMG_H,)
    assert np.all(np.diff(values) >= -1e-9) and abs(values[0]) < 1e-6

    # Warm-path contract: a second request performs zero eigensolves.
    warm, _ = _timed_cache_spectrum(cache, graph, amg)
    assert warm.cache_hit and cache.misses == 1, "warm path must not eigensolve"

    # Iterative baselines at the largest size every backend shares.
    if AMG_BASELINE_LEVEL == AMG_SMOKE_LEVEL:
        baseline_n = n
        amg_at_baseline_seconds = cold_seconds
        amg_at_baseline_values = values
        baseline_matrix = None
    else:
        baseline_graph = fft_graph(AMG_BASELINE_LEVEL)
        baseline_n = baseline_graph.num_vertices
        baseline_matrix = laplacian(baseline_graph, normalized=True, sparse=True)
        result, amg_at_baseline_seconds = _timed_solve(
            baseline_matrix, amg, num_eigenvalues=AMG_H
        )
        amg_at_baseline_values = result.eigenvalues

    rows = [
        {"solver": "amg (cold)", "level": AMG_BASELINE_LEVEL,
         "seconds": round(amg_at_baseline_seconds, 4)},
    ]
    update = {
        "amg_smoke_level": AMG_SMOKE_LEVEL,
        "amg_smoke_n": n,
        "amg_h": AMG_H,
        "amg_cold_seconds": round(cold_seconds, 4),
        "amg_warm_path_eigensolves": 0,
        "amg_baseline_level": AMG_BASELINE_LEVEL,
        "amg_baseline_n": baseline_n,
        "amg_at_baseline_seconds": round(amg_at_baseline_seconds, 4),
    }
    for name in AMG_BASELINES:
        if baseline_matrix is None:
            baseline_matrix = laplacian(
                fft_graph(AMG_BASELINE_LEVEL), normalized=True, sparse=True
            )
        result, seconds = _timed_solve(
            baseline_matrix, EigenSolverOptions(method=name), num_eigenvalues=AMG_H
        )
        np.testing.assert_allclose(
            result.eigenvalues, amg_at_baseline_values, atol=1e-5,
            err_msg=f"{name} disagrees with amg at level {AMG_BASELINE_LEVEL}",
        )
        rows.append(
            {"solver": f"{name} (cold)", "level": AMG_BASELINE_LEVEL,
             "seconds": round(seconds, 4)}
        )
        update[f"amg_baseline_{name}_seconds"] = round(seconds, 4)
    _prune_stale_amg_baselines()
    _merge_perf_record(update)

    # The headline number: amg vs the *best* iterative baseline at the
    # shared size, computed over every baseline the (possibly split)
    # paper-scale runs have merged into the record so far.
    record = json.loads(
        (Path(__file__).resolve().parent.parent / "BENCH_solvers.json").read_text()
    )
    baseline_seconds = [
        value
        for key, value in record.items()
        if key.startswith("amg_baseline_") and key.endswith("_seconds")
    ]
    speedup = None
    if baseline_seconds and record.get("amg_baseline_level") == AMG_BASELINE_LEVEL:
        speedup = round(min(baseline_seconds) / amg_at_baseline_seconds, 2)
        _merge_perf_record({"amg_vs_best_iterative_speedup": speedup})

    print_dict_rows(
        f"AMG vs iterative backends (fft level {AMG_BASELINE_LEVEL}, "
        f"n={baseline_n}, h={AMG_H}; smoke level {AMG_SMOKE_LEVEL}, n={n}: "
        f"{cold_seconds:.1f}s cold, speedup={speedup})",
        rows,
    )

    assert cold_seconds < AMG_HARD_BUDGET_SECONDS, (
        f"100k-vertex amg smoke blew the hard budget: {cold_seconds:.1f}s"
    )
    if TIMING_ASSERT:
        assert cold_seconds < AMG_CI_BUDGET_SECONDS, (
            f"100k-vertex amg smoke over budget: {cold_seconds:.1f}s "
            f">= {AMG_CI_BUDGET_SECONDS}s"
        )
        if large_mode() and speedup is not None:
            assert speedup >= 5.0, (
                f"amg must beat the best iterative backend >=5x at the "
                f"largest shared size, got {speedup}x"
            )


def _prune_stale_amg_baselines() -> None:
    """Drop baseline timings recorded at a *different* baseline level.

    CI-scale and paper-scale runs share one record; per-backend keys merged
    from a run at another level must not leak into this level's
    best-iterative speedup.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_solvers.json"
    if not path.exists():
        return
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError:
        return
    if payload.get("amg_baseline_level") == AMG_BASELINE_LEVEL:
        return
    pruned = {
        key: value
        for key, value in payload.items()
        if not (key.startswith("amg_baseline_") and key.endswith("_seconds"))
    }
    pruned.pop("amg_vs_best_iterative_speedup", None)
    if pruned != payload:
        write_perf_record("BENCH_solvers.json", pruned)


def _timed_cache_spectrum(cache, graph, options):
    start = time.perf_counter()
    fetched = cache.spectrum(graph, AMG_H, eig_options=options)
    return fetched, time.perf_counter() - start


def _merge_perf_record(update: dict) -> None:
    """Merge this test's numbers into ``BENCH_solvers.json``.

    The two tests of this file contribute to one perf record; merging keeps
    whichever half ran (``-k`` selections) without clobbering the other.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_solvers.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    write_perf_record("BENCH_solvers.json", payload)
    bench_print(f"[perf record updated: {path}]")
