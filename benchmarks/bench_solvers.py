"""Ablation — eigensolver backends.

§4.3 notes the bound needs only the ``h`` smallest Laplacian eigenvalues and
can be computed "by power iteration" or "Lanczos-Arnoldi" in ``O(h n^2)``
instead of a full ``O(n^3)`` eigendecomposition.  This bench times the four
backends on the same butterfly Laplacian and checks they agree on the bound
they produce.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bound_from_eigenvalues
from repro.graphs.generators import fft_graph
from repro.graphs.laplacian import laplacian
from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues

LEVELS = pick(7, 9)
NUM_EIGENVALUES = 30
M = 4
BACKENDS = ["dense", "sparse", "lanczos", "power"]


@pytest.fixture(scope="module")
def solver_rows():
    graph = fft_graph(LEVELS)
    lap_dense = laplacian(graph, normalized=True, sparse=False)
    lap_sparse = laplacian(graph, normalized=True, sparse=True)
    rows = []
    for backend in BACKENDS:
        matrix = lap_sparse if backend in ("sparse", "power") else lap_dense
        # Deflated power iteration is O(h * iters * nnz): keep its h small —
        # that is exactly the trade-off the paper's "power iteration" remark
        # refers to (a handful of eigenvalues is enough for a useful bound).
        h = 4 if backend == "power" else NUM_EIGENVALUES
        start = time.perf_counter()
        eigenvalues = smallest_eigenvalues(matrix, h, EigenSolverOptions(method=backend))
        elapsed = time.perf_counter() - start
        bound, best_k, _ = spectral_bound_from_eigenvalues(
            eigenvalues, graph.num_vertices, M
        )
        rows.append(
            {
                "backend": backend,
                "n": graph.num_vertices,
                "h": h,
                "seconds": round(elapsed, 4),
                "lambda_2": float(eigenvalues[1]),
                "resulting_bound": max(0.0, bound),
                "best_k": best_k,
            }
        )
    return rows


def test_eigensolver_backends_agree(benchmark, solver_rows):
    rows = solver_rows
    graph = fft_graph(LEVELS)
    lap = laplacian(graph, normalized=True, sparse=True)
    run_once(
        benchmark,
        lambda: smallest_eigenvalues(lap, NUM_EIGENVALUES, EigenSolverOptions(method="sparse")),
    )

    print_dict_rows("Eigensolver backend comparison (butterfly Laplacian)", rows)

    reference = next(r for r in rows if r["backend"] == "dense")
    for row in rows:
        assert np.isclose(row["lambda_2"], reference["lambda_2"], atol=1e-3)
        if row["h"] == reference["h"]:
            assert np.isclose(
                row["resulting_bound"], reference["resulting_bound"], rtol=0.05, atol=1.0
            )
