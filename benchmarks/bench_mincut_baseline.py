"""Convex min-cut baseline acceleration on the Figure 7 FFT family.

Three claims of the rebuilt baseline layer, measured per graph and in
aggregate over the CI-scale family:

* **cold speedup** — the reusable flow network + default backend (scipy's
  C-compiled ``maximum_flow`` when available) + best-upper-bound-first
  pruning beat the legacy path (pure-Python Dinic, network rebuilt from
  scratch for every one of the ``O(n)`` per-vertex calls, exhaustive order)
  by ≥5x on the CI-scale family;
* **parity** — both paths produce the identical ``max_v C(v, G)`` (cut
  values are exact integers; this is asserted unconditionally);
* **warm re-runs are flow-free** — a second run against the persistent
  :class:`~repro.runtime.store.CutStore` performs **zero** max-flow calls
  (asserted unconditionally; this is the baseline-side analogue of the
  spectrum store's zero-eigensolve contract).

The measured numbers are persisted to ``BENCH_mincut.json`` at the
repository root as a perf record.

Defaults sweep FFT levels ``4..6``; set ``REPRO_BENCH_LARGE=1`` for
``6..8``.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import bench_print, pick, run_once, write_perf_record
from repro.baselines.convex_mincut import MinCutEngine
from repro.graphs.generators import fft_graph
from repro.runtime.store import CutStore

LEVELS = pick([4, 5, 6], [6, 7, 8])
SPEEDUP_TARGET = 5.0


def _legacy_max_cut(graph):
    """The pre-optimisation execution model: per-vertex rebuild, no pruning.

    ``backend="dinic"`` rebuilds a fresh pure-Python solver for every flow
    call and ``prune=False`` visits every vertex — the exact cost profile of
    the original ``convex_min_cut_max_value`` loop.
    """
    engine = MinCutEngine(graph, backend="dinic", prune=False)
    start = time.perf_counter()
    value, _ = engine.max_cut()
    return value, time.perf_counter() - start, engine


def _fast_max_cut(graph, store):
    """The optimised path: default backend, pruning, persistent cut table."""
    engine = MinCutEngine(graph, store=store)
    start = time.perf_counter()
    value, _ = engine.max_cut()
    return value, time.perf_counter() - start, engine


def test_mincut_cold_speedup_and_warm_flow_free(benchmark, tmp_path):
    store_root = tmp_path / "cuts"
    per_level = []
    legacy_total = 0.0
    cold_total = 0.0
    warm_total = 0.0

    bench_print()
    bench_print("== Convex min-cut baseline: legacy vs reusable-network path (FFT) ==")
    for level in LEVELS:
        graph = fft_graph(level)
        legacy_value, legacy_seconds, legacy_engine = _legacy_max_cut(graph)
        cold_value, cold_seconds, cold_engine = _fast_max_cut(
            graph, CutStore(store_root)
        )
        warm_value, warm_seconds, warm_engine = _fast_max_cut(
            graph, CutStore(store_root)
        )

        # Parity and the zero-flow warm contract are deterministic.
        assert cold_value == legacy_value == warm_value
        assert cold_engine.flow_calls > 0
        assert warm_engine.flow_calls == 0, (
            f"warm re-run of fft({level}) paid {warm_engine.flow_calls} flow calls"
        )

        legacy_total += legacy_seconds
        cold_total += cold_seconds
        warm_total += warm_seconds
        speedup = legacy_seconds / cold_seconds if cold_seconds > 0 else float("inf")
        per_level.append(
            {
                "level": level,
                "num_vertices": graph.num_vertices,
                "max_cut": int(legacy_value),
                "legacy_seconds": round(legacy_seconds, 4),
                "legacy_flow_calls": legacy_engine.flow_calls,
                "cold_seconds": round(cold_seconds, 4),
                "cold_flow_calls": cold_engine.flow_calls,
                "cold_pruned": cold_engine.pruned,
                "cold_backend": cold_engine.backend_id,
                "warm_seconds": round(warm_seconds, 4),
                "warm_flow_calls": warm_engine.flow_calls,
                "speedup": round(speedup, 2),
            }
        )
        bench_print(
            f"  fft({level}) n={graph.num_vertices:5d}: "
            f"legacy {legacy_seconds:7.3f}s ({legacy_engine.flow_calls} flows)  "
            f"cold {cold_seconds:7.3f}s ({cold_engine.flow_calls} flows, "
            f"{cold_engine.pruned} pruned, {cold_engine.backend_id})  "
            f"warm {warm_seconds:7.3f}s (0 flows)  {speedup:6.2f}x"
        )

    cold_speedup = legacy_total / cold_total if cold_total > 0 else float("inf")
    warm_speedup = legacy_total / warm_total if warm_total > 0 else float("inf")
    bench_print(
        f"  total: legacy {legacy_total:.3f}s, cold {cold_total:.3f}s "
        f"({cold_speedup:.2f}x), warm {warm_total:.3f}s ({warm_speedup:.2f}x)"
    )

    path = write_perf_record(
        "BENCH_mincut.json",
        {
            "benchmark": "mincut_baseline_fft",
            "levels": LEVELS,
            "per_level": per_level,
            "legacy_seconds": round(legacy_total, 4),
            "cold_seconds": round(cold_total, 4),
            "cold_speedup": round(cold_speedup, 2),
            "warm_seconds": round(warm_total, 4),
            "warm_speedup": round(warm_speedup, 2),
            "warm_flow_calls": 0,
            "speedup_target": SPEEDUP_TARGET,
        },
    )
    bench_print(f"[perf record written to {path}]")

    # Wall-clock assertions can be disabled on noisy shared runners; the
    # parity and flow-call counters above hold deterministically either way.
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert cold_speedup >= SPEEDUP_TARGET, (
            f"cold path only {cold_speedup:.2f}x faster than the legacy "
            f"per-vertex rebuild (target {SPEEDUP_TARGET}x)"
        )

    # Track the warm path (fresh engine, warm disk table) over time.
    def warm_max_cut():
        graph = fft_graph(LEVELS[-1])
        return _fast_max_cut(graph, CutStore(store_root))[0]

    run_once(benchmark, warm_max_cut)


def test_backend_parity_on_the_bench_family(tmp_path):
    """Every registered backend produces the same max cut on the smallest
    bench graph (the cheap CI-visible cross-check; the randomized parity
    property tests live in tests/test_flow_backends.py)."""
    graph = fft_graph(LEVELS[0])
    values = {
        backend: MinCutEngine(graph, backend=backend).max_cut()[0]
        for backend in ("dinic", "array-dinic", "scipy")
    }
    assert len(set(values.values())) == 1, values
