"""§5.2 + Theorem 7 — closed-form butterfly spectrum and FFT bound.

Two reproductions in one bench:

* **Theorem 7** — the closed-form Laplacian spectrum of the unwrapped
  butterfly is compared against the numerically computed spectrum of the
  generated FFT graph (exact agreement), and its evaluation is timed against
  the dense eigensolve it replaces.
* **§5.2 bound** — the closed-form FFT bound (paper's ``alpha`` choice and the
  optimised one) is compared against the numerical Theorem-5 bound and the
  published tight bound's growth term ``l·2^l / log M``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bound_unnormalized
from repro.core.closed_form import fft_io_bound, published_fft_bound
from repro.core.spectra import butterfly_spectrum_array
from repro.graphs.generators import fft_graph
from repro.graphs.laplacian import laplacian
from repro.solvers.dense import dense_spectrum

SPECTRUM_LEVELS = pick([2, 3, 4, 5, 6], [2, 3, 4, 5, 6, 7, 8])
BOUND_LEVELS = pick(list(range(4, 10)), list(range(4, 13)))
MEMORY_SIZES = [4, 8, 16]


def test_theorem7_butterfly_spectrum(benchmark):
    """Closed-form spectrum == numeric spectrum, and far cheaper to evaluate."""
    results = []
    for levels in SPECTRUM_LEVELS:
        graph = fft_graph(levels)
        numeric = dense_spectrum(laplacian(graph, normalized=False))
        closed = butterfly_spectrum_array(levels)
        max_error = float(np.max(np.abs(np.sort(numeric) - closed)))
        results.append(
            {"levels": levels, "n": graph.num_vertices, "max_abs_error": max_error}
        )
        assert max_error < 1e-6
    run_once(benchmark, lambda: butterfly_spectrum_array(max(SPECTRUM_LEVELS)))
    print_dict_rows("Theorem 7: closed-form butterfly spectrum accuracy", results)


@pytest.fixture(scope="module")
def fft_bound_rows():
    rows = []
    for levels in BOUND_LEVELS:
        graph = fft_graph(levels)
        for M in MEMORY_SIZES:
            closed = fft_io_bound(levels, M)
            numeric = spectral_bound_unnormalized(graph, M)
            rows.append(
                {
                    "l": levels,
                    "n": graph.num_vertices,
                    "M": M,
                    "closed_form": closed.value,
                    "closed_form_alpha": closed.alpha,
                    "numeric_thm5": numeric.value,
                    "published_growth_term": published_fft_bound(levels, M),
                }
            )
    return rows


def test_section52_fft_bound_vs_numeric(benchmark, fft_bound_rows):
    rows = fft_bound_rows
    run_once(benchmark, lambda: fft_io_bound(max(BOUND_LEVELS), 4))

    print_dict_rows("§5.2: closed-form vs numerical FFT bounds", rows, csv_name="closed_form_fft")

    for row in rows:
        # The closed form drops part of the eigenvalue mass, so the numerical
        # Theorem-5 bound on the same graph dominates it (up to floor slack).
        assert row["closed_form"] <= row["numeric_thm5"] + 4.0 * row["l"]
        # Both sit below the published asymptotically tight bound's growth term.
        assert row["closed_form"] <= row["published_growth_term"]
