"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one of the paper's tables/figures: it runs
the corresponding sweep, prints the same series the figure plots (so the
console output of ``pytest benchmarks/ --benchmark-only`` *is* the
reproduction), optionally writes CSVs (``REPRO_WRITE_RESULTS=1``), and times
the representative computation through ``pytest-benchmark``.

Graph sizes default to CI-friendly caps; ``REPRO_BENCH_LARGE=1`` switches to
paper-scale sweeps (minutes to hours, exactly like the original evaluation).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Callable, List, Mapping, Optional, Sequence

from repro.analysis.figures import FigureSeries, linear_fit_r_squared, series_from_rows
from repro.analysis.reporting import format_table, maybe_write_results
from repro.analysis.sweep import SweepRow
from repro.core.engine import BoundEngine
from repro.core.formula import DEFAULT_NUM_EIGENVALUES
from repro.graphs.compgraph import ComputationGraph
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = [
    "large_mode",
    "pick",
    "bench_print",
    "print_figure",
    "print_rows",
    "print_dict_rows",
    "run_once",
    "check_series_shape",
    "engine_for",
    "orchestrated_sweep",
    "write_perf_record",
]


#: pytest's CaptureManager, injected by benchmarks/conftest.py so the tables
#: below remain visible without running pytest with ``-s``.
_CAPTURE_MANAGER = None


def set_capture_manager(manager) -> None:
    """Record pytest's capture manager (called from benchmarks/conftest.py)."""
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = manager


def bench_print(*args: object) -> None:
    """Print to the real stdout, bypassing pytest's output capture.

    The whole point of the benchmark harness is that its console output *is*
    the reproduced figure data, so it must be visible even without ``-s``.
    """
    manager = _CAPTURE_MANAGER
    if manager is not None and hasattr(manager, "global_and_fixture_disabled"):
        with manager.global_and_fixture_disabled():
            print(*args)
            sys.stdout.flush()
    else:
        print(*args, file=sys.__stdout__)
        sys.__stdout__.flush()


def large_mode() -> bool:
    """True when paper-scale sweeps were requested via REPRO_BENCH_LARGE=1."""
    return os.environ.get("REPRO_BENCH_LARGE", "0") == "1"


def engine_for(
    graph: ComputationGraph,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    cache: Optional[SpectrumCache] = None,
    store=None,
) -> BoundEngine:
    """The harness's standard way to build a :class:`BoundEngine`.

    Pass an explicit ``cache`` for timing runs that must control exactly
    which eigensolves are shared (as ``bench_engine_cache.py`` does), or a
    persistent ``store`` (:class:`repro.runtime.store.SpectrumStore`) for
    runs that should skip eigensolves already paid for by earlier runs;
    otherwise the process-wide default cache is used, so harness engines
    share eigensolves with every other default-constructed engine.
    """
    return BoundEngine(graph, num_eigenvalues=num_eigenvalues, cache=cache, store=store)


def orchestrated_sweep(
    family: str,
    graph_builder,
    size_params: Sequence[int],
    memory_sizes: Sequence[int],
    methods: Sequence[str] = ("spectral",),
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    store=None,
    processes: int = 1,
):
    """Run a family sweep through the runtime orchestrator.

    This is how the harness exercises the pooled/persistent execution paths
    (``bench_runtime_store.py``): it returns the orchestrator's
    :class:`~repro.runtime.orchestrator.SweepReport`, whose
    ``num_eigensolves`` makes cold/warm behaviour assertable.
    """
    from repro.runtime.orchestrator import SweepOrchestrator

    orchestrator = SweepOrchestrator(
        store=store, processes=processes, num_eigenvalues=num_eigenvalues
    )
    return orchestrator.run_family(
        family, graph_builder, size_params, memory_sizes, methods=methods
    )


def write_perf_record(name: str, payload: Mapping[str, object]) -> Path:
    """Persist a JSON perf record (e.g. ``BENCH_engine.json``) at the repo root.

    Performance-tracking records are written unconditionally (unlike the CSV
    figure data, which is opt-in): they are tiny and give the repository a
    perf trajectory across PRs.  Every record carries the environment
    fingerprint (git sha, ``cpu_count``, python/numpy/scipy versions,
    hostname) — a ``fleet_warm_speedup`` of 0.95 means something entirely
    different on a 1-core runner than on a 16-core box — and is also
    appended to the ``BENCH_HISTORY.jsonl`` ledger the
    ``python -m repro obs perf`` sentinel checks for regressions.
    """
    from repro.obs.perf import (
        HISTORY_FILENAME,
        append_history,
        environment_fingerprint,
        history_record,
    )

    root = Path(__file__).resolve().parent.parent
    fingerprint = environment_fingerprint()
    record = dict(payload)
    record["cpu_count"] = fingerprint["cpu_count"]
    record["environment"] = fingerprint
    path = root / name
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    append_history(
        history_record(name, payload, fingerprint=fingerprint),
        root / HISTORY_FILENAME,
    )
    return path


def pick(default, large):
    """Choose between the CI-scale and paper-scale value of a parameter."""
    return large if large_mode() else default


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The sweeps here take seconds; repeating them the default 5+ rounds would
    multiply the harness runtime without adding information, so every bench
    uses a single measured round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_rows(title: str, rows: Sequence[SweepRow], csv_name: str | None = None) -> None:
    """Print a sweep as a table and optionally persist it as CSV."""
    bench_print()
    bench_print(format_table(rows, title=title))
    if csv_name:
        path = maybe_write_results(csv_name, rows)
        if path is not None:
            bench_print(f"[csv written to {path}]")


def print_dict_rows(title: str, rows: Sequence[dict], csv_name: str | None = None) -> None:
    """Print a list of plain-dict result rows (for the non-sweep benches)."""
    bench_print()
    bench_print(format_table(rows, title=title))
    if csv_name:
        path = maybe_write_results(csv_name, rows)
        if path is not None:
            bench_print(f"[csv written to {path}]")


def print_figure(figure: FigureSeries) -> None:
    """Print the per-series points of a figure (what the paper plots)."""
    bench_print()
    bench_print(f"== {figure.name}  ({figure.y_label} vs {figure.x_label}) ==")
    for label, points in sorted(figure.series.items()):
        formatted = ", ".join(f"({x:g}, {y:.1f})" for x, y in points)
        bench_print(f"  {label}: {formatted}")


def check_series_shape(rows: Sequence[SweepRow], x_of, min_r_squared: float = 0.0) -> List[float]:
    """Sanity-check the growth shape of the spectral series (§6.4).

    For every (method=spectral, M) series with at least three non-trivial
    points, checks that the bound is non-decreasing in the growth term and —
    if ``min_r_squared`` is positive — that a linear fit against the published
    growth term explains at least that fraction of the variance.  Returns the
    list of R² values (for reporting).
    """
    figure = series_from_rows("shape-check", list(rows), x_of=x_of, x_label="growth-term")
    r_squared_values: List[float] = []
    for label, points in figure.series.items():
        if not label.startswith("Spectral,"):
            continue
        nontrivial = [(x, y) for x, y in points if y > 0]
        if len(nontrivial) < 3:
            continue
        ys = [y for _, y in sorted(nontrivial)]
        assert all(a <= b * 1.05 + 1e-9 for a, b in zip(ys, ys[1:])), (
            f"series {label!r} is not (approximately) monotone in the growth term: {ys}"
        )
        r2 = linear_fit_r_squared(nontrivial)
        r_squared_values.append(r2)
        assert r2 >= min_r_squared, f"series {label!r} deviates from linear growth (R²={r2:.3f})"
    return r_squared_values
