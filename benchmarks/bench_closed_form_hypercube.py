"""§5.1 — closed-form Bellman-Held-Karp (hypercube) bound vs numerical bound.

The paper derives a closed-form instantiation of Theorem 5 for the boolean
hypercube.  This bench regenerates the comparison: for each ``l`` and ``M`` it
reports the closed-form value (optimised over the eigenvalue level ``alpha``),
the simplified ``alpha = 1`` expression ``2^{l+1}/(l+1) - 2M(l+1)``, and the
fully numerical spectral bounds (Theorems 4 and 5) on the generated graph.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bound, spectral_bound_unnormalized
from repro.core.closed_form import hypercube_io_bound, hypercube_io_bound_alpha1
from repro.graphs.generators import bellman_held_karp_graph

CITIES = pick(list(range(6, 13)), list(range(6, 16)))
MEMORY_SIZES = [16, 32, 64]


def _rows():
    rows = []
    for l in CITIES:
        graph = bellman_held_karp_graph(l)
        for M in MEMORY_SIZES:
            closed = hypercube_io_bound(l, M)
            numeric_t5 = spectral_bound_unnormalized(graph, M)
            numeric_t4 = spectral_bound(graph, M)
            rows.append(
                {
                    "l": l,
                    "n": graph.num_vertices,
                    "M": M,
                    "closed_form": closed.value,
                    "closed_form_alpha": closed.alpha,
                    "closed_form_alpha1": max(0.0, hypercube_io_bound_alpha1(l, M)),
                    "numeric_thm5": numeric_t5.value,
                    "numeric_thm4": numeric_t4.value,
                }
            )
    return rows


@pytest.fixture(scope="module")
def hypercube_rows():
    return _rows()


def test_closed_form_hypercube_vs_numeric(benchmark, hypercube_rows):
    rows = hypercube_rows
    run_once(benchmark, lambda: hypercube_io_bound(max(CITIES), 16))

    print_dict_rows("§5.1: closed-form vs numerical hypercube bounds", rows, csv_name="closed_form_hypercube")

    for row in rows:
        # The closed form never beats the numerically optimised Theorem 5 by
        # more than its floor(n/k) vs n/k slack, and Theorem 4 dominates both.
        assert row["closed_form"] <= row["numeric_thm5"] + 2.0 * row["l"]
        assert row["numeric_thm4"] >= row["numeric_thm5"] - 1e-6
        assert row["closed_form"] >= max(0.0, row["closed_form_alpha1"]) - 1e-9
