"""Figure 10 — I/O lower bounds for the Bellman-Held-Karp TSP dynamic program.

Top panel: computed bound vs the number of cities ``l`` for
``M ∈ {16, 32, 64}``, spectral vs convex min-cut.  Bottom panel: the spectral
bound vs the growth term ``2^l / l`` derived in §5.1.

Defaults sweep ``l = 6..12``; ``REPRO_BENCH_LARGE=1`` extends to the paper's
``l = 15`` (a 32k-vertex hypercube).
"""

from __future__ import annotations

import pytest

from benchmarks.common import check_series_shape, pick, print_figure, print_rows, run_once
from repro.analysis.figures import series_from_rows
from repro.analysis.sweep import sweep
from repro.graphs.generators import bellman_held_karp_graph

MEMORY_SIZES = [16, 32, 64]
CITIES = pick(list(range(6, 13)), list(range(6, 16)))
CONVEX_MAX_VERTICES = pick(300, 1100)


@pytest.fixture(scope="module")
def bhk_rows():
    return sweep(
        "bellman-held-karp",
        bellman_held_karp_graph,
        size_params=CITIES,
        memory_sizes=MEMORY_SIZES,
        methods=("spectral", "convex-min-cut"),
        max_vertices={"convex-min-cut": CONVEX_MAX_VERTICES},
    )


def test_fig10_bhk_bounds(benchmark, bhk_rows):
    rows = bhk_rows
    from repro.core.bounds import spectral_bound

    run_once(benchmark, lambda: spectral_bound(bellman_held_karp_graph(max(CITIES)), 16))

    print_rows(
        "Figure 10 data: Bellman-Held-Karp I/O lower bounds", rows, csv_name="fig10_bhk"
    )
    print_figure(series_from_rows("fig10-top", rows, x_of=lambda r: r.size_param, x_label="l"))
    print_figure(
        series_from_rows(
            "fig10-bottom",
            [r for r in rows if r.method == "spectral"],
            x_of=lambda r: 2**r.size_param / r.size_param,
            x_label="2^l / l",
        )
    )

    check_series_shape(
        [r for r in rows if r.method == "spectral"],
        x_of=lambda r: 2**r.size_param / r.size_param,
        min_r_squared=0.8,
    )
    # The spectral bound at the largest size and M=16 is non-trivial and
    # exceeds the convex baseline values observed on its (smaller) graphs.
    spectral_largest = [
        r.bound
        for r in rows
        if r.method == "spectral" and r.size_param == max(CITIES) and r.memory_size == 16
    ]
    convex_best = max(
        (r.bound for r in rows if r.method == "convex-min-cut"), default=0.0
    )
    assert spectral_largest and spectral_largest[0] > 0
    assert spectral_largest[0] >= convex_best
