"""§4.4 / Theorem 6 — parallel spectral bounds.

The paper extends the spectral bound to ``p`` processors: at least one
processor incurs ``floor(n/(kp)) * sum lambda_i - 2kM`` I/Os.  This bench
reports the parallel bound as a function of the processor count for the FFT
and Bellman-Held-Karp graphs and compares it against the worst per-processor
I/O of a concrete block-distributed execution (an upper-bound construction),
verifying the sandwich ``Theorem 6 <= worst processor of any execution``.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import parallel_spectral_bound
from repro.graphs.generators import bellman_held_karp_graph, fft_graph
from repro.parallel.assignment import contiguous_assignment
from repro.parallel.bound import max_processor_simulated_io

PROCESSORS = [1, 2, 4, 8]
CASES = [
    ("fft", fft_graph, pick(8, 10), 4),
    ("bellman-held-karp", bellman_held_karp_graph, pick(10, 12), 16),
]


@pytest.fixture(scope="module")
def parallel_rows():
    rows = []
    for family, builder, size, M in CASES:
        graph = builder(size)
        for p in PROCESSORS:
            lower = parallel_spectral_bound(graph, M, num_processors=p)
            upper = max_processor_simulated_io(graph, contiguous_assignment(graph, p), M)
            rows.append(
                {
                    "family": family,
                    "size_param": size,
                    "n": graph.num_vertices,
                    "M": M,
                    "processors": p,
                    "theorem6_bound": lower.value,
                    "best_k": lower.best_k,
                    "worst_processor_simulated_io": upper,
                }
            )
    return rows


def test_parallel_spectral_bound(benchmark, parallel_rows):
    rows = parallel_rows
    family, builder, size, M = CASES[0]
    run_once(benchmark, lambda: parallel_spectral_bound(builder(size), M, num_processors=4))

    print_dict_rows("Theorem 6: parallel spectral bounds vs simulated executions", rows, csv_name="parallel_bounds")

    by_family: dict = {}
    for row in rows:
        # Soundness: the lower bound never exceeds the constructed execution.
        assert row["theorem6_bound"] <= row["worst_processor_simulated_io"] + 1e-9
        by_family.setdefault(row["family"], []).append(
            (row["processors"], row["theorem6_bound"])
        )
    # The bound is non-increasing in the processor count.
    for values in by_family.values():
        values.sort()
        bounds = [b for _, b in values]
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))
    # The single-processor case is non-trivial for both families.
    assert all(values[0][1] > 0 for values in by_family.values())
