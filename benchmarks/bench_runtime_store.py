"""Persistent store + pooled orchestration on the Figure 7 FFT family.

Two claims of the runtime subsystem, measured on the same family sweep the
engine benchmark uses:

* **cold vs warm** — a sweep against a fresh :class:`SpectrumStore` pays one
  eigensolve per (graph, normalisation) and publishes every spectrum; the
  *same* sweep re-run against that store (fresh process-level caches)
  performs **zero** eigensolves and is correspondingly faster;
* **serial vs pooled** — a cold sweep fanned over a 2-worker process pool
  finishes faster than the serial loop once the per-graph work dominates
  the pool startup cost (paper-scale graphs; at CI scale the numbers are
  recorded but not asserted).

The measured numbers are persisted to ``BENCH_runtime.json`` at the
repository root as a perf record.

Defaults sweep ``l = 5..8``; set ``REPRO_BENCH_LARGE=1`` for the paper's
``l = 8..12`` range.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import (
    bench_print,
    orchestrated_sweep,
    pick,
    run_once,
    write_perf_record,
)
from repro.graphs.generators import fft_graph
from repro.runtime.store import SpectrumStore

LEVELS = pick(list(range(5, 9)), list(range(8, 13)))
MEMORY_SIZES = [4, 8, 16, 32]
METHODS = ("spectral", "spectral-unnormalized")
NUM_EIGENVALUES = 100
POOL_PROCESSES = 2


def _timed_sweep(store_root, processes: int = 1):
    start = time.perf_counter()
    report = orchestrated_sweep(
        "fft",
        fft_graph,
        LEVELS,
        MEMORY_SIZES,
        methods=METHODS,
        num_eigenvalues=NUM_EIGENVALUES,
        store=SpectrumStore(store_root) if store_root else None,
        processes=processes,
    )
    return report, time.perf_counter() - start


def test_runtime_store_cold_warm_and_pooled(benchmark, tmp_path):
    store_root = tmp_path / "spectra"

    cold_report, cold_seconds = _timed_sweep(store_root)
    warm_report, warm_seconds = _timed_sweep(store_root)

    # The subsystem's contract: the first run solves once per (graph,
    # normalisation) and the second run never solves at all.
    expected_solves = len(LEVELS) * len(METHODS)
    assert cold_report.num_eigensolves == expected_solves
    assert warm_report.num_eigensolves == 0
    assert SpectrumStore(store_root).stats()["solves_recorded"] == expected_solves
    cold_bounds = [r.bound for r in cold_report.rows]
    assert [r.bound for r in warm_report.rows] == cold_bounds

    # Pooled cold run on its own store: identical rows, same solve count
    # (each worker solves its own graphs; nothing solved twice).
    pool_root = tmp_path / "spectra-pooled"
    pooled_report, pooled_seconds = _timed_sweep(pool_root, processes=POOL_PROCESSES)
    assert pooled_report.num_eigensolves == expected_solves
    assert [r.bound for r in pooled_report.rows] == cold_bounds

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    pool_speedup = cold_seconds / pooled_seconds if pooled_seconds > 0 else float("inf")

    bench_print()
    bench_print("== Persistent spectrum store + pooled sweep (Figure 7 FFT family) ==")
    bench_print(f"  levels: {LEVELS}, memory sizes: {MEMORY_SIZES}, methods: {METHODS}")
    bench_print(
        f"  cold (serial):  {cold_seconds:8.3f}s  ({cold_report.num_eigensolves} eigensolves)"
    )
    bench_print(
        f"  warm (serial):  {warm_seconds:8.3f}s  ({warm_report.num_eigensolves} eigensolves)"
    )
    bench_print(
        f"  cold (pool x{POOL_PROCESSES}): {pooled_seconds:8.3f}s  "
        f"({pooled_report.num_eigensolves} eigensolves)"
    )
    bench_print(f"  warm speedup:   {warm_speedup:8.2f}x")
    bench_print(f"  pool speedup:   {pool_speedup:8.2f}x  (vs serial cold)")

    path = write_perf_record(
        "BENCH_runtime.json",
        {
            "benchmark": "runtime_store_fft",
            "levels": LEVELS,
            "memory_sizes": MEMORY_SIZES,
            "methods": list(METHODS),
            "num_eigenvalues": NUM_EIGENVALUES,
            "cold_seconds": round(cold_seconds, 4),
            "cold_eigensolves": cold_report.num_eigensolves,
            "warm_seconds": round(warm_seconds, 4),
            "warm_eigensolves": warm_report.num_eigensolves,
            "warm_speedup": round(warm_speedup, 2),
            "pool_processes": POOL_PROCESSES,
            "pooled_seconds": round(pooled_seconds, 4),
            "pooled_eigensolves": pooled_report.num_eigensolves,
            "pool_speedup": round(pool_speedup, 2),
        },
    )
    bench_print(f"[perf record written to {path}]")

    # Skipping every eigensolve must be an end-to-end win.  Wall-clock
    # assertions can be disabled on noisy shared runners; the eigensolve
    # counts above prove the store behaviour deterministically either way.
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert warm_speedup >= 1.5, f"warm run only {warm_speedup:.2f}x faster than cold"

    # Track the warm sweep (fresh in-memory caches, warm disk) over time.
    def warm_sweep():
        return _timed_sweep(store_root)[0]

    run_once(benchmark, warm_sweep)


def test_store_survives_process_boundary(tmp_path):
    """A pooled run warms the store for a later serial run, and vice versa."""
    store_root = tmp_path / "spectra"
    pooled, _ = _timed_sweep(store_root, processes=POOL_PROCESSES)
    assert pooled.num_eigensolves == len(LEVELS) * len(METHODS)
    serial, _ = _timed_sweep(store_root)
    assert serial.num_eigensolves == 0
