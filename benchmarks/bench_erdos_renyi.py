"""§5.3 — probabilistic bound for Erdős–Rényi graphs vs numerical bound.

The paper's probabilistic analysis predicts, with high probability over
``G(n, p)``:

* near the connectivity threshold (``p = p0 log n / (n-1)``, ``p0 > 6``) a
  bound of roughly ``n / (1 + sqrt(6/p0)) * (1 - sqrt(2/p0)) - 4M``;
* in the dense regime (``np / log n -> ∞``) roughly ``n/2 - 4M``.

This bench samples random graphs in both regimes, computes the numerical
Theorem-5 bound (which is what the analysis instantiates with ``k = 2``), and
compares it with the closed-form prediction: the prediction must be of the
same order and — since it keeps only the leading terms — not wildly above the
measured value.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import print_dict_rows, pick, run_once
from repro.core.bounds import spectral_bound_unnormalized
from repro.core.closed_form import erdos_renyi_io_bound
from repro.graphs.generators import erdos_renyi_dag

SIZES = pick([200, 400, 800], [200, 400, 800, 1600, 3200])
M = 8
SEED = 20200623


def _cases():
    cases = []
    for n in SIZES:
        sparse_p = min(1.0, 12.0 * math.log(n) / (n - 1))  # p0 = 12 > 6
        cases.append(("sparse", n, sparse_p))
        cases.append(("dense", n, 0.3))
    return cases


@pytest.fixture(scope="module")
def er_rows():
    rows = []
    for regime, n, p in _cases():
        graph = erdos_renyi_dag(n, p, seed=SEED + n)
        numeric = spectral_bound_unnormalized(graph, M, num_eigenvalues=20)
        predicted = erdos_renyi_io_bound(n, p, M, regime=regime)
        rows.append(
            {
                "regime": regime,
                "n": n,
                "p": round(p, 4),
                "num_edges": graph.num_edges,
                "predicted_bound": predicted,
                "numeric_thm5": numeric.value,
                "numeric_thm4_k": numeric.best_k,
            }
        )
    return rows


def test_erdos_renyi_probabilistic_bound(benchmark, er_rows):
    rows = er_rows
    run_once(
        benchmark,
        lambda: spectral_bound_unnormalized(
            erdos_renyi_dag(max(SIZES), 0.3, seed=SEED), M, num_eigenvalues=20
        ),
    )

    print_dict_rows("§5.3: Erdős–Rényi probabilistic vs numerical bounds", rows, csv_name="erdos_renyi")

    for row in rows:
        # Both predicted and measured bounds are non-trivial and scale with n.
        assert row["numeric_thm5"] > 0
        assert row["predicted_bound"] > 0
        # The prediction keeps only the leading terms of a high-probability
        # statement; it must be within a small constant factor of the measured
        # value (the paper's point is the linear-in-n scaling, not constants).
        ratio = row["predicted_bound"] / row["numeric_thm5"]
        assert 0.05 < ratio < 20.0

    # Scaling with n in the dense regime (§5.3 conclusion): the measured bound
    # grows at least proportionally to n once the -4M offset is removed
    # (finite-size fluctuations make the constant factors noisy, so only the
    # direction and order of growth are checked).
    dense = sorted((r["n"], r["numeric_thm5"]) for r in rows if r["regime"] == "dense")
    if len(dense) >= 2:
        (n1, b1), (n2, b2) = dense[0], dense[-1]
        assert b2 > b1
        assert (b2 + 4 * M) / (b1 + 4 * M) > 0.5 * (n2 / n1)
