"""BoundEngine + SpectrumCache vs per-call bounds on the Figure 7 FFT family.

The point of the engine layer: a figure sweep evaluates every (M, method)
combination on each graph, but the eigensolve only depends on the graph and
the normalisation.  This benchmark runs the Figure 7 FFT family both ways —

* **per-call**: ``spectral_bound(graph, M, normalized=...)`` for every
  (M, method) combination, exactly what the pre-engine pipeline did (one
  eigensolve per combination);
* **engine**: one ``BoundEngine.sweep`` per graph over the same combinations
  (one eigensolve per (graph, normalisation), i.e. two per graph).

It asserts the two produce identical bounds, that the engine performs exactly
``2 * len(LEVELS)`` eigensolves, and that the engine sweep is at least 3x
faster end-to-end.  The measured numbers are persisted to
``BENCH_engine.json`` at the repository root as a perf record.

Defaults sweep ``l = 5..8``; set ``REPRO_BENCH_LARGE=1`` for the paper's
``l = 8..12`` range.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.common import bench_print, engine_for, pick, run_once, write_perf_record
from repro import obs
from repro.core.bounds import spectral_bound
from repro.graphs.generators import fft_graph
from repro.solvers.spectrum_cache import SpectrumCache

LEVELS = pick(list(range(5, 9)), list(range(8, 13)))
MEMORY_SIZES = [4, 8, 16, 32]
METHODS = ("spectral", "spectral-unnormalized")
NUM_EIGENVALUES = 100


@pytest.fixture(scope="module")
def fft_family():
    return {level: fft_graph(level) for level in LEVELS}


def _per_call_sweep(graphs):
    """The pre-engine pipeline: one eigensolve per (graph, M, method)."""
    bounds = {}
    for level, graph in graphs.items():
        for method in METHODS:
            for M in MEMORY_SIZES:
                result = spectral_bound(
                    graph,
                    M,
                    num_eigenvalues=NUM_EIGENVALUES,
                    normalized=method == "spectral",
                )
                bounds[(level, method, M)] = result.value
    return bounds


def _engine_sweep(graphs, cache):
    """One BoundEngine.sweep per graph; eigensolves shared via ``cache``."""
    bounds = {}
    eigensolves = 0
    for level, graph in graphs.items():
        engine = engine_for(graph, num_eigenvalues=NUM_EIGENVALUES, cache=cache)
        for point in engine.sweep(MEMORY_SIZES, methods=METHODS):
            bounds[(level, point.method, point.memory_size)] = point.bound
        eigensolves += engine.num_eigensolves
    return bounds, eigensolves


def test_engine_cache_speedup(benchmark, fft_family):
    """The engine sweep matches per-call bounds with ~|M| x fewer solves."""
    start = time.perf_counter()
    per_call_bounds = _per_call_sweep(fft_family)
    per_call_seconds = time.perf_counter() - start

    cache = SpectrumCache(max_entries=2 * len(LEVELS))
    start = time.perf_counter()
    engine_bounds, eigensolves = _engine_sweep(fft_family, cache)
    engine_seconds = time.perf_counter() - start

    # Identical bounds, exactly one eigensolve per (graph, normalisation).
    assert engine_bounds.keys() == per_call_bounds.keys()
    for key, value in per_call_bounds.items():
        assert engine_bounds[key] == pytest.approx(value, rel=1e-9, abs=1e-9)
    assert eigensolves == 2 * len(LEVELS)
    assert cache.misses == 2 * len(LEVELS)

    per_call_solves = len(LEVELS) * len(METHODS) * len(MEMORY_SIZES)
    speedup = per_call_seconds / engine_seconds if engine_seconds > 0 else float("inf")

    bench_print()
    bench_print("== BoundEngine spectrum-cache speedup (Figure 7 FFT family) ==")
    bench_print(f"  levels: {LEVELS}, memory sizes: {MEMORY_SIZES}, methods: {METHODS}")
    bench_print(
        f"  per-call: {per_call_seconds:8.3f}s  ({per_call_solves} eigensolves)"
    )
    bench_print(f"  engine:   {engine_seconds:8.3f}s  ({eigensolves} eigensolves)")
    bench_print(f"  speedup:  {speedup:8.2f}x")

    path = write_perf_record(
        "BENCH_engine.json",
        {
            "benchmark": "engine_spectrum_cache_fft",
            "levels": LEVELS,
            "memory_sizes": MEMORY_SIZES,
            "methods": list(METHODS),
            "num_eigenvalues": NUM_EIGENVALUES,
            "per_call_seconds": round(per_call_seconds, 4),
            "per_call_eigensolves": per_call_solves,
            "engine_seconds": round(engine_seconds, 4),
            "engine_eigensolves": eigensolves,
            "speedup": round(speedup, 2),
        },
    )
    bench_print(f"[perf record written to {path}]")

    # The acceptance bar: amortising |M| x |methods| = 8 eigensolves into 2
    # must be at least a 3x end-to-end win (it is ~5x in practice).  The
    # wall-clock assertion can be disabled (REPRO_BENCH_TIMING_ASSERT=0) on
    # noisy shared runners; the eigensolve-count asserts above prove the
    # amortisation deterministically either way.
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert speedup >= 3.0, f"engine sweep only {speedup:.2f}x faster than per-call"

    # Time the engine sweep (on a fresh cache) as the tracked benchmark.
    run_once(
        benchmark,
        lambda: _engine_sweep(fft_family, SpectrumCache(max_entries=2 * len(LEVELS))),
    )


def test_warm_cache_sweep_is_solve_free(fft_family):
    """A second sweep over the same family reuses every spectrum."""
    cache = SpectrumCache(max_entries=2 * len(LEVELS))
    _engine_sweep(fft_family, cache)
    misses_before = cache.misses
    _, eigensolves = _engine_sweep(fft_family, cache)
    assert eigensolves == 0
    assert cache.misses == misses_before


def test_disabled_obs_is_noop_on_hot_path(fft_family):
    """Disabled tracing must be invisible on the engine hot path (<2%).

    With no tracer configured ``obs.span`` hands back one shared no-op
    object (asserted by identity — the disabled path allocates no span),
    so the only residual cost is the call itself.  The guard prices that
    call at one span site per (graph, M, method) combination — already an
    overcount: a fully warm sweep performs zero eigensolves, so it enters
    zero eigensolve spans — and requires the total to stay under 2% of the
    measured warm-sweep wall time.
    """
    obs.disable()
    assert not obs.enabled()
    noop = obs.span("eigensolve", fingerprint=None)
    assert noop is obs.span("mincut")  # shared singleton, not a fresh object

    cache = SpectrumCache(max_entries=2 * len(LEVELS))
    _engine_sweep(fft_family, cache)  # warm every spectrum
    warm_seconds = min(
        _timed(lambda: _engine_sweep(fft_family, cache)) for _ in range(3)
    )

    calls = 20000
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("eigensolve", fingerprint=None, h=100, dtype="float64"):
            pass
    per_span = (time.perf_counter() - start) / calls

    sites = len(LEVELS) * len(METHODS) * len(MEMORY_SIZES)
    overhead = per_span * sites
    bench_print()
    bench_print("== disabled-obs overhead guard ==")
    bench_print(
        f"  warm sweep: {warm_seconds * 1e3:8.3f}ms, no-op span: "
        f"{per_span * 1e9:6.1f}ns, {sites} sites -> "
        f"{overhead / warm_seconds * 100:.3f}% overhead"
    )
    if os.environ.get("REPRO_BENCH_TIMING_ASSERT", "1") != "0":
        assert overhead < 0.02 * warm_seconds, (
            f"no-op observability costs {overhead / warm_seconds * 100:.2f}% "
            f"of a warm sweep (budget 2%)"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
