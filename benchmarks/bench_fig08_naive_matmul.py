"""Figure 8 — I/O lower bounds for naive n×n matrix multiplication.

Top panel: computed bound vs ``n`` for ``M ∈ {32, 64, 128}``.  Bottom panel:
the spectral bound vs the published growth term ``n^3``.  The graphs use the
paper's granularity (one n-ary summation per output entry, max in-degree
``n``); the convex min-cut baseline is trivial on this family (§6.4), which
the bench asserts.

Defaults sweep ``n ∈ {4, 8, 12, 16}``; ``REPRO_BENCH_LARGE=1`` extends to
``n = 24`` (the paper goes to 64, i.e. ~2.6M-vertex graphs, which is beyond a
laptop-scale dense eigensolve — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from benchmarks.common import check_series_shape, pick, print_figure, print_rows, run_once
from repro.analysis.figures import series_from_rows
from repro.analysis.sweep import sweep
from repro.graphs.generators import naive_matmul_graph

MEMORY_SIZES = [32, 64, 128]
SIZES = pick([4, 8, 12, 16], [4, 8, 12, 16, 20, 24])
CONVEX_MAX_VERTICES = pick(800, 2500)


def build(n: int):
    return naive_matmul_graph(n, reduction="flat")


@pytest.fixture(scope="module")
def matmul_rows():
    return sweep(
        "naive-matmul",
        build,
        size_params=SIZES,
        memory_sizes=MEMORY_SIZES,
        methods=("spectral", "convex-min-cut"),
        max_vertices={"convex-min-cut": CONVEX_MAX_VERTICES},
    )


def test_fig08_naive_matmul_bounds(benchmark, matmul_rows):
    rows = matmul_rows
    from repro.core.bounds import spectral_bound

    run_once(benchmark, lambda: spectral_bound(build(max(SIZES)), 32))

    print_rows("Figure 8 data: naive matmul I/O lower bounds", rows, csv_name="fig08_matmul")
    print_figure(series_from_rows("fig8-top", rows, x_of=lambda r: r.size_param, x_label="n"))
    print_figure(
        series_from_rows(
            "fig8-bottom",
            [r for r in rows if r.method == "spectral"],
            x_of=lambda r: r.size_param**3,
            x_label="n^3",
        )
    )

    check_series_shape(
        [r for r in rows if r.method == "spectral"], x_of=lambda r: r.size_param**3
    )
    # §6.4: the convex min-cut baseline is trivial for naive matmul.
    convex_rows = [r for r in rows if r.method == "convex-min-cut"]
    assert all(r.bound == 0.0 for r in convex_rows)
    # The spectral bound is therefore at least as tight everywhere it was run.
    spectral_rows = [r for r in rows if r.method == "spectral"]
    assert all(r.bound >= 0.0 for r in spectral_rows)
