"""High-level tracing entry points.

:func:`trace_computation` runs a user function on freshly created traced
inputs and returns the extracted computation graph; this is the one-call
equivalent of the paper's "solver" workflow.  The function may accept scalars,
flat lists or nested lists of scalars — the helpers mirror that structure with
:class:`TracedValue` objects.
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, List, Sequence, Tuple, Union

from repro.graphs.compgraph import ComputationGraph
from repro.trace.tracer import GraphTracer
from repro.trace.value import TracedValue

__all__ = ["trace_computation", "trace_scalar_function"]

NestedNumbers = Union[float, int, Sequence["NestedNumbers"]]


def _wrap_structure(tracer: GraphTracer, template: NestedNumbers, prefix: str) -> Any:
    """Replace every number in ``template`` by a traced input with the same value."""
    if isinstance(template, numbers.Real) and not isinstance(template, bool):
        return tracer.input(float(template), label=prefix)
    if isinstance(template, (list, tuple)):
        wrapped = [
            _wrap_structure(tracer, item, f"{prefix}[{i}]") for i, item in enumerate(template)
        ]
        return type(template)(wrapped) if isinstance(template, tuple) else wrapped
    raise TypeError(
        f"traceable inputs must be numbers or (nested) lists/tuples of numbers, "
        f"got {type(template).__name__}"
    )


def _collect_outputs(result: Any, collected: List[TracedValue]) -> None:
    """Collect every TracedValue in an arbitrarily nested result structure."""
    if isinstance(result, TracedValue):
        collected.append(result)
    elif isinstance(result, (list, tuple)):
        for item in result:
            _collect_outputs(item, collected)
    elif isinstance(result, dict):
        for item in result.values():
            _collect_outputs(item, collected)
    elif result is None or isinstance(result, numbers.Real):
        # Plain numbers can legitimately appear (e.g. untouched constants).
        return
    else:
        raise TypeError(
            f"traced function returned unsupported type {type(result).__name__}"
        )


def trace_computation(
    func: Callable[..., Any], *input_templates: NestedNumbers
) -> Tuple[ComputationGraph, GraphTracer]:
    """Trace ``func`` and return its computation graph.

    Parameters
    ----------
    func:
        A function of ``len(input_templates)`` arguments.  Each argument
        receives the same structure as the corresponding template with every
        number replaced by a traced input.
    input_templates:
        Concrete example inputs (numbers or nested lists/tuples of numbers);
        their values are propagated through the computation so the traced run
        also produces correct numerical results.

    Returns
    -------
    (graph, tracer)
        The extracted computation graph and the tracer (which exposes marked
        outputs and concrete results).

    Examples
    --------
    >>> def dot(xs, ys):
    ...     total = xs[0] * ys[0]
    ...     for a, b in zip(xs[1:], ys[1:]):
    ...         total = total + a * b
    ...     return total
    >>> graph, tracer = trace_computation(dot, [1.0, 2.0], [3.0, 4.0])
    >>> graph.num_vertices           # 4 inputs + 2 products + 1 addition
    7
    """
    tracer = GraphTracer()
    wrapped_args = [
        _wrap_structure(tracer, template, prefix=f"arg{i}")
        for i, template in enumerate(input_templates)
    ]
    result = func(*wrapped_args)
    outputs: List[TracedValue] = []
    _collect_outputs(result, outputs)
    for idx, out in enumerate(outputs):
        tracer.mark_output(out, label=tracer.graph.label(out.vertex) or f"out[{idx}]")
    return tracer.graph, tracer


def trace_scalar_function(
    func: Callable[..., Any], num_inputs: int
) -> Tuple[ComputationGraph, GraphTracer]:
    """Trace a function of ``num_inputs`` scalar arguments (all zero-valued).

    Convenience wrapper over :func:`trace_computation` for functions whose
    control flow does not depend on the input values.
    """
    if num_inputs < 0:
        raise ValueError(f"num_inputs must be non-negative, got {num_inputs}")
    templates = [0.0] * num_inputs
    return trace_computation(func, *templates)
