"""Traced scalar values.

A :class:`TracedValue` wraps a concrete Python number together with the graph
vertex that produced it.  Arithmetic on traced values records new vertices on
the owning :class:`repro.trace.tracer.GraphTracer`, so running ordinary
numerical code on traced inputs reconstructs its computation graph while
still computing the correct numerical result (useful for checking that the
traced program is faithful).

Mixing operands from different tracers is an error; mixing with plain Python
numbers is allowed — the number becomes a constant input vertex (memoised per
tracer, so repeated use of the same literal does not blow up the graph).
"""

from __future__ import annotations

import numbers
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import GraphTracer

__all__ = ["TracedValue"]

Number = Union[int, float]


class TracedValue:
    """A scalar carried through a traced computation.

    Attributes
    ----------
    vertex:
        The id of the graph vertex holding this value.
    value:
        The concrete numerical value (float).
    tracer:
        The :class:`GraphTracer` that owns the vertex.
    """

    __slots__ = ("tracer", "vertex", "value")

    def __init__(self, tracer: "GraphTracer", vertex: int, value: float) -> None:
        self.tracer = tracer
        self.vertex = vertex
        self.value = float(value)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["TracedValue", Number]) -> "TracedValue":
        if isinstance(other, TracedValue):
            if other.tracer is not self.tracer:
                raise ValueError("cannot mix values from different tracers")
            return other
        if isinstance(other, bool) or not isinstance(other, numbers.Real):
            raise TypeError(
                f"cannot trace operations with operand of type {type(other).__name__}"
            )
        return self.tracer.constant(float(other))

    def _binary(self, other: Union["TracedValue", Number], op: str, result: float) -> "TracedValue":
        rhs = self._coerce(other)
        return self.tracer.record(op, (self, rhs), result)

    # ------------------------------------------------------------------
    # arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other):
        rhs = self._coerce(other)
        return self._binary(rhs, "add", self.value + rhs.value)

    def __radd__(self, other):
        lhs = self._coerce(other)
        return lhs.__add__(self)

    def __sub__(self, other):
        rhs = self._coerce(other)
        return self._binary(rhs, "sub", self.value - rhs.value)

    def __rsub__(self, other):
        lhs = self._coerce(other)
        return lhs.__sub__(self)

    def __mul__(self, other):
        rhs = self._coerce(other)
        return self._binary(rhs, "mul", self.value * rhs.value)

    def __rmul__(self, other):
        lhs = self._coerce(other)
        return lhs.__mul__(self)

    def __truediv__(self, other):
        rhs = self._coerce(other)
        return self._binary(rhs, "div", self.value / rhs.value)

    def __rtruediv__(self, other):
        lhs = self._coerce(other)
        return lhs.__truediv__(self)

    def __pow__(self, other):
        rhs = self._coerce(other)
        return self._binary(rhs, "pow", self.value ** rhs.value)

    def __neg__(self):
        return self.tracer.record("neg", (self,), -self.value)

    def __abs__(self):
        return self.tracer.record("abs", (self,), abs(self.value))

    # ------------------------------------------------------------------
    # comparisons — compare concrete values, do not create vertices.
    # ------------------------------------------------------------------
    def __lt__(self, other):
        return self.value < _concrete(other)

    def __le__(self, other):
        return self.value <= _concrete(other)

    def __gt__(self, other):
        return self.value > _concrete(other)

    def __ge__(self, other):
        return self.value >= _concrete(other)

    def __eq__(self, other):  # value equality, deliberately not identity
        try:
            return self.value == _concrete(other)
        except TypeError:
            return NotImplemented

    def __hash__(self):
        return hash((id(self.tracer), self.vertex))

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracedValue(vertex={self.vertex}, value={self.value!r})"


def _concrete(other) -> float:
    if isinstance(other, TracedValue):
        return other.value
    if isinstance(other, numbers.Real) and not isinstance(other, bool):
        return float(other)
    raise TypeError(f"cannot compare TracedValue with {type(other).__name__}")
