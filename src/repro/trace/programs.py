"""Traced reference implementations of the paper's evaluation workloads.

Each function runs an ordinary Python implementation of the algorithm on
traced values and returns the extracted computation graph.  They serve two
purposes:

* examples/documentation of the tracer on realistic code, and
* cross-checks against the direct generators in
  :mod:`repro.graphs.generators` — the traced FFT must have the same vertex
  and edge counts as :func:`repro.graphs.generators.fft.fft_graph`, the traced
  inner product the same counts as
  :func:`repro.graphs.generators.basic.inner_product_graph`, and so on (these
  assertions live in ``tests/test_trace_programs.py``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graphs.compgraph import ComputationGraph
from repro.trace.ops import custom_op
from repro.trace.tracer import GraphTracer
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "traced_inner_product",
    "traced_naive_matmul",
    "traced_fft",
    "traced_bellman_held_karp",
    "traced_polynomial_evaluation",
]


@custom_op("butterfly")
def _butterfly_combine(a: float, b: float) -> float:
    """A single FFT butterfly output treated as one operation.

    Numerically this is ``a + w * b`` for a twiddle factor ``w``; the twiddle
    is data-independent so, as in the paper's butterfly graph, the operation
    is a single vertex with two operands.
    """
    return a + b


@custom_op("dp_update")
def _dp_update(*operands: float) -> float:
    """Bellman-Held-Karp table update: combine the tables of all subsets with
    one fewer city into the table of the current subset (one vertex)."""
    return min(operands) if operands else 0.0


def traced_inner_product(n: int) -> ComputationGraph:
    """Trace the inner product of two length-``n`` vectors."""
    check_positive_int(n, "n")
    tracer = GraphTracer()
    xs = tracer.inputs([float(i + 1) for i in range(n)], prefix="x")
    ys = tracer.inputs([float(i + 2) for i in range(n)], prefix="y")
    acc = xs[0] * ys[0]
    for a, b in zip(xs[1:], ys[1:]):
        acc = acc + a * b
    tracer.mark_output(acc, "dot(x, y)")
    return tracer.graph


def traced_naive_matmul(n: int) -> ComputationGraph:
    """Trace the classical triple-loop ``n x n`` matrix multiplication."""
    check_positive_int(n, "n")
    tracer = GraphTracer()
    a = [[tracer.input(1.0, label=f"A[{i},{k}]") for k in range(n)] for i in range(n)]
    b = [[tracer.input(1.0, label=f"B[{k},{j}]") for j in range(n)] for k in range(n)]
    for i in range(n):
        for j in range(n):
            acc = a[i][0] * b[0][j]
            for k in range(1, n):
                acc = acc + a[i][k] * b[k][j]
            tracer.mark_output(acc, f"C[{i},{j}]")
    return tracer.graph


def traced_fft(levels: int) -> ComputationGraph:
    """Trace an iterative radix-2 FFT of ``2**levels`` points.

    Each butterfly output is recorded as a single custom operation
    (:func:`_butterfly_combine`), so the traced graph is the unwrapped
    butterfly graph ``B_levels`` — identical in size and degree structure to
    :func:`repro.graphs.generators.fft.fft_graph`.
    """
    check_nonnegative_int(levels, "levels")
    size = 1 << levels
    tracer = GraphTracer()
    current = tracer.inputs([float(i) for i in range(size)], prefix="x")
    for level in range(levels):
        stride = 1 << level
        nxt: List = [None] * size
        for row in range(size):
            partner = row ^ stride
            nxt[row] = _butterfly_combine(current[row], current[partner])
        current = nxt
    for row, value in enumerate(current):
        tracer.mark_output(value, f"X[{row}]")
    return tracer.graph


def traced_bellman_held_karp(num_cities: int) -> ComputationGraph:
    """Trace the subset dynamic program of Bellman-Held-Karp.

    One traced value per subset of cities (the paper's coarse formulation,
    §5.1): the table of subset ``S`` is computed from the tables of every
    subset obtained by removing one city from ``S``.  The traced graph is the
    directed boolean hypercube ``Q_{num_cities}``.
    """
    check_positive_int(num_cities, "num_cities")
    tracer = GraphTracer()
    tables: List = [None] * (1 << num_cities)
    tables[0] = tracer.input(0.0, label="Y[{}]")
    for mask in range(1, 1 << num_cities):
        operands = []
        for bit in range(num_cities):
            if mask & (1 << bit):
                operands.append(tables[mask ^ (1 << bit)])
        tables[mask] = _dp_update(*operands)
    tracer.mark_output(tables[(1 << num_cities) - 1], "Y[all cities]")
    return tracer.graph


def traced_polynomial_evaluation(coefficients: Sequence[float], point: float = 2.0) -> ComputationGraph:
    """Trace Horner evaluation of a polynomial (a purely sequential chain).

    Included as a low-I/O control workload: the traced graph is nearly a
    chain, so every lower bound on it should be (close to) trivial.
    """
    coeffs = [float(c) for c in coefficients]
    if not coeffs:
        raise ValueError("coefficients must be non-empty")
    tracer = GraphTracer()
    x = tracer.input(point, label="x")
    traced_coeffs = tracer.inputs(coeffs, prefix="c")
    acc = traced_coeffs[0]
    for c in traced_coeffs[1:]:
        acc = acc * x + c
    tracer.mark_output(acc, "p(x)")
    return tracer.graph
