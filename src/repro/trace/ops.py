"""Custom operations for the tracer.

The paper's solver "supports the inclusion of custom operations": operations
whose internal arithmetic should be treated as a single vertex of the
computation graph (e.g. an FFT butterfly, a fused multiply-add, a table
lookup).  :func:`custom_op` wraps an ordinary numerical function so that

* called on plain numbers it behaves exactly as before, and
* called with at least one :class:`TracedValue` operand it records a single
  vertex whose parents are the distinct traced operands and whose concrete
  value is obtained by running the wrapped function on the operand values.
"""

from __future__ import annotations

import functools
import numbers
from typing import Callable, Optional

from repro.trace.tracer import GraphTracer
from repro.trace.value import TracedValue

__all__ = ["custom_op"]


def custom_op(name: Optional[str] = None) -> Callable:
    """Decorator registering a numerical function as a traceable operation.

    Parameters
    ----------
    name:
        Operation name recorded on the vertex; defaults to the function name.

    Examples
    --------
    >>> from repro.trace import GraphTracer, custom_op
    >>> @custom_op("fma")
    ... def fma(a, b, c):
    ...     return a * b + c
    >>> tracer = GraphTracer()
    >>> x, y, z = tracer.inputs([1.0, 2.0, 3.0])
    >>> out = fma(x, y, z)            # one vertex, three incoming edges
    >>> tracer.graph.in_degree(out.vertex)
    3
    """

    def decorate(func: Callable) -> Callable:
        op_name = name or func.__name__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if kwargs:
                raise TypeError(
                    f"custom op {op_name!r} does not support keyword arguments when traced"
                )
            traced_args = [a for a in args if isinstance(a, TracedValue)]
            if not traced_args:
                return func(*args)
            tracer = traced_args[0].tracer
            _check_same_tracer(tracer, traced_args, op_name)
            concrete = [
                a.value if isinstance(a, TracedValue) else _check_number(a, op_name)
                for a in args
            ]
            result = func(*concrete)
            if isinstance(result, TracedValue):
                raise TypeError(
                    f"custom op {op_name!r} must return a plain number, not a TracedValue"
                )
            return tracer.record(op_name, args, float(result))

        wrapper.op_name = op_name  # type: ignore[attr-defined]
        wrapper.__wrapped_numeric__ = func  # type: ignore[attr-defined]
        return wrapper

    return decorate


def _check_same_tracer(tracer: GraphTracer, traced_args, op_name: str) -> None:
    for arg in traced_args:
        if arg.tracer is not tracer:
            raise ValueError(
                f"custom op {op_name!r} received operands from different tracers"
            )


def _check_number(value, op_name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(
            f"custom op {op_name!r} received a non-numeric operand of type "
            f"{type(value).__name__}"
        )
    return float(value)
