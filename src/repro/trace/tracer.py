"""The graph tracer: builds a computation graph while code executes.

:class:`GraphTracer` owns a :class:`repro.graphs.compgraph.ComputationGraph`
under construction.  Inputs, constants and recorded operations each become a
vertex; edges run from operand vertices to the vertex of the operation
consuming them.  Because a single operation result is a single memory element
in the paper's model, every recorded operation produces exactly one vertex.

Typical use::

    tracer = GraphTracer()
    xs = tracer.inputs([1.0, 2.0, 3.0], prefix="x")
    ys = tracer.inputs([4.0, 5.0, 6.0], prefix="y")
    acc = xs[0] * ys[0]
    for a, b in zip(xs[1:], ys[1:]):
        acc = acc + a * b
    tracer.mark_output(acc, "dot")
    graph = tracer.graph           # a 3-element inner-product graph

The higher-level helpers in :mod:`repro.trace.api` wrap this pattern.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.trace.value import TracedValue

__all__ = ["GraphTracer"]

Number = Union[int, float]


class GraphTracer:
    """Records a computation graph from operations on traced values.

    Edges are buffered as they are recorded and flushed in bulk through
    :meth:`~repro.graphs.compgraph.ComputationGraph.add_edges_array` whenever
    the graph is read, so traced programs build their graph on the vectorized
    path instead of one ``add_edge`` call per operand.  Buffering is safe
    because every recorded operation targets a brand-new vertex (duplicate
    edges cannot arise across records) and operands are de-duplicated within
    each record.
    """

    def __init__(self) -> None:
        self._graph = ComputationGraph()
        self._constants: Dict[float, TracedValue] = {}
        self._outputs: List[int] = []
        self._pending_edges: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # creating values
    # ------------------------------------------------------------------
    def input(self, value: Number = 0.0, label: Optional[str] = None) -> TracedValue:
        """Create an input vertex holding ``value``."""
        self._check_number(value)
        vertex = self._graph.add_vertex(label=label, op="input")
        return TracedValue(self, vertex, float(value))

    def inputs(
        self, values: Union[int, Sequence[Number]], prefix: str = "x"
    ) -> List[TracedValue]:
        """Create several inputs.

        ``values`` may be an integer (that many zero-valued inputs) or a
        sequence of concrete numbers.  Labels are ``{prefix}[i]``.
        """
        if isinstance(values, numbers.Integral) and not isinstance(values, bool):
            values = [0.0] * int(values)
        return [self.input(v, label=f"{prefix}[{i}]") for i, v in enumerate(values)]

    def constant(self, value: Number, label: Optional[str] = None) -> TracedValue:
        """Create (or reuse) a constant vertex for ``value``.

        Constants are memoised by value: using the literal ``2.0`` in many
        places of a traced program creates a single vertex with fan-out equal
        to its number of uses — exactly how a real execution would keep one
        copy of the constant.
        """
        self._check_number(value)
        value = float(value)
        cached = self._constants.get(value)
        if cached is not None:
            return cached
        vertex = self._graph.add_vertex(label=label or f"const({value!r})", op="const")
        traced = TracedValue(self, vertex, value)
        self._constants[value] = traced
        return traced

    # ------------------------------------------------------------------
    # recording operations
    # ------------------------------------------------------------------
    def record(
        self,
        op: str,
        operands: Iterable[Union[TracedValue, Number]],
        value: Number,
        label: Optional[str] = None,
    ) -> TracedValue:
        """Record one operation vertex consuming ``operands``.

        Plain numbers among the operands are converted to constant vertices.
        Duplicate operands (e.g. ``x * x``) contribute a single edge, because
        a value only needs to be resident once regardless of how many operand
        slots it fills.
        """
        self._check_number(value)
        vertex = self._graph.add_vertex(label=label, op=op)
        seen: set[int] = set()
        for operand in operands:
            traced = self._as_traced(operand)
            if traced.vertex not in seen:
                self._pending_edges.append((traced.vertex, vertex))
                seen.add(traced.vertex)
        return TracedValue(self, vertex, float(value))

    def mark_output(self, value: TracedValue, label: Optional[str] = None) -> None:
        """Mark a traced value as an output of the computation.

        Outputs are informational (the graph's sinks are outputs by
        definition); marking attaches a label and records the vertex in
        :attr:`output_vertices`, which examples use for reporting.
        """
        if value.tracer is not self:
            raise ValueError("value belongs to a different tracer")
        if label is not None:
            self._graph.set_label(value.vertex, label)
        self._outputs.append(value.vertex)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ComputationGraph:
        """The computation graph built so far (shared object, not a copy).

        Reading this property flushes the tracer's buffered edges into the
        graph first, so the returned graph is always complete *as of this
        read*.  The same underlying object is returned every time — but a
        reference obtained earlier only reflects operations recorded after
        it once ``graph`` is read again (the flush happens here, not inside
        :meth:`record`).
        """
        self._flush_edges()
        return self._graph

    @property
    def output_vertices(self) -> Tuple[int, ...]:
        """Vertices explicitly marked as outputs."""
        return tuple(self._outputs)

    @property
    def num_operations(self) -> int:
        """Number of vertices recorded so far."""
        return self._graph.num_vertices

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _flush_edges(self) -> None:
        """Materialise buffered edges through the bulk array path."""
        if self._pending_edges:
            self._graph.add_edges_array(
                np.asarray(self._pending_edges, dtype=np.int64)
            )
            self._pending_edges.clear()

    def _as_traced(self, operand: Union[TracedValue, Number]) -> TracedValue:
        if isinstance(operand, TracedValue):
            if operand.tracer is not self:
                raise ValueError("cannot mix values from different tracers")
            return operand
        self._check_number(operand)
        return self.constant(float(operand))

    @staticmethod
    def _check_number(value) -> None:
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            raise TypeError(f"expected a real number, got {type(value).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        num_edges = self._graph.num_edges + len(self._pending_edges)
        return f"GraphTracer(n={self._graph.num_vertices}, m={num_edges})"
