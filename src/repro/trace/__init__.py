"""Computation tracer ("solver" of §6.1).

The paper's evaluation uses "a solver that traces operations during a Python
computation and thus extracts a computation graph.  The solver inter-operates
with standard arithmetic operations and supports the inclusion of custom
operations."  This subpackage is that solver:

* :class:`repro.trace.value.TracedValue` — a scalar wrapper whose arithmetic
  operators record graph vertices,
* :class:`repro.trace.tracer.GraphTracer` — the builder collecting vertices
  and edges,
* :mod:`repro.trace.ops` — registration of custom (multi-operand) operations,
* :mod:`repro.trace.api` — high-level helpers (`trace_computation`),
* :mod:`repro.trace.programs` — traced reference implementations of the
  paper's evaluation workloads (FFT, matrix multiplication, inner products,
  Bellman-Held-Karp), used by examples and cross-checked against the direct
  generators in the tests.
"""

from repro.trace.api import trace_computation, trace_scalar_function
from repro.trace.ops import custom_op
from repro.trace.tracer import GraphTracer
from repro.trace.value import TracedValue

__all__ = [
    "GraphTracer",
    "TracedValue",
    "custom_op",
    "trace_computation",
    "trace_scalar_function",
]
