"""Closed-form analytical I/O bounds (Section 5 of the paper).

These are the pen-and-paper instantiations of Theorem 5 for graphs with known
Laplacian spectra:

* :func:`hypercube_io_bound` — Bellman-Held-Karp / boolean hypercube (§5.1),
* :func:`fft_io_bound` — FFT / unwrapped butterfly (§5.2), with
  :func:`fft_io_bound_asymptotic` giving the small-angle approximation
  ``(l+1) 2^l (pi^2 / (8 log2^2 M) - 4/(l+1))``,
* :func:`erdos_renyi_io_bound` — the probabilistic bound of §5.3 for
  ``G(n, p)`` in the near-connectivity-threshold and dense regimes.

Each function mirrors the paper's derivation, including its choice of the
free parameter ``alpha`` (how many eigenvalue "levels" to include), and can
optionally optimise over ``alpha`` — the paper notes any ``alpha`` yields a
valid bound.  The numerical spectral bound from
:func:`repro.core.bounds.spectral_bound_unnormalized` is always at least as
tight on the same graph; the benchmark ``bench_closed_form_*`` files report
the comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.spectra import butterfly_spectrum_array
from repro.utils.mathutils import binomial
from repro.utils.validation import check_memory_size, check_positive_int, check_probability

__all__ = [
    "ClosedFormBound",
    "hypercube_io_bound",
    "hypercube_io_bound_alpha1",
    "fft_io_bound",
    "fft_io_bound_asymptotic",
    "published_fft_bound",
    "published_naive_matmul_bound",
    "published_strassen_bound",
    "erdos_renyi_io_bound",
]


@dataclass(frozen=True)
class ClosedFormBound:
    """A closed-form bound value together with the parameter that produced it.

    Attributes
    ----------
    value:
        The I/O lower bound, clamped at zero.
    raw_value:
        The un-clamped value of the closed-form expression.
    alpha:
        The eigenvalue-level parameter used (meaning depends on the family).
    k:
        The number of partition segments the choice of ``alpha`` corresponds
        to in Theorem 5.
    """

    value: float
    raw_value: float
    alpha: int
    k: int


# ----------------------------------------------------------------------
# hypercube / Bellman-Held-Karp (§5.1)
# ----------------------------------------------------------------------
def _hypercube_bound_for_alpha(num_cities: int, M: int, alpha: int) -> ClosedFormBound:
    l = num_cities
    k = sum(binomial(l, i) for i in range(alpha + 1))
    weighted_sum = sum(i * binomial(l, i) for i in range(alpha + 1))
    # (1/l) * (2^{l+1}/k) * sum_i i C(l,i)  -  2 M k   (§5.1, before choosing alpha)
    raw = (2.0 ** (l + 1) / (l * k)) * weighted_sum - 2.0 * M * k
    return ClosedFormBound(value=max(0.0, raw), raw_value=raw, alpha=alpha, k=k)


def hypercube_io_bound(
    num_cities: int, M: int, alpha: Optional[int] = None
) -> ClosedFormBound:
    """Closed-form I/O bound for the Bellman-Held-Karp hypercube (§5.1).

    Parameters
    ----------
    num_cities:
        Number of cities ``l`` (the graph is the ``l``-dimensional hypercube
        on ``2^l`` vertices).
    M:
        Fast-memory size.
    alpha:
        Number of eigenvalue levels to include (``k = sum_{i<=alpha} C(l,i)``).
        ``None`` optimises over ``alpha = 1 .. l - 1``.

    Notes
    -----
    The paper highlights the ``alpha = 1`` special case
    ``2^{l+1}/(l+1) - 2M(l+1)`` (see :func:`hypercube_io_bound_alpha1`) and
    notes the bound is non-trivial whenever ``M <= 2^l / (l+1)^2``.
    """
    check_positive_int(num_cities, "num_cities")
    check_memory_size(M)
    if alpha is not None:
        if not 0 <= alpha < num_cities:
            raise ValueError(f"alpha must be in [0, {num_cities - 1}], got {alpha}")
        return _hypercube_bound_for_alpha(num_cities, M, alpha)
    best: Optional[ClosedFormBound] = None
    for a in range(1, max(num_cities, 2)):
        candidate = _hypercube_bound_for_alpha(num_cities, M, a)
        if best is None or candidate.raw_value > best.raw_value:
            best = candidate
    assert best is not None
    return best


def hypercube_io_bound_alpha1(num_cities: int, M: int) -> float:
    """The simplified ``alpha = 1`` hypercube bound: ``2^{l+1}/(l+1) - 2M(l+1)``."""
    check_positive_int(num_cities, "num_cities")
    check_memory_size(M)
    l = num_cities
    return 2.0 ** (l + 1) / (l + 1) - 2.0 * M * (l + 1)


# ----------------------------------------------------------------------
# FFT / butterfly (§5.2)
# ----------------------------------------------------------------------
def _fft_bound_for_alpha(levels: int, M: int, alpha: int) -> ClosedFormBound:
    l = levels
    k = 2 ** (alpha + 1)
    # Of the k smallest eigenvalues, 2^alpha equal 4 - 4 cos(pi / (2(l - alpha) + 1));
    # the derivation conservatively treats the others as zero and divides by the
    # maximal out-degree 2, giving (l+1) 2^l (1 - cos(.)) - 2^{alpha+2} M.
    angle = math.pi / (2.0 * (l - alpha) + 1.0)
    raw = (l + 1) * 2.0 ** l * (1.0 - math.cos(angle)) - 2.0 ** (alpha + 2) * M
    return ClosedFormBound(value=max(0.0, raw), raw_value=raw, alpha=alpha, k=k)


def fft_io_bound(levels: int, M: int, alpha: Optional[int] = None) -> ClosedFormBound:
    """Closed-form I/O bound for the ``2^levels``-point FFT butterfly (§5.2).

    Parameters
    ----------
    levels:
        Number of FFT levels ``l``.
    M:
        Fast-memory size.
    alpha:
        Sets ``k = 2^{alpha+1}``.  ``None`` follows the paper's choice
        ``alpha = l - ceil(log2 M)`` when that is a valid level (and otherwise
        optimises over all ``alpha``).
    """
    check_positive_int(levels, "levels")
    check_memory_size(M)
    if alpha is not None:
        if not 0 <= alpha < levels:
            raise ValueError(f"alpha must be in [0, {levels - 1}], got {alpha}")
        return _fft_bound_for_alpha(levels, M, alpha)
    paper_alpha = levels - max(1, math.ceil(math.log2(M)))
    if 0 <= paper_alpha < levels:
        paper_choice = _fft_bound_for_alpha(levels, M, paper_alpha)
    else:
        paper_choice = None
    best = paper_choice
    for a in range(0, levels):
        candidate = _fft_bound_for_alpha(levels, M, a)
        if best is None or candidate.raw_value > best.raw_value:
            best = candidate
    assert best is not None
    return best


def fft_io_bound_asymptotic(levels: int, M: int) -> float:
    """Small-angle approximation of the FFT bound:
    ``(l+1) 2^l (pi^2 / (8 log2^2 M) - 4 / (l+1))`` (§5.2).

    Meaningful in the regime ``2 <= M`` and ``log2 M << l``; for ``M = 2`` the
    formula is evaluated literally (``log2 M = 1``).
    """
    check_positive_int(levels, "levels")
    check_memory_size(M)
    if M < 2:
        raise ValueError("the asymptotic FFT bound requires M >= 2")
    l = levels
    log2m = math.log2(M)
    return (l + 1) * 2.0 ** l * (math.pi ** 2 / (8.0 * log2m ** 2) - 4.0 / (l + 1))


def fft_exact_theorem5_bound(levels: int, M: int, k: Optional[int] = None) -> float:
    """Theorem 5 evaluated with the *exact* closed-form butterfly spectrum.

    Unlike :func:`fft_io_bound` this does not drop any of the ``k`` smallest
    eigenvalues; it is the sharpest value obtainable from the closed form and
    should coincide (up to eigensolver tolerance) with
    ``spectral_bound_unnormalized`` on the generated butterfly graph.
    """
    check_positive_int(levels, "levels")
    check_memory_size(M)
    spectrum = butterfly_spectrum_array(levels)
    n = spectrum.shape[0]
    h = min(n, 4096)
    best = 0.0
    prefix = 0.0
    for idx in range(h):
        prefix += spectrum[idx]
        k_candidate = idx + 1
        if k is not None and k_candidate != k:
            continue
        value = (n // k_candidate) * prefix / 2.0 - 2.0 * k_candidate * M
        best = max(best, value)
    return best


# ----------------------------------------------------------------------
# published bounds used for shape comparison (§6.2)
# ----------------------------------------------------------------------
def published_fft_bound(levels: int, M: int) -> float:
    """Hong & Kung's asymptotically tight FFT bound ``Theta(l 2^l / log M)``
    evaluated without its hidden constant (used only for growth-shape plots)."""
    check_positive_int(levels, "levels")
    check_memory_size(M)
    if M < 2:
        raise ValueError("published FFT bound requires M >= 2")
    return levels * 2.0 ** levels / math.log2(M)


def published_naive_matmul_bound(n: int, M: int) -> float:
    """Irony-Toledo-Tiskin naive matmul bound ``Theta(n^3 / sqrt(M))``
    (constant dropped; growth-shape comparison only)."""
    check_positive_int(n, "n")
    check_memory_size(M)
    return n ** 3 / math.sqrt(M)


def published_strassen_bound(n: int, M: int) -> float:
    """Ballard et al. Strassen bound ``Theta((n/sqrt(M))^{log2 7} M)``
    (constant dropped; growth-shape comparison only)."""
    check_positive_int(n, "n")
    check_memory_size(M)
    return (n / math.sqrt(M)) ** math.log2(7.0) * M


# ----------------------------------------------------------------------
# Erdős–Rényi (§5.3)
# ----------------------------------------------------------------------
def erdos_renyi_io_bound(
    n: int, p: float, M: int, regime: str = "auto"
) -> float:
    """Probabilistic I/O bound estimate for ``G(n, p)`` (§5.3).

    Two regimes are analysed in the paper:

    * ``"sparse"`` — near the connectivity threshold,
      ``p = p0 log(n)/(n-1)`` with ``p0 > 6``:
      ``J* ≳ n / (1 + sqrt(6/p0)) * (1 - sqrt(2/p0)) - 4M``.
    * ``"dense"`` — ``np / log n -> infinity``: ``J* ≳ n/2 - 4M``.

    ``regime="auto"`` picks sparse when ``p <= 10 log(n)/n`` and dense
    otherwise.  The returned value is a high-probability *estimate* of the
    k = 2 instantiation of Theorem 5 (the paper's leading-order terms with the
    vanishing ``O(.)`` corrections dropped), clamped at zero.
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    check_memory_size(M)
    if regime not in ("auto", "sparse", "dense"):
        raise ValueError(f"regime must be 'auto', 'sparse' or 'dense', got {regime!r}")
    if n < 3 or p == 0.0:
        return 0.0
    logn = math.log(n)
    if regime == "auto":
        regime = "sparse" if p <= 10.0 * logn / n else "dense"
    if regime == "sparse":
        p0 = p * (n - 1) / logn
        if p0 <= 6.0:
            # Below the paper's p0 > 6 requirement the concentration argument
            # does not apply; report a trivial bound.
            return 0.0
        raw = n / (1.0 + math.sqrt(6.0 / p0)) * (1.0 - math.sqrt(2.0 / p0)) - 4.0 * M
        return max(0.0, raw)
    raw = n / 2.0 - 4.0 * M
    return max(0.0, raw)
