"""Balanced k-partitions of an evaluation order (Section 4.1 / 4.2).

The partition bound of Lemma 1 splits any evaluation order into contiguous
segments; the spectral relaxation then fixes the segments to be *balanced*:
the first ``n mod k`` segments get ``floor(n/k) + 1`` vertices and the rest
``floor(n/k)``.  This module provides

* the segment-size bookkeeping (:func:`balanced_partition_sizes`),
* the partition indicator matrix ``Ŵ(k)`` and projector ``W(k) = Ŵ Ŵᵀ``
  used in the trace formulation of Theorem 3,
* exact edge-boundary / read-set / write-set counting for concrete vertex
  subsets, which the tests use to validate the relaxation chain
  (``|R_S| + |W_S|  >=  sum_{(u,v) in ∂S} 1/d_out(u)``).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int, check_nonnegative_int

__all__ = [
    "balanced_partition_sizes",
    "balanced_partition_blocks",
    "partition_indicator_matrix",
    "partition_projector",
    "partition_blocks_for_order",
    "weighted_edge_boundary",
    "edge_boundary",
    "read_write_sets",
    "segment_io_lower_bound",
]


def balanced_partition_sizes(n: int, k: int) -> List[int]:
    """Sizes of the balanced ``k``-partition of ``n`` items.

    The first ``n mod k`` segments have ``floor(n/k) + 1`` items and the
    remaining segments ``floor(n/k)`` (the convention of Section 4.2).

    ``k`` may exceed ``n``; the surplus segments are empty, which keeps the
    bound valid (an empty segment contributes no edge boundary and still pays
    the ``-2M`` term, so such choices of ``k`` are simply never optimal).
    """
    check_nonnegative_int(n, "n")
    check_positive_int(k, "k")
    base = n // k
    remainder = n % k
    return [base + 1 if i < remainder else base for i in range(k)]


def balanced_partition_blocks(n: int, k: int) -> List[range]:
    """Contiguous index ranges (time-step blocks) of the balanced partition."""
    sizes = balanced_partition_sizes(n, k)
    blocks: List[range] = []
    start = 0
    for size in sizes:
        blocks.append(range(start, start + size))
        start += size
    return blocks


def partition_indicator_matrix(n: int, k: int) -> np.ndarray:
    """The matrix ``Ŵ(k) ∈ R^{n×k}`` with ``Ŵ[t, j] = 1`` iff time-step ``t``
    belongs to segment ``j`` of the balanced partition (identity order)."""
    blocks = balanced_partition_blocks(n, k)
    w_hat = np.zeros((n, k), dtype=np.float64)
    for j, block in enumerate(blocks):
        for t in block:
            w_hat[t, j] = 1.0
    return w_hat


def partition_projector(n: int, k: int) -> np.ndarray:
    """The block-diagonal projector ``W(k) = Ŵ(k) Ŵ(k)ᵀ`` of Theorem 3.

    ``W(k)`` has ``k`` eigenvalues equal to the segment sizes (each at least
    ``floor(n/k)`` for non-empty segments) and ``n - k`` zero eigenvalues,
    which is exactly the property the spectral relaxation of Theorem 4 uses.
    """
    w_hat = partition_indicator_matrix(n, k)
    return w_hat @ w_hat.T


def partition_blocks_for_order(order: Sequence[int], k: int) -> List[List[int]]:
    """Vertex sets of the balanced ``k``-partition applied to ``order``.

    ``order[t]`` is the vertex evaluated at time ``t``; segment ``j`` contains
    the vertices evaluated during its block of time-steps.  This realises the
    partition ``P(X, k)`` of Section 4.2 for the concrete order ``X``.
    """
    order = list(order)
    blocks = balanced_partition_blocks(len(order), k)
    return [[order[t] for t in block] for block in blocks]


def edge_boundary(graph: ComputationGraph, subset: Sequence[int]) -> List[Tuple[int, int]]:
    """Directed edges with exactly one endpoint in ``subset`` (``∂S``)."""
    s: Set[int] = set(subset)
    boundary: List[Tuple[int, int]] = []
    for u, v in graph.edges():
        if (u in s) != (v in s):
            boundary.append((u, v))
    return boundary


def weighted_edge_boundary(
    graph: ComputationGraph, subset: Sequence[int], normalized: bool = True
) -> float:
    """Edge-boundary weight ``sum_{(u,v) in ∂S} 1/d_out(u)`` (Theorem 2).

    With ``normalized=False`` this is the plain boundary size ``|∂S|`` used by
    the Theorem 5 variant.
    """
    s: Set[int] = set(subset)
    total = 0.0
    for u, v in graph.edges():
        if (u in s) != (v in s):
            total += 1.0 / graph.out_degree(u) if normalized else 1.0
    return total


def read_write_sets(
    graph: ComputationGraph, subset: Sequence[int]
) -> Tuple[Set[int], Set[int]]:
    """The sets ``R_S`` and ``W_S`` of Lemma 1 for the vertex subset ``S``.

    ``R_S`` — vertices outside ``S`` with an edge into ``S`` (must be read or
    already resident to evaluate ``S``); ``W_S`` — vertices inside ``S`` with
    an edge leaving ``S`` (freshly computed values needed later).
    """
    s: Set[int] = set(subset)
    reads: Set[int] = set()
    writes: Set[int] = set()
    for u, v in graph.edges():
        if u not in s and v in s:
            reads.add(u)
        elif u in s and v not in s:
            writes.add(u)
    return reads, writes


def segment_io_lower_bound(graph: ComputationGraph, subset: Sequence[int], M: int) -> int:
    """Per-segment I/O lower bound ``|R_S| + |W_S| - 2M`` of Lemma 1."""
    check_positive_int(M, "M")
    reads, writes = read_write_sets(graph, subset)
    return len(reads) + len(writes) - 2 * M
