"""The Theorem 4/5/6 bound expression, separated from orchestration.

This module holds the pure arithmetic shared by
:mod:`repro.core.bounds` (the stable public API) and
:mod:`repro.core.engine` (the cached execution engine): resolving which ``k``
values to sweep, and evaluating

    floor(n / (k p)) * sum_{i=1..k} lambda_i  -  2 k M

over those candidates.  Keeping it dependency-free avoids an import cycle
between the engine and the public wrappers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_memory_size, check_positive_int

__all__ = [
    "DEFAULT_NUM_EIGENVALUES",
    "resolve_k_candidates",
    "evaluate_bound_formula",
]

#: The paper computes "up to the first 100 values of the graph Laplacian" and
#: optimises k over {2 .. h} (§6.1); empirically the best k is far below 100.
DEFAULT_NUM_EIGENVALUES = 100


def resolve_k_candidates(
    n: int, num_eigenvalues: int, k: Optional[Union[int, Sequence[int]]]
) -> Tuple[int, Iterable[int]]:
    """Resolve the ``k`` sweep and how many eigenvalues are needed.

    Returns ``(h, candidates)`` where ``h`` is the number of smallest
    eigenvalues to compute and ``candidates`` the k values to evaluate.  The
    default sweep follows §6.1 of the paper and covers ``k = 2 .. h``:
    ``k = 1`` is excluded because ``lambda_1 = 0`` for every graph Laplacian,
    so the ``k = 1`` expression is ``-2M`` and can never be the best bound.
    An explicit ``k`` (int or sequence) is honoured as given, including
    ``k = 1``.  (:func:`evaluate_bound_formula` falls back to the ``k``
    values the supplied spectrum supports when fewer than two eigenvalues
    are available.)
    """
    if n == 0:
        return 0, []
    if k is None:
        h = min(max(2, num_eigenvalues), n)
        return h, range(2, h + 1)
    if isinstance(k, (int, np.integer)):
        check_positive_int(int(k), "k")
        if k > n:
            raise ValueError(f"k={k} exceeds the number of vertices n={n}")
        return int(k), [int(k)]
    ks = [int(x) for x in k]
    for x in ks:
        check_positive_int(x, "k")
        if x > n:
            raise ValueError(f"k={x} exceeds the number of vertices n={n}")
    return max(ks), sorted(set(ks))


def evaluate_bound_formula(
    eigenvalues: Sequence[float],
    num_vertices: int,
    M: int,
    k: Optional[Union[int, Sequence[int]]] = None,
    num_processors: int = 1,
) -> Tuple[float, int, Dict[int, float]]:
    """Evaluate the Theorem 4/6 expression given precomputed eigenvalues.

    Returns ``(best_value, best_k, per_k_values)`` where ``best_value`` is the
    raw (un-clamped) maximum over the swept ``k``; see
    :func:`repro.core.bounds.spectral_bound_from_eigenvalues` for the
    documented public entry point.
    """
    check_memory_size(M)
    check_positive_int(num_processors, "num_processors")
    if isinstance(eigenvalues, np.ndarray):
        lam = eigenvalues.astype(np.float64, copy=False).ravel()
    else:
        lam = np.asarray(list(eigenvalues), dtype=np.float64)
    n = num_vertices
    if n == 0 or lam.shape[0] == 0:
        return 0.0, 1, {}
    _, candidates = resolve_k_candidates(n, lam.shape[0], k)
    candidates = [kk for kk in candidates if kk <= lam.shape[0]]
    if not candidates and k is None:
        # Degenerate default sweep: fewer than two eigenvalues are available
        # (a length-1 spectrum, or n = 1), so the preferred 2..h range is
        # empty.  Fall back to the k values the spectrum can support rather
        # than silently reporting an uninformative 0.
        candidates = list(range(1, min(lam.shape[0], n) + 1))
    prefix = np.concatenate([[0.0], np.cumsum(lam)])
    per_k: Dict[int, float] = {}
    best_value = -np.inf
    best_k = 1
    for kk in candidates:
        value = (n // (kk * num_processors)) * prefix[kk] - 2.0 * kk * M
        per_k[kk] = float(value)
        if value > best_value:
            best_value = float(value)
            best_k = kk
    if not per_k:
        return 0.0, 1, {}
    return best_value, best_k, per_k
