"""Core contribution of the paper: spectral I/O lower bounds.

* :mod:`bounds` — Theorems 4 (spectral method), 5 (original-Laplacian
  variant) and 6 (parallel variant) as one-shot public functions.
* :mod:`engine` — :class:`BoundEngine`, the cached execution engine behind
  them: one object per graph, one eigensolve per (graph, normalisation),
  batch ``sweep`` over memory sizes/processor counts.
* :mod:`formula` — the pure Theorem 4/5/6 arithmetic shared by both.
* :mod:`partitions` — the balanced ``k``-partition machinery (``Ŵ(k)``,
  ``W(k)``) and edge-boundary counting of Section 4.1/4.2.
* :mod:`qp` — the quadratic-program view of Theorem 3, used to validate the
  relaxation chain numerically.
* :mod:`spectra` — closed-form Laplacian spectra (hypercube, unwrapped
  butterfly / Theorem 7, weighted paths / Lemma 11).
* :mod:`closed_form` — the analytical bounds of Section 5 (Bellman-Held-Karp,
  FFT, Erdős–Rényi).
* :mod:`result` — result dataclasses shared by bounds and baselines.
"""

from repro.core.bounds import (
    spectral_bound,
    spectral_bound_unnormalized,
    parallel_spectral_bound,
    spectral_bound_from_eigenvalues,
)
from repro.core.engine import BoundEngine, SweepPoint, SWEEP_METHODS
from repro.core.closed_form import (
    hypercube_io_bound,
    fft_io_bound,
    fft_io_bound_asymptotic,
    erdos_renyi_io_bound,
)
from repro.core.partitions import (
    balanced_partition_sizes,
    partition_indicator_matrix,
    partition_projector,
    partition_blocks_for_order,
    weighted_edge_boundary,
    read_write_sets,
)
from repro.core.qp import (
    schedule_laplacian,
    partition_objective_for_order,
    best_partition_objective_for_order,
)
from repro.core.result import (
    SpectralBoundResult,
    ParallelBoundResult,
    BaselineBoundResult,
)
from repro.core.spectra import (
    hypercube_laplacian_spectrum,
    butterfly_laplacian_spectrum,
    path_spectrum,
    path_spectrum_one_weighted_end,
    path_spectrum_two_weighted_ends,
)

__all__ = [
    "spectral_bound",
    "spectral_bound_unnormalized",
    "parallel_spectral_bound",
    "spectral_bound_from_eigenvalues",
    "BoundEngine",
    "SweepPoint",
    "SWEEP_METHODS",
    "hypercube_io_bound",
    "fft_io_bound",
    "fft_io_bound_asymptotic",
    "erdos_renyi_io_bound",
    "balanced_partition_sizes",
    "partition_indicator_matrix",
    "partition_projector",
    "partition_blocks_for_order",
    "weighted_edge_boundary",
    "read_write_sets",
    "schedule_laplacian",
    "partition_objective_for_order",
    "best_partition_objective_for_order",
    "SpectralBoundResult",
    "ParallelBoundResult",
    "BaselineBoundResult",
    "hypercube_laplacian_spectrum",
    "butterfly_laplacian_spectrum",
    "path_spectrum",
    "path_spectrum_one_weighted_end",
    "path_spectrum_two_weighted_ends",
]
