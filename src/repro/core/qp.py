"""Quadratic-program view of the partition bound (Theorem 3).

For a concrete evaluation order ``X`` (a permutation matrix) and the balanced
``k``-partition, the objective of Theorem 3 is

    tr( Ŵ(k)ᵀ · L_sched · Ŵ(k) ) - 2kM

where ``L_sched`` is the Laplacian re-indexed by schedule position.  This
module evaluates that objective exactly, both through the trace formula and
through direct edge-boundary counting, and the test-suite asserts the two
agree — that is the numerical verification of Equation 3 and of the identity
underpinning Theorem 3.

It also provides :func:`best_partition_objective_for_order`, the strongest
partition bound obtainable for one concrete order, which dominates the
spectral bound and therefore yields a direct check of the relaxation
(``spectral_bound <= partition bound for every order``).

Note on conventions: the paper writes the objective as
``tr(Xᵀ L̃ X W(k))``; with our permutation-matrix convention
``X[t, v] = 1`` (time ``t``, vertex ``v``) the schedule-indexed Laplacian is
``X L̃ Xᵀ``, so the same trace reads ``tr(Ŵᵀ X L̃ Xᵀ Ŵ)``.  The two
conventions are transposes of each other and produce identical values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.partitions import (
    partition_blocks_for_order,
    partition_indicator_matrix,
    weighted_edge_boundary,
)
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.laplacian import laplacian
from repro.graphs.orders import is_topological_order, permutation_matrix
from repro.utils.validation import check_positive_int

__all__ = [
    "schedule_laplacian",
    "partition_objective_for_order",
    "partition_objective_trace_form",
    "best_partition_objective_for_order",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def schedule_laplacian(lap: MatrixLike, order: Sequence[int]) -> np.ndarray:
    """Laplacian re-indexed by schedule position.

    ``result[t1, t2] = lap[order[t1], order[t2]]`` — i.e. ``X L Xᵀ`` with the
    permutation-matrix convention of :func:`repro.graphs.orders.permutation_matrix`.
    """
    dense = np.asarray(lap.todense()) if sp.issparse(lap) else np.asarray(lap)
    order = np.asarray(list(order), dtype=np.int64)
    return dense[np.ix_(order, order)]


def partition_objective_for_order(
    graph: ComputationGraph,
    order: Sequence[int],
    k: int,
    M: int,
    normalized: bool = True,
) -> float:
    """Theorem-3 objective for a concrete order via edge-boundary counting.

    Computes ``sum_{S in P(X,k)} sum_{(u,v) in ∂S} 1/d_out(u)  -  2 k M``
    (or the unnormalised variant with ``1`` in place of ``1/d_out(u)``).
    Because it is an instance of Lemma 1, this value is a legitimate I/O
    lower bound *for that particular order*.
    """
    check_positive_int(k, "k")
    check_positive_int(M, "M")
    if not is_topological_order(graph, order):
        raise ValueError("order is not a topological order of the graph")
    blocks = partition_blocks_for_order(order, k)
    boundary_total = sum(
        weighted_edge_boundary(graph, block, normalized=normalized) for block in blocks
    )
    return boundary_total - 2.0 * k * M


def partition_objective_trace_form(
    graph: ComputationGraph,
    order: Sequence[int],
    k: int,
    M: int,
    normalized: bool = True,
) -> float:
    """Theorem-3 objective evaluated through the trace formula.

    Builds the permutation matrix ``X``, the partition indicator ``Ŵ(k)`` and
    the Laplacian ``L`` (or ``L̃``), then evaluates
    ``tr(Ŵᵀ X L Xᵀ Ŵ) - 2kM``.  This is ``O(n^2 k)`` dense work and exists
    for validation; production code uses
    :func:`partition_objective_for_order`, which is linear in the number of
    edges.

    Note: each boundary edge ``(u, v)`` with endpoints in different segments
    contributes ``1/d_out(u)`` to *two* diagonal blocks (once for the segment
    containing ``u`` and once for the one containing ``v``)... more precisely
    the quadratic form of an indicator vector counts each crossing edge once,
    and summing over the ``k`` indicator vectors counts each crossing edge
    exactly twice divided between... — concretely the identity
    ``tr(Ŵᵀ L_sched Ŵ) = sum_S x_Sᵀ L x_S`` holds with ``x_S`` the indicator
    of segment ``S``, and ``x_Sᵀ L x_S`` equals the weighted boundary of
    ``S`` (Equation 3), so the two evaluation routes agree exactly.
    """
    check_positive_int(k, "k")
    check_positive_int(M, "M")
    if not is_topological_order(graph, order):
        raise ValueError("order is not a topological order of the graph")
    n = graph.num_vertices
    lap = laplacian(graph, normalized=normalized, sparse=False)
    x = permutation_matrix(order)
    lap_sched = x @ lap @ x.T
    w_hat = partition_indicator_matrix(n, k)
    return float(np.trace(w_hat.T @ lap_sched @ w_hat)) - 2.0 * k * M


def best_partition_objective_for_order(
    graph: ComputationGraph,
    order: Sequence[int],
    M: int,
    k_values: Optional[Sequence[int]] = None,
    normalized: bool = True,
) -> Tuple[float, int]:
    """Maximise the Theorem-3 objective over ``k`` for a concrete order.

    Returns ``(best value, best k)``.  By Lemma 1 this is an I/O lower bound
    for the given order; minimised over all orders it upper-bounds every
    order-free relaxation, in particular the spectral bound of Theorem 4 —
    the property the integration tests check.
    """
    check_positive_int(M, "M")
    n = graph.num_vertices
    if n == 0:
        return 0.0, 1
    if k_values is None:
        k_values = range(1, n + 1)
    best_value = -np.inf
    best_k = 1
    for k in k_values:
        value = partition_objective_for_order(graph, order, k, M, normalized=normalized)
        if value > best_value:
            best_value = value
            best_k = k
    return float(best_value), int(best_k)
