"""Closed-form Laplacian spectra used by the analytical bounds (Section 5).

Three families:

* **Hypercube** ``Q_l`` — Laplacian eigenvalues ``2i`` with multiplicity
  ``C(l, i)`` for ``i = 0 .. l`` (classical; used for the Bellman-Held-Karp
  bound of §5.1).
* **Weighted paths** ``P_i``, ``P'_i``, ``P''_i`` — paths with edge weights 2
  and, respectively, zero, one or two end vertices carrying an extra vertex
  weight 2 (Lemma 11 / Appendix A).
* **Unwrapped butterfly** ``B_l`` — Theorem 7: the multiset union of the path
  spectra according to the counting of Lemma 10.  To our knowledge the paper
  is the first closed form including multiplicities, and the test-suite
  verifies it against numerically computed spectra of the generated butterfly
  graphs.

Note: the appendix statement of Theorem 7 writes the first eigenvalue family
as ``4 - 4 cos(pi j / k)``; the main text (§5.2) and Lemma 11 (the family
comes from the single path ``P_{k+1}``) give ``4 - 4 cos(pi j / (k + 1))``,
which is the version that matches the actual butterfly spectra (e.g. ``B_1``
is a 4-cycle with spectrum ``{0, 2, 2, 4}``).  We implement the main-text
version.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.mathutils import binomial
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "hypercube_laplacian_spectrum",
    "hypercube_spectrum_array",
    "path_spectrum",
    "path_spectrum_one_weighted_end",
    "path_spectrum_two_weighted_ends",
    "weighted_path_laplacian",
    "butterfly_laplacian_spectrum",
    "butterfly_spectrum_array",
    "butterfly_path_decomposition",
]


# ----------------------------------------------------------------------
# hypercube
# ----------------------------------------------------------------------
def hypercube_laplacian_spectrum(dimension: int) -> List[Tuple[float, int]]:
    """Eigenvalue/multiplicity pairs of the Laplacian of the hypercube ``Q_d``.

    The ``d``-dimensional (undirected, unweighted) hypercube has Laplacian
    eigenvalues ``2i`` with multiplicity ``C(d, i)``, ``i = 0 .. d``.
    """
    check_nonnegative_int(dimension, "dimension")
    return [(2.0 * i, binomial(dimension, i)) for i in range(dimension + 1)]


def hypercube_spectrum_array(dimension: int) -> np.ndarray:
    """Full sorted eigenvalue array (length ``2^d``) of the hypercube ``Q_d``."""
    values: List[float] = []
    for lam, mult in hypercube_laplacian_spectrum(dimension):
        values.extend([lam] * mult)
    return np.sort(np.asarray(values, dtype=np.float64))


# ----------------------------------------------------------------------
# weighted paths (Lemma 11)
# ----------------------------------------------------------------------
def path_spectrum(num_vertices: int) -> np.ndarray:
    """Spectrum of ``P_i``: the path on ``i`` vertices with edge weights 2.

    ``lambda_j = 4 - 4 cos(pi j / i)`` for ``j = 0 .. i - 1`` (ascending).
    """
    check_positive_int(num_vertices, "num_vertices")
    j = np.arange(num_vertices, dtype=np.float64)
    return np.sort(4.0 - 4.0 * np.cos(np.pi * j / num_vertices))


def path_spectrum_one_weighted_end(num_vertices: int) -> np.ndarray:
    """Spectrum of ``P'_i``: weighted path with one end vertex of weight 2.

    ``lambda_j = 4 - 4 cos(pi (2j + 1) / (2i + 1))`` for ``j = 0 .. i - 1``.
    """
    check_positive_int(num_vertices, "num_vertices")
    j = np.arange(num_vertices, dtype=np.float64)
    return np.sort(4.0 - 4.0 * np.cos(np.pi * (2.0 * j + 1.0) / (2.0 * num_vertices + 1.0)))


def path_spectrum_two_weighted_ends(num_vertices: int) -> np.ndarray:
    """Spectrum of ``P''_i``: weighted path with both end vertices of weight 2.

    ``lambda_j = 4 - 4 cos(pi j / (i + 1))`` for ``j = 1 .. i``.
    """
    check_positive_int(num_vertices, "num_vertices")
    j = np.arange(1, num_vertices + 1, dtype=np.float64)
    return np.sort(4.0 - 4.0 * np.cos(np.pi * j / (num_vertices + 1.0)))


def weighted_path_laplacian(num_vertices: int, weighted_ends: int = 0) -> np.ndarray:
    """Explicit Laplacian of the weighted paths of Lemma 11 (for tests).

    Parameters
    ----------
    num_vertices:
        Path length ``i``.
    weighted_ends:
        0 for ``P_i``, 1 for ``P'_i`` (extra weight 2 on the last vertex),
        2 for ``P''_i`` (extra weight 2 on both end vertices).
    """
    check_positive_int(num_vertices, "num_vertices")
    if weighted_ends not in (0, 1, 2):
        raise ValueError(f"weighted_ends must be 0, 1 or 2, got {weighted_ends}")
    lap = np.zeros((num_vertices, num_vertices), dtype=np.float64)
    for v in range(num_vertices - 1):
        lap[v, v] += 2.0
        lap[v + 1, v + 1] += 2.0
        lap[v, v + 1] -= 2.0
        lap[v + 1, v] -= 2.0
    if weighted_ends >= 1:
        lap[num_vertices - 1, num_vertices - 1] += 2.0
    if weighted_ends == 2:
        lap[0, 0] += 2.0
    return lap


# ----------------------------------------------------------------------
# unwrapped butterfly (Theorem 7)
# ----------------------------------------------------------------------
def butterfly_path_decomposition(levels: int) -> List[Tuple[str, int, int]]:
    """Path-graph decomposition of ``B_levels`` per Lemma 10.

    Returns a list of ``(kind, path_length, count)`` tuples where ``kind`` is
    ``"P"``, ``"P'"`` or ``"P''"``:

    * one instance of ``P_{l+1}``,
    * ``2^{l-i+1}`` instances of ``P'_i`` for ``i = 1 .. l``,
    * ``(l-i) 2^{l-i-1}`` instances of ``P''_i`` for ``i = 1 .. l-1``.
    """
    check_nonnegative_int(levels, "levels")
    decomposition: List[Tuple[str, int, int]] = [("P", levels + 1, 1)]
    for i in range(1, levels + 1):
        decomposition.append(("P'", i, 2 ** (levels - i + 1)))
    for i in range(1, levels):
        decomposition.append(("P''", i, (levels - i) * 2 ** (levels - i - 1)))
    return decomposition


def butterfly_laplacian_spectrum(levels: int) -> List[Tuple[float, int]]:
    """Eigenvalue/multiplicity pairs of the Laplacian of the unwrapped
    butterfly ``B_levels`` (Theorem 7).

    The total multiplicity equals ``(levels + 1) * 2^levels``, the number of
    vertices of the butterfly; the test-suite checks the values against
    numerically computed spectra of :func:`repro.graphs.generators.fft.fft_graph`.
    """
    check_nonnegative_int(levels, "levels")
    if levels == 0:
        return [(0.0, 1)]
    pairs: List[Tuple[float, int]] = []
    # Family A: from the single P_{l+1} — multiplicity 1 each.
    for j in range(levels + 1):
        pairs.append((4.0 - 4.0 * np.cos(np.pi * j / (levels + 1)), 1))
    # Family B: from the 2^{l-i+1} copies of P'_i.
    for i in range(1, levels + 1):
        mult = 2 ** (levels - i + 1)
        for j in range(i):
            pairs.append((4.0 - 4.0 * np.cos(np.pi * (2 * j + 1) / (2 * i + 1)), mult))
    # Family C: from the (l-i) 2^{l-i-1} copies of P''_i.
    for i in range(1, levels):
        mult = (levels - i) * 2 ** (levels - i - 1)
        for j in range(1, i + 1):
            pairs.append((4.0 - 4.0 * np.cos(np.pi * j / (i + 1)), mult))
    return pairs


def butterfly_spectrum_array(levels: int) -> np.ndarray:
    """Full sorted eigenvalue array (length ``(l+1) 2^l``) of ``B_levels``."""
    values: List[float] = []
    for lam, mult in butterfly_laplacian_spectrum(levels):
        values.extend([lam] * mult)
    return np.sort(np.asarray(values, dtype=np.float64))


def butterfly_smallest_eigenvalues(levels: int, k: int) -> np.ndarray:
    """The ``k`` smallest butterfly Laplacian eigenvalues from the closed form."""
    check_positive_int(k, "k")
    full = butterfly_spectrum_array(levels)
    if k > full.shape[0]:
        raise ValueError(
            f"requested {k} eigenvalues but B_{levels} has only {full.shape[0]} vertices"
        )
    return full[:k]
