"""Result dataclasses shared by the bounds and the baselines.

Every bound computation returns a small frozen dataclass carrying the bound
value together with enough metadata to reproduce it (which ``k`` won, how many
eigenvalues were computed, which Laplacian was used, wall-clock time).  The
reporting harness consumes these objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "SpectralBoundResult",
    "ParallelBoundResult",
    "IntervalBoundResult",
    "BaselineBoundResult",
]


@dataclass(frozen=True)
class SpectralBoundResult:
    """Result of the spectral lower bound (Theorem 4 or Theorem 5).

    Attributes
    ----------
    value:
        The lower bound on the optimal non-trivial I/O, clamped at zero
        (a negative lower bound carries no information).
    raw_value:
        The un-clamped maximum of ``floor(n/k) * sum_i lambda_i - 2kM``.
    best_k:
        The number of segments ``k`` attaining the maximum.
    num_vertices:
        Number of vertices ``n`` of the analysed graph.
    memory_size:
        Fast-memory size ``M``.
    normalized:
        True if the out-degree-normalised Laplacian ``L~`` was used
        (Theorem 4); False for the ``L / max_out_degree`` variant (Theorem 5).
    num_eigenvalues:
        How many of the smallest eigenvalues were computed (the ``h``
        truncation of §6.1).
    eigenvalues:
        The eigenvalues actually used (ascending); stored as a tuple so the
        dataclass stays hashable/frozen.
    per_k_values:
        Mapping ``k -> bound value`` over the swept ``k`` values.
    elapsed_seconds:
        Wall-clock time of this bound computation.  Includes the eigensolve
        only when this call actually performed one; calls served from a
        spectrum cache pay (and report) just the formula evaluation, so
        summing ``elapsed_seconds`` over a sweep counts the eigensolve
        exactly once.
    eig_elapsed_seconds:
        Wall-clock cost of the eigensolve behind the spectrum this result
        used, reported on every result for attribution (it is *shared*
        across results from the same sweep, not additive).
    """

    value: float
    raw_value: float
    best_k: int
    num_vertices: int
    memory_size: int
    normalized: bool
    num_eigenvalues: int
    eigenvalues: Tuple[float, ...] = field(repr=False)
    per_k_values: Dict[int, float] = field(repr=False, default_factory=dict)
    elapsed_seconds: float = 0.0
    eig_elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view with the eigenvalues dropped (for CSV output)."""
        data = asdict(self)
        data.pop("eigenvalues", None)
        data.pop("per_k_values", None)
        return data

    @property
    def is_trivial(self) -> bool:
        """True when the bound carries no information (``value == 0``)."""
        return self.value <= 0.0


@dataclass(frozen=True)
class ParallelBoundResult:
    """Result of the parallel spectral bound (Theorem 6).

    The bound applies to at least one of the ``num_processors`` processors.
    """

    value: float
    raw_value: float
    best_k: int
    num_vertices: int
    memory_size: int
    num_processors: int
    num_eigenvalues: int
    eigenvalues: Tuple[float, ...] = field(repr=False)
    per_k_values: Dict[int, float] = field(repr=False, default_factory=dict)
    elapsed_seconds: float = 0.0
    eig_elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data.pop("eigenvalues", None)
        data.pop("per_k_values", None)
        return data


@dataclass(frozen=True)
class IntervalBoundResult:
    """Certified bound *interval* from an interlacing-coarsened spectrum.

    The bound formula is monotone non-decreasing in every eigenvalue, so
    evaluating it at the certified lower/upper eigenvalue endpoint vectors
    (:mod:`repro.solvers.coarsen`) brackets the exact bound:
    ``value_lo <= exact bound <= value_hi``, provably.

    Attributes
    ----------
    value:
        Alias of ``value_lo`` — the certified-*safe* I/O lower bound (the
        exact bound can only be higher), so interval results drop into any
        consumer of ``result.value`` without weakening its guarantee.
    value_lo / value_hi:
        Clamped interval ends; ``raw_value_lo``/``raw_value_hi`` are the
        un-clamped formula maxima.
    best_k:
        The ``k`` attaining the maximum at the *upper* ends (the better
        estimate of the exact optimiser).
    num_coarse:
        Vertices kept by the coarse solve (``== num_vertices`` when the
        graph was too small to coarsen and the interval is a point).
    exact:
        True when no coarsening happened (``value_lo == value_hi``).

    The remaining fields mirror :class:`SpectralBoundResult`.
    """

    value: float
    value_lo: float
    value_hi: float
    raw_value_lo: float
    raw_value_hi: float
    best_k: int
    num_vertices: int
    memory_size: int
    num_processors: int
    normalized: bool
    num_eigenvalues: int
    num_coarse: int
    exact: bool
    lower_eigenvalues: Tuple[float, ...] = field(repr=False, default=())
    upper_eigenvalues: Tuple[float, ...] = field(repr=False, default=())
    elapsed_seconds: float = 0.0
    eig_elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view with the eigenvalue vectors dropped."""
        data = asdict(self)
        data.pop("lower_eigenvalues", None)
        data.pop("upper_eigenvalues", None)
        return data

    @property
    def width(self) -> float:
        """Size of the certified interval (0 for exact results)."""
        return self.value_hi - self.value_lo

    @property
    def is_trivial(self) -> bool:
        """True when even the safe end carries no information."""
        return self.value <= 0.0


@dataclass(frozen=True)
class BaselineBoundResult:
    """Result of a baseline lower-bound method (e.g. convex min-cut).

    Attributes
    ----------
    value:
        The I/O lower bound (clamped at zero).
    method:
        Human-readable method name, e.g. ``"convex-min-cut"``.
    num_vertices:
        Number of vertices of the analysed graph.
    memory_size:
        Fast-memory size ``M``.
    witness_vertex:
        For per-vertex methods, the vertex attaining the maximum (or None).
    details:
        Free-form method-specific numbers (e.g. the raw cut value).
    elapsed_seconds:
        Wall-clock time of the computation.
    backend:
        For flow-based methods, the resolved max-flow backend id (``None``
        for methods without a backend choice).
    flow_calls:
        Max-flow solves actually performed (0 when every cut value came
        from a cache tier — the warm-run audit trail, mirroring
        ``eig_elapsed_seconds`` on the spectral side).
    """

    value: float
    method: str
    num_vertices: int
    memory_size: int
    witness_vertex: Optional[int] = None
    details: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    backend: Optional[str] = None
    flow_calls: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _clamp_nonnegative(value: float) -> float:
    """Clamp tiny/negative bound values to zero (shared helper)."""
    if not np.isfinite(value):
        raise ValueError(f"bound value must be finite, got {value}")
    return max(0.0, float(value))
