"""Spectral I/O lower bounds (Theorems 4, 5 and 6 of the paper).

The central results:

* **Theorem 4 (spectral method)** — for any ``k <= n``,

      J*_G  >=  floor(n/k) * sum_{i=1..k} lambda_i(L~)  -  2 k M

  where ``L~`` is the Laplacian of the out-degree-normalised undirected graph
  and the eigenvalues are sorted increasingly.  Any ``k`` gives a valid lower
  bound, so the implementation sweeps ``k`` over ``2 .. h`` (``h = 100`` by
  default, the truncation used in §6.1) and takes the maximum; ``k = 1`` is
  excluded from the default sweep because ``lambda_1(L~) = 0`` makes its
  expression ``-2M``, which can never win (an explicit ``k=1`` is still
  honoured).

* **Theorem 5** — the same statement with the ordinary Laplacian ``L``
  divided by the maximum out-degree; looser but convenient when only
  ``lambda(L)`` is known in closed form.

* **Theorem 6 (parallel)** — with ``p`` processors of fast-memory ``M`` each,
  at least one processor incurs
  ``floor(n/(k p)) * sum_{i=1..k} lambda_i(L~) - 2 k M``.

All three bounds clamp at zero: a negative value simply means the relaxation
is uninformative for that graph and memory size.

Execution is delegated to :class:`repro.core.engine.BoundEngine`: each public
function here builds a throwaway engine (with a private spectrum cache, so
the historical one-eigensolve-per-call semantics are preserved), while code
that evaluates many bounds on the same graph should hold a ``BoundEngine``
directly — or pass a shared :class:`~repro.solvers.spectrum_cache
.SpectrumCache` via ``cache=`` — to amortise the eigensolve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import BoundEngine, KSpec
from repro.core.formula import (
    DEFAULT_NUM_EIGENVALUES,
    evaluate_bound_formula,
)
from repro.core.result import ParallelBoundResult, SpectralBoundResult
from repro.graphs.compgraph import ComputationGraph
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = [
    "DEFAULT_NUM_EIGENVALUES",
    "bound_spectrum",
    "spectral_bound",
    "spectral_bound_unnormalized",
    "spectral_bound_from_eigenvalues",
    "spectral_bounds_for_memory_sizes",
    "parallel_spectral_bound",
]


def _engine(
    graph: ComputationGraph,
    num_eigenvalues: int,
    eig_options: Optional[EigenSolverOptions],
    sparse: Optional[bool],
    cache: Optional[SpectrumCache],
) -> BoundEngine:
    """Engine used by the one-shot wrappers.

    With ``cache=None`` each wrapper call gets a private single-entry cache,
    keeping the historical semantics (every call performs its own
    eigensolve); callers that want cross-call reuse pass a shared cache.
    """
    return BoundEngine(
        graph,
        num_eigenvalues=num_eigenvalues,
        eig_options=eig_options,
        sparse=sparse,
        cache=cache if cache is not None else SpectrumCache(max_entries=2),
    )


def spectral_bound_from_eigenvalues(
    eigenvalues: Sequence[float],
    num_vertices: int,
    M: int,
    k: KSpec = None,
    num_processors: int = 1,
) -> Tuple[float, int, Dict[int, float]]:
    """Evaluate the Theorem 4/6 expression given precomputed eigenvalues.

    Parameters
    ----------
    eigenvalues:
        The smallest eigenvalues of the (normalised) Laplacian, ascending.
        Only as many ``k`` values as there are eigenvalues can be swept.
    num_vertices:
        ``n``, the number of vertices of the graph.
    M:
        Fast-memory size.
    k:
        ``None`` to sweep ``k = 2 ..`` (all available eigenvalues); an int or
        a sequence to evaluate specific values.
    num_processors:
        ``p >= 1``; the sequential bound is the ``p = 1`` special case.

    Returns
    -------
    (best_value, best_k, per_k_values)
        ``best_value`` is the raw (un-clamped) maximum over the swept ``k``.
    """
    return evaluate_bound_formula(
        eigenvalues, num_vertices, M, k=k, num_processors=num_processors
    )


def bound_spectrum(
    graph: ComputationGraph,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
    cache: Optional[SpectrumCache] = None,
) -> np.ndarray:
    """The smallest Laplacian eigenvalues a spectral bound needs.

    Computes the ``min(num_eigenvalues, n)`` smallest eigenvalues of ``L~``
    (``normalized=True``) or of ``L / max_out_degree`` (``normalized=False``).
    The eigenvalues depend only on the graph — not on the memory size ``M`` —
    so sweeps over several ``M`` values should compute them once (that is
    what :func:`spectral_bounds_for_memory_sizes` and
    :class:`~repro.core.engine.BoundEngine` do).
    """
    return _engine(graph, num_eigenvalues, eig_options, sparse, cache).spectrum(
        normalized=normalized
    )


def spectral_bounds_for_memory_sizes(
    graph: ComputationGraph,
    memory_sizes: Sequence[int],
    k: KSpec = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
    cache: Optional[SpectrumCache] = None,
) -> Dict[int, SpectralBoundResult]:
    """Spectral bounds for several memory sizes with one eigensolve.

    Returns a mapping ``M -> SpectralBoundResult``.  Equivalent to calling
    :func:`spectral_bound` per ``M`` but amortises the (dominant) eigenvalue
    computation.  The eigensolve cost lands in the ``elapsed_seconds`` of the
    first result only (the call that performed it); every result reports it
    separately in ``eig_elapsed_seconds``, so summing ``elapsed_seconds``
    over the sweep attributes the eigensolve exactly once.
    """
    engine = _engine(graph, num_eigenvalues, eig_options, sparse, cache)
    results: Dict[int, SpectralBoundResult] = {}
    for M in memory_sizes:
        if normalized:
            results[int(M)] = engine.spectral(M, k=k)
        else:
            results[int(M)] = engine.unnormalized(M, k=k)
    return results


def spectral_bound(
    graph: ComputationGraph,
    M: int,
    k: KSpec = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
    cache: Optional[SpectrumCache] = None,
) -> SpectralBoundResult:
    """Spectral I/O lower bound for a computation graph (Theorem 4).

    Parameters
    ----------
    graph:
        The computation graph ``G``.
    M:
        Fast-memory size in elements.
    k:
        Number of partition segments.  ``None`` (default) sweeps
        ``k = 2 .. min(num_eigenvalues, n)`` (§6.1) and returns the best
        bound; an integer evaluates one specific ``k``; a sequence sweeps
        exactly those values.
    num_eigenvalues:
        The truncation ``h``: how many of the smallest Laplacian eigenvalues
        to compute when sweeping (default 100, as in §6.1 of the paper).
    normalized:
        ``True`` uses the out-degree-normalised Laplacian ``L~`` (Theorem 4);
        ``False`` uses ``L / max_out_degree`` (Theorem 5).
    eig_options:
        Optional eigensolver configuration (backend, tolerance, seed).
    sparse:
        Force sparse (True) or dense (False) Laplacian assembly; ``None``
        decides by graph size.
    cache:
        Optional shared :class:`SpectrumCache`; by default each call solves
        independently.

    Returns
    -------
    SpectralBoundResult
        The bound (clamped at zero), the best ``k``, the eigenvalues used and
        the full ``k``-sweep for diagnostics.
    """
    engine = _engine(graph, num_eigenvalues, eig_options, sparse, cache)
    if normalized:
        return engine.spectral(M, k=k)
    return engine.unnormalized(M, k=k)


def spectral_bound_unnormalized(
    graph: ComputationGraph,
    M: int,
    k: KSpec = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
    cache: Optional[SpectrumCache] = None,
) -> SpectralBoundResult:
    """Theorem 5 variant: ordinary Laplacian ``L`` scaled by ``1/max d_out``.

    Equivalent to ``spectral_bound(..., normalized=False)``; provided as a
    named entry point because the closed-form analyses of Section 5 are all
    stated in this form.
    """
    return spectral_bound(
        graph,
        M,
        k=k,
        num_eigenvalues=num_eigenvalues,
        normalized=False,
        eig_options=eig_options,
        sparse=sparse,
        cache=cache,
    )


def parallel_spectral_bound(
    graph: ComputationGraph,
    M: int,
    num_processors: int,
    k: KSpec = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
    cache: Optional[SpectrumCache] = None,
) -> ParallelBoundResult:
    """Parallel spectral bound (Theorem 6).

    With ``p = num_processors`` processors, each with fast memory ``M``, at
    least one processor incurs at least the returned number of I/Os
    (communication with slow memory or with other processors).  The
    sequential bound is recovered with ``p = 1``.
    """
    engine = _engine(graph, num_eigenvalues, eig_options, sparse, cache)
    return engine.parallel(M, num_processors, k=k, normalized=normalized)
