"""Spectral I/O lower bounds (Theorems 4, 5 and 6 of the paper).

The central results:

* **Theorem 4 (spectral method)** — for any ``k <= n``,

      J*_G  >=  floor(n/k) * sum_{i=1..k} lambda_i(L~)  -  2 k M

  where ``L~`` is the Laplacian of the out-degree-normalised undirected graph
  and the eigenvalues are sorted increasingly.  Any ``k`` gives a valid lower
  bound, so the implementation sweeps ``k`` over ``2 .. h`` (``h = 100`` by
  default, the truncation used in §6.1) and takes the maximum.

* **Theorem 5** — the same statement with the ordinary Laplacian ``L``
  divided by the maximum out-degree; looser but convenient when only
  ``lambda(L)`` is known in closed form.

* **Theorem 6 (parallel)** — with ``p`` processors of fast-memory ``M`` each,
  at least one processor incurs
  ``floor(n/(k p)) * sum_{i=1..k} lambda_i(L~) - 2 k M``.

All three bounds clamp at zero: a negative value simply means the relaxation
is uninformative for that graph and memory size.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.result import ParallelBoundResult, SpectralBoundResult
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.laplacian import laplacian
from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues
from repro.utils.validation import check_memory_size, check_positive_int

__all__ = [
    "DEFAULT_NUM_EIGENVALUES",
    "bound_spectrum",
    "spectral_bound",
    "spectral_bound_unnormalized",
    "spectral_bound_from_eigenvalues",
    "spectral_bounds_for_memory_sizes",
    "parallel_spectral_bound",
]

#: The paper computes "up to the first 100 values of the graph Laplacian" and
#: optimises k over {2 .. h} (§6.1); empirically the best k is far below 100.
DEFAULT_NUM_EIGENVALUES = 100


def _k_candidates(
    n: int, num_eigenvalues: int, k: Optional[Union[int, Sequence[int]]]
) -> Tuple[int, Iterable[int]]:
    """Resolve the ``k`` sweep and how many eigenvalues are needed.

    Returns ``(h, candidates)`` where ``h`` is the number of smallest
    eigenvalues to compute and ``candidates`` the k values to evaluate.
    """
    if n == 0:
        return 0, []
    if k is None:
        h = min(max(2, num_eigenvalues), n)
        return h, range(1, h + 1)
    if isinstance(k, (int, np.integer)):
        check_positive_int(int(k), "k")
        if k > n:
            raise ValueError(f"k={k} exceeds the number of vertices n={n}")
        return int(k), [int(k)]
    ks = [int(x) for x in k]
    for x in ks:
        check_positive_int(x, "k")
        if x > n:
            raise ValueError(f"k={x} exceeds the number of vertices n={n}")
    return max(ks), sorted(set(ks))


def spectral_bound_from_eigenvalues(
    eigenvalues: Sequence[float],
    num_vertices: int,
    M: int,
    k: Optional[Union[int, Sequence[int]]] = None,
    num_processors: int = 1,
) -> Tuple[float, int, Dict[int, float]]:
    """Evaluate the Theorem 4/6 expression given precomputed eigenvalues.

    Parameters
    ----------
    eigenvalues:
        The smallest eigenvalues of the (normalised) Laplacian, ascending.
        Only as many ``k`` values as there are eigenvalues can be swept.
    num_vertices:
        ``n``, the number of vertices of the graph.
    M:
        Fast-memory size.
    k:
        ``None`` to sweep all available ``k``; an int or a sequence otherwise.
    num_processors:
        ``p >= 1``; the sequential bound is the ``p = 1`` special case.

    Returns
    -------
    (best_value, best_k, per_k_values)
        ``best_value`` is the raw (un-clamped) maximum over the swept ``k``.
    """
    check_memory_size(M)
    check_positive_int(num_processors, "num_processors")
    lam = np.asarray(list(eigenvalues), dtype=np.float64)
    n = num_vertices
    if n == 0 or lam.shape[0] == 0:
        return 0.0, 1, {}
    _, candidates = _k_candidates(n, lam.shape[0], k)
    prefix = np.concatenate([[0.0], np.cumsum(lam)])
    per_k: Dict[int, float] = {}
    best_value = -np.inf
    best_k = 1
    for kk in candidates:
        if kk > lam.shape[0]:
            continue
        value = (n // (kk * num_processors)) * prefix[kk] - 2.0 * kk * M
        per_k[kk] = float(value)
        if value > best_value:
            best_value = float(value)
            best_k = kk
    if not per_k:
        return 0.0, 1, {}
    return best_value, best_k, per_k


def bound_spectrum(
    graph: ComputationGraph,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
) -> np.ndarray:
    """The smallest Laplacian eigenvalues a spectral bound needs.

    Computes the ``min(num_eigenvalues, n)`` smallest eigenvalues of ``L~``
    (``normalized=True``) or of ``L / max_out_degree`` (``normalized=False``).
    The eigenvalues depend only on the graph — not on the memory size ``M`` —
    so sweeps over several ``M`` values should compute them once via this
    function and evaluate :func:`spectral_bound_from_eigenvalues` per ``M``
    (that is what :func:`spectral_bounds_for_memory_sizes` and the benchmark
    harness do).
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    h = min(max(2, num_eigenvalues), n)
    use_sparse = sparse if sparse is not None else n > 2000
    lap = laplacian(graph, normalized=normalized, sparse=use_sparse)
    lam = smallest_eigenvalues(lap, h, options=eig_options)
    if not normalized:
        max_out = graph.max_out_degree
        lam = lam / max_out if max_out else lam * 0.0
    return lam


def spectral_bounds_for_memory_sizes(
    graph: ComputationGraph,
    memory_sizes: Sequence[int],
    k: Optional[Union[int, Sequence[int]]] = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
) -> Dict[int, SpectralBoundResult]:
    """Spectral bounds for several memory sizes with one eigensolve.

    Returns a mapping ``M -> SpectralBoundResult``.  Equivalent to calling
    :func:`spectral_bound` per ``M`` but amortises the (dominant) eigenvalue
    computation, which the benchmark sweeps rely on.
    """
    start = time.perf_counter()
    lam = bound_spectrum(
        graph,
        num_eigenvalues=num_eigenvalues,
        normalized=normalized,
        eig_options=eig_options,
        sparse=sparse,
    )
    eig_elapsed = time.perf_counter() - start
    n = graph.num_vertices
    results: Dict[int, SpectralBoundResult] = {}
    for M in memory_sizes:
        check_memory_size(M)
        step_start = time.perf_counter()
        raw_best, best_k, per_k = spectral_bound_from_eigenvalues(lam, n, M, k=k)
        results[int(M)] = SpectralBoundResult(
            value=max(0.0, raw_best),
            raw_value=raw_best,
            best_k=best_k,
            num_vertices=n,
            memory_size=int(M),
            normalized=normalized,
            num_eigenvalues=int(lam.shape[0]),
            eigenvalues=tuple(float(x) for x in lam),
            per_k_values=per_k,
            elapsed_seconds=eig_elapsed + (time.perf_counter() - step_start),
        )
    return results


def spectral_bound(
    graph: ComputationGraph,
    M: int,
    k: Optional[Union[int, Sequence[int]]] = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
) -> SpectralBoundResult:
    """Spectral I/O lower bound for a computation graph (Theorem 4).

    Parameters
    ----------
    graph:
        The computation graph ``G``.
    M:
        Fast-memory size in elements.
    k:
        Number of partition segments.  ``None`` (default) sweeps
        ``k = 1 .. min(num_eigenvalues, n)`` and returns the best bound; an
        integer evaluates one specific ``k``; a sequence sweeps exactly those
        values.
    num_eigenvalues:
        The truncation ``h``: how many of the smallest Laplacian eigenvalues
        to compute when sweeping (default 100, as in §6.1 of the paper).
    normalized:
        ``True`` uses the out-degree-normalised Laplacian ``L~`` (Theorem 4);
        ``False`` uses ``L / max_out_degree`` (Theorem 5).
    eig_options:
        Optional eigensolver configuration (backend, tolerance, seed).
    sparse:
        Force sparse (True) or dense (False) Laplacian assembly; ``None``
        decides by graph size.

    Returns
    -------
    SpectralBoundResult
        The bound (clamped at zero), the best ``k``, the eigenvalues used and
        the full ``k``-sweep for diagnostics.
    """
    check_memory_size(M)
    start = time.perf_counter()
    n = graph.num_vertices
    if n == 0:
        return SpectralBoundResult(
            value=0.0,
            raw_value=0.0,
            best_k=1,
            num_vertices=0,
            memory_size=M,
            normalized=normalized,
            num_eigenvalues=0,
            eigenvalues=(),
            per_k_values={},
            elapsed_seconds=time.perf_counter() - start,
        )

    h, _ = _k_candidates(n, num_eigenvalues, k)
    use_sparse = sparse if sparse is not None else n > 2000
    lap = laplacian(graph, normalized=normalized, sparse=use_sparse)
    lam = smallest_eigenvalues(lap, h, options=eig_options)

    scale = 1.0
    if not normalized:
        max_out = graph.max_out_degree
        if max_out == 0:
            # No edges: the Laplacian is zero and the bound is trivially zero.
            scale = 0.0
        else:
            scale = 1.0 / max_out
    raw_best, best_k, per_k = spectral_bound_from_eigenvalues(
        lam * scale if scale != 1.0 else lam, n, M, k=k
    )

    elapsed = time.perf_counter() - start
    return SpectralBoundResult(
        value=max(0.0, raw_best),
        raw_value=raw_best,
        best_k=best_k,
        num_vertices=n,
        memory_size=M,
        normalized=normalized,
        num_eigenvalues=int(lam.shape[0]),
        eigenvalues=tuple(float(x) for x in lam),
        per_k_values=per_k,
        elapsed_seconds=elapsed,
    )


def spectral_bound_unnormalized(
    graph: ComputationGraph,
    M: int,
    k: Optional[Union[int, Sequence[int]]] = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
) -> SpectralBoundResult:
    """Theorem 5 variant: ordinary Laplacian ``L`` scaled by ``1/max d_out``.

    Equivalent to ``spectral_bound(..., normalized=False)``; provided as a
    named entry point because the closed-form analyses of Section 5 are all
    stated in this form.
    """
    return spectral_bound(
        graph,
        M,
        k=k,
        num_eigenvalues=num_eigenvalues,
        normalized=False,
        eig_options=eig_options,
        sparse=sparse,
    )


def parallel_spectral_bound(
    graph: ComputationGraph,
    M: int,
    num_processors: int,
    k: Optional[Union[int, Sequence[int]]] = None,
    num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
    normalized: bool = True,
    eig_options: Optional[EigenSolverOptions] = None,
    sparse: Optional[bool] = None,
) -> ParallelBoundResult:
    """Parallel spectral bound (Theorem 6).

    With ``p = num_processors`` processors, each with fast memory ``M``, at
    least one processor incurs at least the returned number of I/Os
    (communication with slow memory or with other processors).  The
    sequential bound is recovered with ``p = 1``.
    """
    check_memory_size(M)
    check_positive_int(num_processors, "num_processors")
    start = time.perf_counter()
    n = graph.num_vertices
    if n == 0:
        return ParallelBoundResult(
            value=0.0,
            raw_value=0.0,
            best_k=1,
            num_vertices=0,
            memory_size=M,
            num_processors=num_processors,
            num_eigenvalues=0,
            eigenvalues=(),
            per_k_values={},
            elapsed_seconds=time.perf_counter() - start,
        )
    h, _ = _k_candidates(n, num_eigenvalues, k)
    use_sparse = sparse if sparse is not None else n > 2000
    lap = laplacian(graph, normalized=normalized, sparse=use_sparse)
    lam = smallest_eigenvalues(lap, h, options=eig_options)
    if not normalized:
        max_out = graph.max_out_degree
        lam = lam / max_out if max_out else lam * 0.0
    raw_best, best_k, per_k = spectral_bound_from_eigenvalues(
        lam, n, M, k=k, num_processors=num_processors
    )
    elapsed = time.perf_counter() - start
    return ParallelBoundResult(
        value=max(0.0, raw_best),
        raw_value=raw_best,
        best_k=best_k,
        num_vertices=n,
        memory_size=M,
        num_processors=num_processors,
        num_eigenvalues=int(lam.shape[0]),
        eigenvalues=tuple(float(x) for x in lam),
        per_k_values=per_k,
        elapsed_seconds=elapsed,
    )
