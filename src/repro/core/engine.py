"""One-stop execution engine for the spectral I/O bounds.

The paper's workflow is "take a computation graph, solve for the ``h``
smallest Laplacian eigenvalues once, then evaluate the Theorem 4/5/6
expression for every memory size, processor count and ``k``".  Before this
module existed, each public bound function re-assembled the Laplacian and
re-ran the eigensolve from scratch, so a Figure-7-style sweep paid the
dominant cost |M| x |methods| times per graph.

:class:`BoundEngine` owns a graph and a :class:`~repro.solvers.spectrum_cache.
SpectrumCache`; every bound it produces shares the cached spectra, so a full
sweep performs exactly one eigensolve per (graph, normalisation).  The public
functions in :mod:`repro.core.bounds` are thin wrappers over an engine, and
the sweep/benchmark harness builds one engine per graph.

Timing attribution: every result carries ``elapsed_seconds`` (wall time of
*that* call, which includes the eigensolve only for the call that actually
triggered it) and ``eig_elapsed_seconds`` (the cost of the eigensolve behind
the spectrum used, repeated on every result for attribution).  Summing
``elapsed_seconds`` over a sweep therefore counts the eigensolve exactly
once.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.formula import (
    DEFAULT_NUM_EIGENVALUES,
    evaluate_bound_formula,
    resolve_k_candidates,
)
from repro.core.result import (
    IntervalBoundResult,
    ParallelBoundResult,
    SpectralBoundResult,
)
from repro.graphs.compgraph import ComputationGraph
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.coarsen import DEFAULT_COARSEN_RATIO
from repro.solvers.spectrum_cache import (
    CachedIntervalSpectrum,
    CachedSpectrum,
    SpectrumCache,
    default_spectrum_cache,
)
from repro.utils.validation import check_memory_size, check_positive_int

__all__ = ["BoundEngine", "SweepPoint", "SolveRecord", "SWEEP_METHODS"]

KSpec = Optional[Union[int, Sequence[int]]]

#: Bound methods understood by :meth:`BoundEngine.sweep`.
#: ``spectral-coarse`` evaluates certified bound intervals from an
#: interlacing-coarsened spectrum (see :meth:`BoundEngine.spectral_interval`).
SWEEP_METHODS = ("spectral", "spectral-unnormalized", "spectral-coarse")


@dataclass(frozen=True)
class SolveRecord:
    """One spectrum fetch performed by an engine (for observability).

    ``backend``/``dtype`` come from the backend registry via the cache;
    ``cache_hit`` distinguishes real eigensolves from served lookups, and
    ``solve_seconds`` is the cost of the underlying solve either way.
    ``trace_id``/``span_id`` link the fetch into the active trace (the
    enclosing span at fetch time) when tracing is enabled, ``None``
    otherwise — JSON outputs carry the link instead of duplicating
    timing fields.
    """

    normalized: bool
    num_eigenvalues: int
    backend: str
    dtype: str
    solve_seconds: float
    cache_hit: bool
    trace_id: Optional[str] = None
    span_id: Optional[str] = None


@dataclass(frozen=True)
class SweepPoint:
    """One (method, memory size, processor count) evaluation of a sweep."""

    method: str
    memory_size: int
    num_processors: int
    result: Union[SpectralBoundResult, ParallelBoundResult, IntervalBoundResult]

    @property
    def bound(self) -> float:
        """The (clamped) bound value of this point."""
        return self.result.value


class BoundEngine:
    """Compute spectral I/O lower bounds for one graph with shared spectra.

    Parameters
    ----------
    graph:
        The computation graph to bound.
    num_eigenvalues:
        Default truncation ``h`` for the ``k`` sweep (§6.1 of the paper).
    eig_options:
        Eigensolver configuration forwarded to the backend.
    sparse:
        Force sparse/dense Laplacian assembly (``None`` decides by size).
    cache:
        The :class:`SpectrumCache` to use.  ``None`` uses the process-wide
        default cache, so engines on the same graph share eigensolves even
        across call sites.
    store:
        Optional :class:`~repro.runtime.store.SpectrumStore`: when given
        (and no explicit ``cache``), the engine builds a private cache with
        the store as its persistent second tier, so eigensolves are shared
        across processes and runs.  Mutually exclusive with ``cache`` — a
        cache carries its own store.
    lineage:
        Optional family-lineage tag (e.g. ``"fft"``) forwarded to the
        spectrum cache: warm-start-capable backends seed their solves from
        the previous solve of the same lineage in the shared
        :class:`~repro.solvers.backends.WarmStartContext`.

    Examples
    --------
    >>> from repro.graphs.generators import fft_graph
    >>> engine = BoundEngine(fft_graph(6))
    >>> r1 = engine.spectral(M=4)        # eigensolve happens here
    >>> r2 = engine.spectral(M=8)        # served from the cached spectrum
    >>> engine.num_eigensolves
    1
    """

    def __init__(
        self,
        graph: ComputationGraph,
        num_eigenvalues: int = DEFAULT_NUM_EIGENVALUES,
        eig_options: Optional[EigenSolverOptions] = None,
        sparse: Optional[bool] = None,
        cache: Optional[SpectrumCache] = None,
        store=None,
        lineage: Optional[str] = None,
    ) -> None:
        check_positive_int(num_eigenvalues, "num_eigenvalues")
        self._graph = graph
        self._num_eigenvalues = int(num_eigenvalues)
        self._eig_options = eig_options
        self._sparse = sparse
        self._lineage = lineage
        # Observability log: misses (real eigensolves, at most a handful per
        # engine — one per distinct (normalization, h)) are kept in full so
        # long sweeps can't evict them; hits are kept as a small recent
        # window (they carry no information beyond the serving backend).
        self._miss_log: Deque[SolveRecord] = deque(maxlen=256)
        self._hit_log: Deque[SolveRecord] = deque(maxlen=16)
        if cache is not None:
            if store is not None:
                raise ValueError(
                    "pass either cache or store, not both (a cache carries its own store)"
                )
            self._cache = cache
        elif store is not None:
            self._cache = SpectrumCache(store=store)
        else:
            self._cache = default_spectrum_cache()
        self._eigensolves = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ComputationGraph:
        return self._graph

    @property
    def num_eigenvalues(self) -> int:
        return self._num_eigenvalues

    @property
    def cache(self) -> SpectrumCache:
        return self._cache

    @property
    def num_eigensolves(self) -> int:
        """Eigensolves triggered *by this engine* (cache hits excluded)."""
        return self._eigensolves

    @property
    def solve_log(self) -> List[SolveRecord]:
        """Spectrum fetches: every eigensolve plus a window of recent hits."""
        return list(self._miss_log) + list(self._hit_log)

    # ------------------------------------------------------------------
    # spectra
    # ------------------------------------------------------------------
    def spectrum(self, normalized: bool = True, num_eigenvalues: Optional[int] = None) -> np.ndarray:
        """The smallest Laplacian eigenvalues this engine's bounds consume.

        ``normalized=True`` returns eigenvalues of ``L~`` (Theorem 4);
        ``normalized=False`` returns ``lambda(L) / max_out_degree``
        (Theorem 5).  Cached: repeated calls solve at most once.
        """
        n = self._graph.num_vertices
        if n == 0:
            return np.zeros(0)
        if num_eigenvalues is None:
            num_eigenvalues = self._num_eigenvalues
        else:
            check_positive_int(num_eigenvalues, "num_eigenvalues")
        h = min(max(2, num_eigenvalues), n)
        return self._fetch_spectrum(h, normalized).eigenvalues

    def _fetch_spectrum(self, h: int, normalized: bool) -> CachedSpectrum:
        fetched = self._cache.spectrum(
            self._graph,
            h,
            normalized=normalized,
            eig_options=self._eig_options,
            sparse=self._sparse,
            lineage=self._lineage,
        )
        if not fetched.cache_hit:
            self._eigensolves += 1
        context = obs.current_context()
        record = SolveRecord(
            normalized=normalized,
            num_eigenvalues=h,
            backend=fetched.backend,
            dtype=fetched.dtype,
            solve_seconds=fetched.solve_seconds,
            cache_hit=fetched.cache_hit,
            trace_id=context.trace_id if context else None,
            span_id=context.span_id if context else None,
        )
        (self._hit_log if fetched.cache_hit else self._miss_log).append(record)
        return fetched

    def _fetch_interval(
        self, h: int, normalized: bool, ratio: float, coarsen_seed: int
    ) -> CachedIntervalSpectrum:
        fetched = self._cache.interval_spectrum(
            self._graph,
            h,
            normalized=normalized,
            eig_options=self._eig_options,
            sparse=self._sparse,
            lineage=self._lineage,
            ratio=ratio,
            coarsen_seed=coarsen_seed,
        )
        if not fetched.cache_hit:
            self._eigensolves += 1
        context = obs.current_context()
        record = SolveRecord(
            normalized=normalized,
            num_eigenvalues=h,
            backend=fetched.backend,
            dtype=fetched.dtype,
            solve_seconds=fetched.solve_seconds,
            cache_hit=fetched.cache_hit,
            trace_id=context.trace_id if context else None,
            span_id=context.span_id if context else None,
        )
        (self._hit_log if fetched.cache_hit else self._miss_log).append(record)
        return fetched

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------
    def spectral(self, M: int, k: KSpec = None) -> SpectralBoundResult:
        """Theorem 4 bound (out-degree-normalised Laplacian ``L~``)."""
        return self._spectral_result(M, k, normalized=True)

    def unnormalized(self, M: int, k: KSpec = None) -> SpectralBoundResult:
        """Theorem 5 bound (ordinary Laplacian scaled by ``1/max d_out``)."""
        return self._spectral_result(M, k, normalized=False)

    def parallel(
        self,
        M: int,
        num_processors: int,
        k: KSpec = None,
        normalized: bool = True,
    ) -> ParallelBoundResult:
        """Theorem 6 bound: ``p`` processors with fast memory ``M`` each."""
        check_memory_size(M)
        check_positive_int(num_processors, "num_processors")
        start = time.perf_counter()
        n = self._graph.num_vertices
        if n == 0:
            return ParallelBoundResult(
                **self._empty_result_fields(M, start), num_processors=num_processors
            )
        lam, fetched = self._spectrum_for(k, normalized)
        raw_best, best_k, per_k = evaluate_bound_formula(
            lam, n, M, k=k, num_processors=num_processors
        )
        return ParallelBoundResult(
            value=max(0.0, raw_best),
            raw_value=raw_best,
            best_k=best_k,
            num_vertices=n,
            memory_size=M,
            num_processors=num_processors,
            num_eigenvalues=int(lam.shape[0]),
            eigenvalues=tuple(float(x) for x in lam),
            per_k_values=per_k,
            elapsed_seconds=time.perf_counter() - start,
            eig_elapsed_seconds=fetched.solve_seconds,
        )

    def spectral_interval(
        self,
        M: int,
        k: KSpec = None,
        normalized: bool = True,
        num_processors: int = 1,
        ratio: float = DEFAULT_COARSEN_RATIO,
        coarsen_seed: int = 0,
    ) -> IntervalBoundResult:
        """Certified bound interval from an interlacing-coarsened spectrum.

        Solves the spectrum of a seeded principal submatrix keeping
        ``~ratio * n`` vertices — a fraction of the exact cost at paper
        scale — and evaluates the bound formula at the certified eigenvalue
        interval ends.  Monotonicity of the formula in every eigenvalue
        makes ``[value_lo, value_hi]`` a certified bracket of the exact
        bound; ``result.value`` is the safe lower end.  Coarse spectra are
        cached/stored under a distinct variant, so a later exact solve of
        the same graph refreshes lazily without invalidating this entry.
        """
        check_memory_size(M)
        check_positive_int(num_processors, "num_processors")
        start = time.perf_counter()
        n = self._graph.num_vertices
        if n == 0:
            return IntervalBoundResult(
                value=0.0, value_lo=0.0, value_hi=0.0,
                raw_value_lo=0.0, raw_value_hi=0.0,
                best_k=1, num_vertices=0, memory_size=M,
                num_processors=num_processors, normalized=normalized,
                num_eigenvalues=0, num_coarse=0, exact=True,
                elapsed_seconds=time.perf_counter() - start,
            )
        h, _ = resolve_k_candidates(n, self._num_eigenvalues, k)
        h = min(max(2, h), n)
        fetched = self._fetch_interval(h, normalized, ratio, coarsen_seed)
        raw_lo, _, _ = evaluate_bound_formula(
            fetched.lower, n, M, k=k, num_processors=num_processors
        )
        raw_hi, best_k, _ = evaluate_bound_formula(
            fetched.upper, n, M, k=k, num_processors=num_processors
        )
        return IntervalBoundResult(
            value=max(0.0, raw_lo),
            value_lo=max(0.0, raw_lo),
            value_hi=max(0.0, raw_hi),
            raw_value_lo=raw_lo,
            raw_value_hi=raw_hi,
            best_k=best_k,
            num_vertices=n,
            memory_size=M,
            num_processors=num_processors,
            normalized=normalized,
            num_eigenvalues=int(fetched.upper.shape[0]),
            num_coarse=fetched.num_coarse,
            exact=fetched.exact,
            lower_eigenvalues=tuple(float(x) for x in fetched.lower),
            upper_eigenvalues=tuple(float(x) for x in fetched.upper),
            elapsed_seconds=time.perf_counter() - start,
            eig_elapsed_seconds=fetched.solve_seconds,
        )

    def sweep(
        self,
        memory_sizes: Iterable[int],
        processors: Union[int, Iterable[int]] = (1,),
        methods: Sequence[str] = ("spectral",),
        k: KSpec = None,
    ) -> List[SweepPoint]:
        """Batch-evaluate bounds over memory sizes, processor counts, methods.

        The heavy work — one eigensolve per requested normalisation — happens
        once; every (M, p, method) combination is then a vectorised formula
        evaluation.  ``processors`` may be a single ``p`` or an iterable;
        ``p = 1`` points carry :class:`SpectralBoundResult` (the sequential
        Theorems 4/5) and ``p > 1`` points :class:`ParallelBoundResult`
        (Theorem 6).

        Returns one :class:`SweepPoint` per combination, ordered by
        (method, processors, memory size).
        """
        for method in methods:
            if method not in SWEEP_METHODS:
                raise ValueError(
                    f"unknown method {method!r}; expected one of {SWEEP_METHODS}"
                )
        if isinstance(processors, (int, np.integer)):
            processors = (int(processors),)
        proc_list = [int(p) for p in processors]
        for p in proc_list:
            check_positive_int(p, "num_processors")
        memory_list = [int(M) for M in memory_sizes]
        points: List[SweepPoint] = []
        for method in methods:
            normalized = method != "spectral-unnormalized"
            for p in proc_list:
                for M in memory_list:
                    result: Union[
                        SpectralBoundResult, ParallelBoundResult, IntervalBoundResult
                    ]
                    if method == "spectral-coarse":
                        result = self.spectral_interval(
                            M, k=k, normalized=normalized, num_processors=p
                        )
                    elif p == 1:
                        result = self._spectral_result(M, k, normalized=normalized)
                    else:
                        result = self.parallel(M, p, k=k, normalized=normalized)
                    points.append(
                        SweepPoint(
                            method=method,
                            memory_size=M,
                            num_processors=p,
                            result=result,
                        )
                    )
        return points

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _spectrum_for(self, k: KSpec, normalized: bool) -> Tuple[np.ndarray, CachedSpectrum]:
        """Eigenvalues sized for the requested ``k`` sweep."""
        n = self._graph.num_vertices
        h, _ = resolve_k_candidates(n, self._num_eigenvalues, k)
        h = min(max(2, h), n)
        fetched = self._fetch_spectrum(h, normalized)
        return fetched.eigenvalues, fetched

    @staticmethod
    def _empty_result_fields(M: int, start: float) -> dict:
        """Shared fields of the trivial result for the empty graph."""
        return dict(
            value=0.0,
            raw_value=0.0,
            best_k=1,
            num_vertices=0,
            memory_size=M,
            num_eigenvalues=0,
            eigenvalues=(),
            per_k_values={},
            elapsed_seconds=time.perf_counter() - start,
        )

    def _spectral_result(self, M: int, k: KSpec, normalized: bool) -> SpectralBoundResult:
        check_memory_size(M)
        start = time.perf_counter()
        n = self._graph.num_vertices
        if n == 0:
            return SpectralBoundResult(
                **self._empty_result_fields(M, start), normalized=normalized
            )
        lam, fetched = self._spectrum_for(k, normalized)
        raw_best, best_k, per_k = evaluate_bound_formula(lam, n, M, k=k)
        return SpectralBoundResult(
            value=max(0.0, raw_best),
            raw_value=raw_best,
            best_k=best_k,
            num_vertices=n,
            memory_size=M,
            normalized=normalized,
            num_eigenvalues=int(lam.shape[0]),
            eigenvalues=tuple(float(x) for x in lam),
            per_k_values=per_k,
            elapsed_seconds=time.perf_counter() - start,
            eig_elapsed_seconds=fetched.solve_seconds,
        )
