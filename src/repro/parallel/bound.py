"""Per-processor I/O accounting for a concrete processor assignment.

Theorem 6 is a lower bound on the I/O of *some* processor; this module
provides the constructive counterpart: given an assignment and per-processor
memory ``M``, simulate every processor's local schedule and charge an I/O for

* every value a processor consumes but did not compute (it must be received
  from another processor or read from slow memory), and
* every eviction / re-read inside the processor's own local memory, exactly
  as in the sequential simulator.

The maximum over processors is then an *upper* bound counterpart to Theorem 6
(both measure the worst processor), which the parallel benchmark uses to show
the lower bound tracks an achievable execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.orders import natural_topological_order
from repro.parallel.assignment import ProcessorAssignment
from repro.pebbling.simulator import simulate_order
from repro.utils.validation import check_memory_size

__all__ = ["ProcessorIO", "parallel_io_per_processor", "max_processor_simulated_io"]


@dataclass(frozen=True)
class ProcessorIO:
    """I/O incurred by one processor under a concrete assignment."""

    processor: int
    num_vertices: int
    local_io: int
    received_values: int
    sent_values: int

    @property
    def total_io(self) -> int:
        """Local memory traffic plus cross-processor communication."""
        return self.local_io + self.received_values + self.sent_values


def parallel_io_per_processor(
    graph: ComputationGraph,
    assignment: ProcessorAssignment,
    M: int,
    order: Sequence[int] | None = None,
    policy: str = "belady",
) -> List[ProcessorIO]:
    """Simulate every processor's local execution under ``assignment``.

    Each processor evaluates its vertices in global schedule order.  Values
    produced by other processors are modelled as extra *input* vertices of the
    processor's local sub-graph (they must be received: one I/O each charged
    as ``received_values``); values consumed by other processors are counted
    once as ``sent_values``.  Local evictions/re-reads inside the sub-graph
    are counted by the sequential simulator.
    """
    check_memory_size(M)
    if assignment.num_processors < 1:
        raise ValueError("assignment must have at least one processor")
    if len(assignment.processor_of) != graph.num_vertices:
        raise ValueError("assignment size does not match the graph")
    order = list(order) if order is not None else natural_topological_order(graph)

    results: List[ProcessorIO] = []
    for proc in range(assignment.num_processors):
        owned = set(assignment.vertices_of(proc))
        # Remote values this processor consumes, and values it must send out.
        received = set()
        sent = set()
        for u, v in graph.edges():
            if v in owned and u not in owned:
                received.add(u)
            if u in owned and v not in owned:
                sent.add(u)
        # Local sub-graph: owned vertices plus received values as inputs.
        local_vertices = sorted(owned | received)
        subgraph, mapping = graph.subgraph(local_vertices)
        # Drop edges among received vertices' ancestors automatically: the
        # induced sub-graph only keeps edges with both endpoints local.
        local_order = [mapping[v] for v in order if v in owned or v in received]
        sim = simulate_order(subgraph, local_order, M, policy=policy, validate_order=False)
        results.append(
            ProcessorIO(
                processor=proc,
                num_vertices=len(owned),
                local_io=sim.total_io,
                received_values=len(received),
                sent_values=len(sent),
            )
        )
    return results


def max_processor_simulated_io(
    graph: ComputationGraph,
    assignment: ProcessorAssignment,
    M: int,
    order: Sequence[int] | None = None,
    policy: str = "belady",
) -> int:
    """The worst per-processor total I/O under ``assignment`` (upper-bound
    counterpart of Theorem 6)."""
    per_proc = parallel_io_per_processor(graph, assignment, M, order=order, policy=policy)
    return max(p.total_io for p in per_proc) if per_proc else 0
