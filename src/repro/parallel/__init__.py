"""Parallel execution model (Section 4.4).

Theorem 6 bounds the I/O of *some* processor when the computation graph is
distributed across ``p`` processors, each with local fast memory ``M``, and
I/O counts communication with slow memory or between processors.  This
subpackage provides the constructive counterpart:

* :mod:`assignment` — ways of assigning vertices to processors (contiguous
  blocks of a topological order, round-robin, random),
* :mod:`bound` — per-processor I/O accounting for a concrete assignment
  (an upper-bound construction to compare against Theorem 6), plus a thin
  wrapper re-exporting :func:`repro.core.bounds.parallel_spectral_bound`.
"""

from repro.parallel.assignment import (
    ProcessorAssignment,
    contiguous_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.parallel.bound import max_processor_simulated_io, parallel_io_per_processor

__all__ = [
    "ProcessorAssignment",
    "contiguous_assignment",
    "round_robin_assignment",
    "random_assignment",
    "parallel_io_per_processor",
    "max_processor_simulated_io",
]
