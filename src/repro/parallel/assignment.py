"""Assigning computation-graph vertices to processors.

An assignment maps every vertex to one of ``p`` processors (the model of
§4.4: each vertex is evaluated by exactly one processor, memory is local).
Three standard strategies are provided; all of them return a
:class:`ProcessorAssignment` that the accounting in
:mod:`repro.parallel.bound` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.orders import natural_topological_order
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "ProcessorAssignment",
    "contiguous_assignment",
    "round_robin_assignment",
    "random_assignment",
]


@dataclass(frozen=True)
class ProcessorAssignment:
    """A vertex-to-processor assignment.

    Attributes
    ----------
    num_processors:
        Number of processors ``p``.
    processor_of:
        ``processor_of[v]`` is the processor (``0 .. p-1``) evaluating ``v``.
    """

    num_processors: int
    processor_of: tuple

    def vertices_of(self, processor: int) -> List[int]:
        """Vertices assigned to ``processor`` (in vertex-id order)."""
        if not 0 <= processor < self.num_processors:
            raise ValueError(
                f"processor {processor} out of range for {self.num_processors} processors"
            )
        return [v for v, proc in enumerate(self.processor_of) if proc == processor]

    def load(self) -> List[int]:
        """Number of vertices per processor."""
        counts = [0] * self.num_processors
        for proc in self.processor_of:
            counts[proc] += 1
        return counts


def _validated(graph: ComputationGraph, num_processors: int) -> int:
    check_positive_int(num_processors, "num_processors")
    if graph.num_vertices == 0:
        return num_processors
    return num_processors


def contiguous_assignment(
    graph: ComputationGraph, num_processors: int, order: Sequence[int] | None = None
) -> ProcessorAssignment:
    """Split a topological order into ``p`` contiguous balanced blocks.

    Contiguous blocks minimise the number of cross-processor edges for
    schedule-like orders and correspond to the "owner computes a phase"
    distribution common in BSP-style executions.
    """
    p = _validated(graph, num_processors)
    n = graph.num_vertices
    order = list(order) if order is not None else natural_topological_order(graph)
    processor_of = [0] * n
    base, remainder = divmod(n, p)
    start = 0
    for proc in range(p):
        size = base + 1 if proc < remainder else base
        for t in range(start, start + size):
            processor_of[order[t]] = proc
        start += size
    return ProcessorAssignment(p, tuple(processor_of))


def round_robin_assignment(
    graph: ComputationGraph, num_processors: int, order: Sequence[int] | None = None
) -> ProcessorAssignment:
    """Deal vertices to processors round-robin along a topological order.

    Maximises load balance at every prefix of the schedule but creates many
    cross-processor edges — the communication-heavy extreme, useful as a
    contrast to :func:`contiguous_assignment` in the parallel benchmarks.
    """
    p = _validated(graph, num_processors)
    order = list(order) if order is not None else natural_topological_order(graph)
    processor_of = [0] * graph.num_vertices
    for t, v in enumerate(order):
        processor_of[v] = t % p
    return ProcessorAssignment(p, tuple(processor_of))


def random_assignment(
    graph: ComputationGraph, num_processors: int, seed: SeedLike = 0
) -> ProcessorAssignment:
    """Assign every vertex to a uniformly random processor."""
    p = _validated(graph, num_processors)
    rng = as_rng(seed)
    processor_of = tuple(int(rng.integers(p)) for _ in range(graph.num_vertices))
    return ProcessorAssignment(p, processor_of)
