"""Solver options and the legacy entry point for smallest eigenvalues.

The actual solver implementations live in :mod:`repro.solvers.backends` as a
:class:`~repro.solvers.backends.SpectralBackend` registry (``dense``,
``sparse``, ``lanczos``, ``power``, ``lobpcg``).  This module keeps

* :class:`EigenSolverOptions` — the frozen, hashable configuration object
  that caches and the persistent store key on, and
* :func:`smallest_eigenvalues` — the historical free-function entry point,
  now a thin wrapper over :func:`repro.solvers.backends.solve_smallest`.

All backends return eigenvalues in increasing order, clamped at zero: graph
Laplacians are positive semi-definite, so tiny negative values are numerical
noise and would otherwise leak into the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.solvers.backends import WarmStartContext, available_backends, solve_smallest

__all__ = ["EigenSolverOptions", "smallest_eigenvalues", "DENSE_CUTOFF"]

MatrixLike = Union[np.ndarray, sp.spmatrix]

#: Below this dimension the dense solver is both faster and exact.  LAPACK's
#: blocked ``syevd`` on a few-thousand-dimensional Laplacian takes a couple of
#: seconds, which in practice beats ARPACK shift-invert (and avoids ARPACK's
#: accuracy issues on the highly clustered spectra of hypercubes/butterflies).
DENSE_CUTOFF = 6000

_VALID_DTYPES = frozenset({"float64", "float32"})


def _valid_methods() -> frozenset:
    """``auto`` plus every *currently* registered backend id.

    Computed per validation so backends registered after import (the
    ``register_backend`` extension point) are accepted too.
    """
    return frozenset({"auto", *available_backends()})


@dataclass(frozen=True)
class EigenSolverOptions:
    """Options controlling eigenvalue computation.

    Attributes
    ----------
    method:
        One of ``"auto"``, ``"dense"``, ``"sparse"``, ``"lanczos"``,
        ``"power"``, ``"lobpcg"``.
    dense_cutoff:
        Matrix dimension below which ``"auto"`` uses the dense backend.
    tolerance:
        Convergence tolerance forwarded to iterative backends.
    max_iterations:
        Iteration cap forwarded to iterative backends (``None`` = defaults).
    seed:
        Seed for backends that use random start vectors.
    dtype:
        Arithmetic precision: ``"float64"`` (default) or ``"float32"``
        (roughly twice the matvec throughput, ~1e-6 accuracy).  Results are
        always returned as float64 arrays; caches and the persistent store
        key on this field, so mixed-precision spectra coexist.
    """

    method: str = "auto"
    dense_cutoff: int = DENSE_CUTOFF
    tolerance: float = 1e-8
    max_iterations: int | None = None
    seed: int = 0
    dtype: str = "float64"

    def __post_init__(self) -> None:
        valid = _valid_methods()
        if self.method not in valid:
            raise ValueError(
                f"method must be one of {sorted(valid)}, got {self.method!r}"
            )
        if self.dtype not in _VALID_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(_VALID_DTYPES)}, got {self.dtype!r}"
            )


def smallest_eigenvalues(
    matrix: MatrixLike,
    k: int,
    options: EigenSolverOptions | None = None,
    warm_start: Optional[WarmStartContext] = None,
    lineage: Optional[str] = None,
    normalized: bool = True,
) -> np.ndarray:
    """Return the ``k`` smallest eigenvalues of a symmetric PSD matrix.

    Parameters
    ----------
    matrix:
        Dense array or SciPy sparse matrix (a graph Laplacian in this
        package's use).
    k:
        Number of eigenvalues requested, ``0 <= k <= n``.
    options:
        Backend options; defaults to automatic selection.
    warm_start, lineage:
        Optional warm-start context and lineage key; when both are given and
        the resolved backend supports warm starts, the solve is seeded from
        the lineage's previous Ritz vectors (see
        :class:`repro.solvers.backends.WarmStartContext`).
    normalized:
        Part of the warm-start key (spectra of the two normalisations must
        never seed each other); ignored without ``warm_start``.

    Returns
    -------
    numpy.ndarray
        ``k`` eigenvalues in increasing order, with small negative numerical
        noise clamped to zero.
    """
    options = options or EigenSolverOptions()
    result = solve_smallest(
        matrix,
        k,
        options,
        warm_start=warm_start,
        lineage=lineage,
        normalized=normalized,
    )
    return result.eigenvalues
