"""Backend selection for smallest-eigenvalue computation.

:func:`smallest_eigenvalues` is the single entry point the bound code uses.
It dispatches between

* ``"dense"``   — exact LAPACK solve (default for small matrices),
* ``"sparse"``  — ARPACK shift-invert (``scipy.sparse.linalg.eigsh``) with a
  robust fallback chain, the default for large sparse Laplacians,
* ``"lanczos"`` — the in-package Lanczos solver,
* ``"power"``   — shifted power iteration with deflation,
* ``"auto"``    — dense below a size threshold, sparse above it.

All backends return eigenvalues in increasing order, clamped at zero: graph
Laplacians are positive semi-definite, so tiny negative values are numerical
noise and would otherwise leak into the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.dense import dense_smallest_eigenvalues
from repro.solvers.lanczos import lanczos_smallest_eigenvalues
from repro.solvers.power_iteration import power_iteration_smallest_eigenvalues

__all__ = ["EigenSolverOptions", "smallest_eigenvalues"]

MatrixLike = Union[np.ndarray, sp.spmatrix]

#: Below this dimension the dense solver is both faster and exact.  LAPACK's
#: blocked ``syevd`` on a few-thousand-dimensional Laplacian takes a couple of
#: seconds, which in practice beats ARPACK shift-invert (and avoids ARPACK's
#: accuracy issues on the highly clustered spectra of hypercubes/butterflies).
DENSE_CUTOFF = 6000


@dataclass(frozen=True)
class EigenSolverOptions:
    """Options controlling eigenvalue computation.

    Attributes
    ----------
    method:
        One of ``"auto"``, ``"dense"``, ``"sparse"``, ``"lanczos"``,
        ``"power"``.
    dense_cutoff:
        Matrix dimension below which ``"auto"`` uses the dense backend.
    tolerance:
        Convergence tolerance forwarded to iterative backends.
    max_iterations:
        Iteration cap forwarded to iterative backends (``None`` = defaults).
    seed:
        Seed for backends that use random start vectors.
    """

    method: str = "auto"
    dense_cutoff: int = DENSE_CUTOFF
    tolerance: float = 1e-8
    max_iterations: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        valid = {"auto", "dense", "sparse", "lanczos", "power"}
        if self.method not in valid:
            raise ValueError(f"method must be one of {sorted(valid)}, got {self.method!r}")


def smallest_eigenvalues(
    matrix: MatrixLike,
    k: int,
    options: EigenSolverOptions | None = None,
) -> np.ndarray:
    """Return the ``k`` smallest eigenvalues of a symmetric PSD matrix.

    Parameters
    ----------
    matrix:
        Dense array or SciPy sparse matrix (a graph Laplacian in this
        package's use).
    k:
        Number of eigenvalues requested, ``0 <= k <= n``.
    options:
        Backend options; defaults to automatic selection.

    Returns
    -------
    numpy.ndarray
        ``k`` eigenvalues in increasing order, with small negative numerical
        noise clamped to zero.
    """
    options = options or EigenSolverOptions()
    n = matrix.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > n:
        raise ValueError(f"requested {k} eigenvalues from an n={n} matrix")
    if k == 0:
        return np.zeros(0)

    method = options.method
    if method == "auto":
        method = "dense" if n <= options.dense_cutoff or k >= n - 1 else "sparse"

    if method == "dense":
        values = dense_smallest_eigenvalues(matrix, k)
    elif method == "lanczos":
        values = lanczos_smallest_eigenvalues(
            matrix,
            k,
            max_iterations=options.max_iterations,
            tolerance=options.tolerance,
            seed=options.seed,
        ).eigenvalues
    elif method == "power":
        values = power_iteration_smallest_eigenvalues(
            matrix,
            k,
            tolerance=options.tolerance,
            seed=options.seed,
        )
    else:  # "sparse"
        values = _sparse_smallest(matrix, k, options)

    values = np.asarray(values, dtype=np.float64)
    values[np.abs(values) < 1e-10] = 0.0
    values[values < 0.0] = 0.0
    return np.sort(values)


def _sparse_smallest(matrix: MatrixLike, k: int, options: EigenSolverOptions) -> np.ndarray:
    """ARPACK-based smallest eigenvalues with a fallback chain.

    ARPACK requires ``k < n``; when ``k`` is too close to ``n`` we fall back
    to the dense solver.  Shift-invert around a small negative shift is used
    first (fast and accurate for PSD Laplacians because ``L + eps I`` is
    positive definite); plain ``which='SA'`` is the fallback, and the dense
    solver is the last resort for moderate sizes.
    """
    n = matrix.shape[0]
    if k >= n - 1 or n <= 2:
        return dense_smallest_eigenvalues(matrix, k)
    mat = matrix.tocsc() if sp.issparse(matrix) else sp.csc_matrix(np.asarray(matrix))
    # Graph Laplacians of symmetric graphs have heavily clustered spectra; a
    # generous Lanczos basis (ncv) is needed for ARPACK to resolve whole
    # clusters instead of returning a too-large value from the middle of one.
    ncv = min(n - 1, max(4 * k + 1, 120))
    try:
        values = spla.eigsh(
            mat,
            k=k,
            sigma=-1e-6,
            which="LM",
            return_eigenvectors=False,
            tol=options.tolerance,
            ncv=ncv,
        )
        return np.asarray(values)
    except Exception:  # pragma: no cover - exercised only on ARPACK failures
        pass
    try:
        values = spla.eigsh(
            mat,
            k=k,
            which="SA",
            return_eigenvectors=False,
            tol=max(options.tolerance, 1e-6),
            maxiter=options.max_iterations or n * 20,
            ncv=ncv,
        )
        return np.asarray(values)
    except Exception:  # pragma: no cover
        if n <= 5000:
            return dense_smallest_eigenvalues(mat, k)
        raise
