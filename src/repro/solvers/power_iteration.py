"""Shifted power iteration with deflation.

The simplest eigenvalue machinery the paper's "efficiently computable by power
iteration" claim refers to.  To obtain the *smallest* eigenvalues of a
positive semi-definite matrix ``A`` we run power iteration on the shifted
operator ``B = c I - A`` with ``c`` an upper bound on ``lambda_max(A)``
(Gershgorin); the dominant eigenvalues of ``B`` are ``c - lambda_i(A)`` for
the smallest ``lambda_i``.  Already-found eigenvectors are deflated by
projection.

This backend is ``O(k * iters * nnz)`` and noticeably slower than Lanczos for
the same accuracy — it exists as the most elementary reference implementation
and is cross-checked against the dense solver in the tests.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "gershgorin_upper_bound",
    "power_iteration_largest_eigenvalue",
    "power_iteration_smallest_eigenvalues",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def gershgorin_upper_bound(matrix: MatrixLike) -> float:
    """Upper bound on the largest eigenvalue via Gershgorin discs.

    For a symmetric matrix every eigenvalue lies in
    ``[min_i(a_ii - r_i), max_i(a_ii + r_i)]`` with ``r_i`` the off-diagonal
    absolute row sum; for a graph Laplacian this gives the convenient bound
    ``lambda_max <= 2 * max_degree``.
    """
    if sp.issparse(matrix):
        dense_diag = matrix.diagonal()
        abs_rows = np.asarray(abs(matrix).sum(axis=1)).ravel()
        radii = abs_rows - np.abs(dense_diag)
        return float(np.max(dense_diag + radii)) if matrix.shape[0] else 0.0
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.shape[0] == 0:
        return 0.0
    diag = np.diag(arr)
    radii = np.abs(arr).sum(axis=1) - np.abs(diag)
    return float(np.max(diag + radii))


def power_iteration_largest_eigenvalue(
    matrix: MatrixLike,
    max_iterations: int = 1000,
    tolerance: float = 1e-10,
    seed: SeedLike = 0,
) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue/eigenvector of a symmetric PSD matrix.

    Returns the Rayleigh-quotient estimate and the final unit vector.  For
    matrices whose dominant eigenvalue is not unique the returned vector is
    some unit vector of the dominant eigenspace, which is all the callers
    need.
    """
    n = matrix.shape[0]
    if n == 0:
        return 0.0, np.zeros(0)
    rng = as_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for _ in range(max_iterations):
        w = np.asarray(matrix @ v, dtype=np.float64).ravel()
        norm = np.linalg.norm(w)
        if norm <= 1e-300:
            return 0.0, v
        w /= norm
        new_eigenvalue = float(w @ np.asarray(matrix @ w).ravel())
        if abs(new_eigenvalue - eigenvalue) <= tolerance * max(1.0, abs(new_eigenvalue)):
            return new_eigenvalue, w
        eigenvalue = new_eigenvalue
        v = w
    return eigenvalue, v


def power_iteration_smallest_eigenvalues(
    matrix: MatrixLike,
    k: int,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    seed: SeedLike = 0,
) -> np.ndarray:
    """The ``k`` smallest eigenvalues of a symmetric PSD matrix, increasing.

    Uses power iteration on ``c I - A`` with deflation of previously found
    eigenvectors.  Accuracy degrades when eigenvalues cluster (they do for
    large structured graphs), so the default tolerance and iteration budget
    are generous; prefer the Lanczos or dense backends for production use.
    """
    n = matrix.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > n:
        raise ValueError(f"requested {k} eigenvalues from an n={n} matrix")
    if k == 0:
        return np.zeros(0)

    rng = as_rng(seed)
    shift = gershgorin_upper_bound(matrix) + 1.0
    found_vectors = np.zeros((n, 0), dtype=np.float64)
    eigenvalues: list[float] = []

    for _ in range(k):
        v = rng.standard_normal(n)
        if found_vectors.shape[1]:
            v -= found_vectors @ (found_vectors.T @ v)
        norm = np.linalg.norm(v)
        if norm <= 1e-300:
            eigenvalues.append(0.0)
            continue
        v /= norm
        prev = np.inf
        for _ in range(max_iterations):
            w = shift * v - np.asarray(matrix @ v, dtype=np.float64).ravel()
            if found_vectors.shape[1]:
                w -= found_vectors @ (found_vectors.T @ w)
            norm = np.linalg.norm(w)
            if norm <= 1e-300:
                break
            w /= norm
            rayleigh = float(w @ np.asarray(matrix @ w).ravel())
            if abs(rayleigh - prev) <= tolerance * max(1.0, abs(rayleigh)):
                v = w
                break
            prev = rayleigh
            v = w
        eigenvalues.append(float(v @ np.asarray(matrix @ v).ravel()))
        found_vectors = np.column_stack([found_vectors, v])

    return np.sort(np.asarray(eigenvalues))
