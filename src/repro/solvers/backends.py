"""Pluggable spectral backends: protocol, registry, and implementations.

:mod:`repro.solvers.backend` used to be a single dispatch function; this
module turns the solver layer into first-class objects so that backends can

* be **registered** under an id (``dense``, ``sparse``, ``lanczos``,
  ``power``, ``lobpcg``) and constructed from
  :class:`~repro.solvers.backend.EigenSolverOptions`,
* carry **state across solves** — iterative backends accept an initial
  subspace, and :class:`WarmStartContext` threads the Ritz vectors of one
  solve into the next solve of the same *lineage* (e.g. consecutive FFT
  family levels, whose low-frequency eigenvectors are close after embedding),
* run in **mixed precision** — ``EigenSolverOptions.dtype`` selects the
  arithmetic (``float64`` exact-ish, ``float32`` roughly twice the matvec
  throughput); results are always returned as float64 so downstream bound
  code is unchanged, and caches key on the dtype so variants coexist.

The legacy entry point :func:`repro.solvers.backend.smallest_eigenvalues`
is now a thin wrapper over :func:`solve_smallest` below.
"""

from __future__ import annotations

import os
import threading
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.linalg import LinAlgWarning

from repro.obs.metrics import global_registry
from repro.solvers.amg import smoothed_aggregation_preconditioner
from repro.solvers.dense import dense_smallest_eigenvalues
from repro.solvers.lanczos import lanczos_smallest_eigenvalues
from repro.solvers.power_iteration import power_iteration_smallest_eigenvalues

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solvers.backend import EigenSolverOptions

__all__ = [
    "BackendSolveResult",
    "SpectralBackend",
    "WarmStartContext",
    "SOLVER_BACKEND_ENV_VAR",
    "available_backends",
    "create_backend",
    "register_backend",
    "resolve_method",
    "solve_smallest",
    "default_warm_start_context",
]

MatrixLike = Union[np.ndarray, sp.spmatrix, spla.LinearOperator]

_BACKEND_SOLVES = global_registry().counter(
    "repro_backend_solves_total",
    "Backend-level eigensolves by resolved backend id and warm-start use.",
    labelnames=("backend", "warm"),
)

#: Environment escape hatch: when set (and the caller asked for ``auto``),
#: every solve routes to this backend id.  Mirrors ``REPRO_MINCUT_BACKEND``.
SOLVER_BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"

#: Above this size ``auto`` prefers the AMG-preconditioned backend over
#: ARPACK shift-invert: the sparse-LU fill of shift-invert grows
#: superlinearly on expander-ish computation graphs while the AMG V-cycle
#: stays O(m).
AMG_AUTO_CUTOFF = 50_000

#: ``auto`` never routes to ``dense`` above this size, whatever ``k`` — the
#: dense matrix alone would be tens of GB.
DENSE_AUTO_CAP = 50_000

#: Supported floating-point precisions (option value -> numpy dtype).
DTYPES: Dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


@dataclass(frozen=True)
class BackendSolveResult:
    """The outcome of one backend solve.

    Attributes
    ----------
    eigenvalues:
        The ``k`` requested smallest eigenvalues, ascending, float64 (after
        any mixed-precision arithmetic), *not yet* clamped — postprocessing
        is the caller's job (:func:`solve_smallest` does it).
    eigenvectors:
        ``(n, m)`` Ritz vectors when the backend produced them (``m >= k``
        possible with oversampling), else ``None``.  These feed warm starts.
    backend:
        Resolved backend id (``"auto"`` never appears here).
    warm_started:
        True when the solve was seeded from a previous subspace.
    """

    eigenvalues: np.ndarray
    eigenvectors: Optional[np.ndarray]
    backend: str
    warm_started: bool = False


def _is_operator(matrix: MatrixLike) -> bool:
    """True for abstract linear operators (matrix-free), not sparse matrices."""
    return isinstance(matrix, spla.LinearOperator) and not sp.issparse(matrix)


def _cast_matrix(matrix: MatrixLike, dtype: np.dtype) -> MatrixLike:
    """Cast a dense/sparse/operator matrix to the solve dtype."""
    if sp.issparse(matrix):
        return matrix if matrix.dtype == dtype else matrix.astype(dtype)
    if _is_operator(matrix):
        if matrix.dtype == dtype:
            return matrix
        astype = getattr(matrix, "astype", None)
        # Operators without a cast (rare; ours have one) run in their native
        # dtype — results are float64 downstream either way.
        return astype(dtype) if callable(astype) else matrix
    arr = np.asarray(matrix)
    return arr if arr.dtype == dtype else arr.astype(dtype)


def _as_sparse(matrix: MatrixLike) -> sp.spmatrix:
    """A sparse view of ``matrix`` for backends needing explicit entries.

    Matrix-free operators must expose ``tocsr()``
    (:class:`~repro.graphs.laplacian.LaplacianOperator` does, at O(m) cost);
    a fully abstract operator cannot be factorised and is rejected.
    """
    if sp.issparse(matrix):
        return matrix
    if _is_operator(matrix):
        tocsr = getattr(matrix, "tocsr", None)
        if not callable(tocsr):
            raise TypeError(
                f"{type(matrix).__name__} is matrix-free with no tocsr(); "
                f"use a matvec-only backend (lanczos) instead"
            )
        return tocsr()
    return sp.csr_matrix(np.asarray(matrix))


def _densify(matrix: MatrixLike) -> np.ndarray:
    """A dense array view of ``matrix`` (for dense solves/fallbacks)."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense())
    if _is_operator(matrix):
        return np.asarray(_as_sparse(matrix).todense())
    return np.asarray(matrix)


def adapt_subspace(
    previous: Optional[np.ndarray],
    n: int,
    block: int,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """Fit a previous Ritz block to a new block width, same dimension only.

    Column count is adapted (extra directions are random, missing ones are
    dropped) and the result orthonormalised with a whiff of noise so the
    seed is not *exactly* invariant (which stalls LOBPCG's basis expansion).

    Dimension mismatches return ``None`` — i.e. only re-solves of the same
    graph are seeded.  We measured the tempting alternative (prolongating a
    smaller level's vectors into a larger level of the FFT family, by
    zero-padding, index-stretching, or butterfly-structured mapping) and it
    *hurts*: the paper's butterfly eigenvectors live on per-level path
    decompositions whose supports move between levels, so the prolonged
    block overlaps the new eigenspace no better than random while its
    near-invariant directions trigger SciPy LOBPCG's ill-conditioned slow
    path (2-5x slower than a cold solve).  Same-dimension reseeding, by
    contrast, reliably halves the iteration count or better.
    """
    if previous is None or previous.size == 0 or n == 0 or block == 0:
        return None
    prev = np.asarray(previous, dtype=np.float64)
    if prev.ndim != 2 or prev.shape[0] != n:
        return None
    cols = min(prev.shape[1], block)
    seeded = rng.standard_normal((n, block)) * 1e-6
    seeded[:, :cols] += prev[:, :cols]
    # Orthonormalise; a rank-deficient seed falls back to cold start.
    q, r = np.linalg.qr(seeded)
    if not np.all(np.isfinite(q)) or min(q.shape) < block:
        return None
    return q[:, :block]


class WarmStartContext:
    """Carries Ritz vectors between solves of the same graph lineage.

    Keys are ``(lineage, normalized, options)``: two solves share warm-start
    state only when they belong to the same family lineage (the caller's
    string, e.g. ``"fft"``), the same normalisation, and identical solver
    options.  The context is a cheap "second chance" tier: one Ritz block
    per lineage (bounded memory — entries are overwritten by each newer
    solve), surviving after the far bigger spectrum caches have evicted an
    entry.  Re-solving a graph whose block is still here converges in a
    fraction of the cold iteration count; seeds whose dimension does not
    match the new solve are ignored (see :func:`adapt_subspace` for why
    cross-level prolongation is deliberately not attempted).

    Thread-safe.
    """

    def __init__(self) -> None:
        self._state: Dict[Tuple, np.ndarray] = {}
        self._lock = threading.Lock()
        self._seeded = 0
        self._updates = 0

    @staticmethod
    def key(lineage: str, normalized: bool, options: "EigenSolverOptions") -> Tuple:
        return (str(lineage), bool(normalized), options)

    def get(self, key: Tuple) -> Optional[np.ndarray]:
        with self._lock:
            found = self._state.get(key)
            if found is not None:
                self._seeded += 1
            return found

    def update(self, key: Tuple, eigenvectors: Optional[np.ndarray]) -> None:
        if eigenvectors is None or eigenvectors.size == 0:
            return
        block = np.ascontiguousarray(eigenvectors, dtype=np.float64)
        block.flags.writeable = False
        with self._lock:
            self._state[key] = block
            self._updates += 1

    @property
    def seeds_served(self) -> int:
        """How many solves were seeded from this context."""
        return self._seeded

    def __len__(self) -> int:
        return len(self._state)

    def clear(self) -> None:
        with self._lock:
            self._state.clear()


_DEFAULT_WARM_CONTEXT = WarmStartContext()


def default_warm_start_context() -> WarmStartContext:
    """Process-wide warm-start context (per pool worker when forked)."""
    return _DEFAULT_WARM_CONTEXT


# ----------------------------------------------------------------------
# protocol + registry
# ----------------------------------------------------------------------
class SpectralBackend(ABC):
    """One way of computing the ``k`` smallest eigenvalues of a PSD matrix.

    Backends are constructed from an :class:`EigenSolverOptions` and may hold
    per-instance state.  ``supports_warm_start`` advertises whether
    ``initial_subspace`` is honoured by :meth:`solve`.
    """

    #: Registry id; subclasses must override.
    id: str = ""
    #: Whether :meth:`solve` can use an initial subspace.
    supports_warm_start: bool = False

    def __init__(self, options: "EigenSolverOptions") -> None:
        self.options = options

    @property
    def dtype(self) -> np.dtype:
        return DTYPES[self.options.dtype]

    @abstractmethod
    def solve(
        self,
        matrix: MatrixLike,
        k: int,
        initial_subspace: Optional[np.ndarray] = None,
    ) -> BackendSolveResult:
        """Return the ``k`` smallest eigenvalues (ascending, float64)."""


_REGISTRY: Dict[str, Callable[["EigenSolverOptions"], SpectralBackend]] = {}


def register_backend(cls):
    """Class decorator registering a :class:`SpectralBackend` under its id."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} must define a non-empty id")
    _REGISTRY[cls.id] = cls
    return cls


def available_backends() -> Tuple[str, ...]:
    """Registered backend ids, sorted (``auto`` is a dispatch, not a backend)."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, options: "EigenSolverOptions") -> SpectralBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown spectral backend {name!r}; registered: {available_backends()}"
        )
    return factory(options)


def resolve_method(method: str, n: int, k: int, options: "EigenSolverOptions") -> str:
    """Map ``"auto"`` to a concrete backend id.

    Resolution order: an explicit ``method`` always wins; then the
    ``REPRO_SOLVER_BACKEND`` environment variable (validated against the
    registry) overrides the size heuristic; then the heuristic picks
    ``dense`` for small problems (n below ``options.dense_cutoff``, or
    near-full spectra of moderate size), ``sparse`` (ARPACK shift-invert) up
    to :data:`AMG_AUTO_CUTOFF`, and ``amg`` beyond — ``auto`` never densifies
    above :data:`DENSE_AUTO_CAP`.
    """
    if method != "auto":
        return method
    forced = os.environ.get(SOLVER_BACKEND_ENV_VAR, "").strip()
    if forced:
        if forced not in _REGISTRY:
            raise ValueError(
                f"{SOLVER_BACKEND_ENV_VAR}={forced!r} is not a registered "
                f"spectral backend; known: {available_backends()}"
            )
        return forced
    if n <= options.dense_cutoff or (k >= n - 1 and n <= DENSE_AUTO_CAP):
        return "dense"
    return "sparse" if n <= AMG_AUTO_CUTOFF else "amg"


# ----------------------------------------------------------------------
# implementations
# ----------------------------------------------------------------------
@register_backend
class DenseBackend(SpectralBackend):
    """Exact LAPACK solve — the reference backend, ``O(n^3)``."""

    id = "dense"

    def solve(self, matrix, k, initial_subspace=None):
        mat = _cast_matrix(_densify(matrix), self.dtype)
        values = dense_smallest_eigenvalues(mat, k)
        return BackendSolveResult(np.asarray(values, dtype=np.float64), None, self.id)


@register_backend
class SparseBackend(SpectralBackend):
    """ARPACK shift-invert with a robust fallback chain.

    Shift-invert around a small negative shift is fast and accurate for PSD
    Laplacians (``L + eps I`` is positive definite); plain ``which='SA'`` is
    the fallback, and the dense solver the last resort for moderate sizes.
    ARPACK is double-precision internally, so ``dtype`` only affects the
    input matrix (and therefore the matvec accuracy), not the iteration.
    """

    id = "sparse"

    def solve(self, matrix, k, initial_subspace=None):
        n = matrix.shape[0]
        options = self.options
        if k >= n - 1 or n <= 2:
            values = dense_smallest_eigenvalues(
                _cast_matrix(_densify(matrix), self.dtype), k
            )
            return BackendSolveResult(np.asarray(values, dtype=np.float64), None, self.id)
        mat = _cast_matrix(_as_sparse(matrix).tocsc(), self.dtype)
        # Graph Laplacians of symmetric graphs have heavily clustered
        # spectra; a generous Lanczos basis (ncv) is needed for ARPACK to
        # resolve whole clusters instead of returning a too-large value from
        # the middle of one.
        ncv = min(n - 1, max(4 * k + 1, 120))
        try:
            values = spla.eigsh(
                mat,
                k=k,
                sigma=-1e-6,
                which="LM",
                return_eigenvectors=False,
                tol=options.tolerance,
                ncv=ncv,
            )
            return BackendSolveResult(np.asarray(values, dtype=np.float64), None, self.id)
        except Exception:  # pragma: no cover - exercised only on ARPACK failures
            pass
        try:
            values = spla.eigsh(
                mat,
                k=k,
                which="SA",
                return_eigenvectors=False,
                tol=max(options.tolerance, 1e-6),
                maxiter=options.max_iterations or n * 20,
                ncv=ncv,
            )
            return BackendSolveResult(np.asarray(values, dtype=np.float64), None, self.id)
        except Exception:  # pragma: no cover
            if n <= 5000:
                values = dense_smallest_eigenvalues(mat, k)
                return BackendSolveResult(
                    np.asarray(values, dtype=np.float64), None, self.id
                )
            raise


@register_backend
class LanczosBackend(SpectralBackend):
    """In-package Lanczos with full reorthogonalisation.

    Warm start: the previous lineage level's leading Ritz vector (embedded
    into the new dimension) replaces the random start vector, which shortens
    the Krylov build needed to resolve the low end of the spectrum.
    """

    id = "lanczos"
    supports_warm_start = True

    def solve(self, matrix, k, initial_subspace=None):
        mat = _cast_matrix(matrix, self.dtype)
        n = matrix.shape[0]
        start_vector = None
        warm = False
        if initial_subspace is not None and n > 0:
            rng = np.random.default_rng(self.options.seed)
            adapted = adapt_subspace(initial_subspace, n, 1, rng)
            if adapted is not None:
                start_vector = adapted[:, 0]
                warm = True
        result = lanczos_smallest_eigenvalues(
            mat,
            k,
            max_iterations=self.options.max_iterations,
            tolerance=self.options.tolerance,
            seed=self.options.seed,
            start_vector=start_vector,
        )
        vectors = result.eigenvectors
        return BackendSolveResult(
            np.asarray(result.eigenvalues, dtype=np.float64), vectors, self.id, warm
        )


@register_backend
class PowerBackend(SpectralBackend):
    """Shifted power iteration with deflation — simplest, slowest."""

    id = "power"

    def solve(self, matrix, k, initial_subspace=None):
        # The Gershgorin shift needs explicit entries, so operators are
        # lowered to their sparse form first.
        mat = _as_sparse(matrix) if _is_operator(matrix) else matrix
        mat = _cast_matrix(mat, self.dtype)
        values = power_iteration_smallest_eigenvalues(
            mat,
            k,
            tolerance=self.options.tolerance,
            seed=self.options.seed,
        )
        return BackendSolveResult(np.asarray(values, dtype=np.float64), None, self.id)


@register_backend
class LobpcgBackend(SpectralBackend):
    """Shift-inverted blocked LOBPCG with warm starts.

    Runs ``scipy.sparse.linalg.lobpcg`` on the operator ``(L + sigma I)^{-1}``
    (one sparse LU factorisation, PD because ``L`` is PSD and ``sigma > 0``),
    asking for the *largest* eigenvalues of the inverse — the same spectral
    transformation ARPACK shift-invert uses, but as a blocked iteration whose
    whole ``k + oversample`` subspace can be seeded.  The transform matters:
    plain LOBPCG needs hundreds of iterations on the heavily clustered
    butterfly/hypercube spectra, shift-inverted it converges in ~20 cold and
    in a fraction of that when warm-started from previous Ritz vectors of
    the same lineage.  Small problems (where LOBPCG's requirement
    ``5 * block < n`` fails) fall back to a dense solve whose eigenvectors
    still feed the warm-start chain.
    """

    id = "lobpcg"
    supports_warm_start = True

    #: Extra Ritz directions beyond ``k`` — headroom for clustered spectra.
    oversample = 8
    #: Iteration cap when ``options.max_iterations`` is unset.
    default_iterations = 200
    #: Relative shift: ``sigma = shift_scale * max_diagonal`` (clamped).
    shift_scale = 1e-3
    #: Largest dimension the *failure* path may densify (an n x n float64
    #: array); beyond it a failed sparse solve re-raises instead of OOMing.
    dense_fallback_cap = 5000

    def solve(self, matrix, k, initial_subspace=None):
        n = matrix.shape[0]
        block = min(n, k + self.oversample)
        rng = np.random.default_rng(self.options.seed)
        if n < max(5 * block, 32):
            return self._dense_fallback(matrix, k)
        mat = _cast_matrix(_as_sparse(matrix).tocsc(), self.dtype)
        # Shift keeps L + sigma I comfortably positive definite; scaling by
        # the largest diagonal entry makes it dimensionless (the normalized
        # and unnormalized Laplacians differ by ~max degree).
        sigma = float(max(self.shift_scale * mat.diagonal().max(), 1e-8))
        x = adapt_subspace(initial_subspace, n, block, rng)
        warm = x is not None
        if x is None:
            x = rng.standard_normal((n, block))
        x = np.ascontiguousarray(x, dtype=self.dtype)
        maxiter = self.options.max_iterations or self.default_iterations
        tol = max(self.options.tolerance, 1e-6 if self.options.dtype == "float32" else 0.0)
        try:
            lu = spla.splu(mat + sigma * sp.identity(n, dtype=mat.dtype, format="csc"))
            operator = spla.LinearOperator(
                (n, n),
                matvec=lu.solve,
                matmat=lambda V: lu.solve(np.ascontiguousarray(V)),
                dtype=mat.dtype,
            )
            with warnings.catch_warnings():
                # LOBPCG warns when it stops short of the requested tolerance;
                # the achieved residuals are recorded in the result, and the
                # parity tests bound the actual accuracy — the warning is
                # noise at our tolerances.
                warnings.simplefilter("ignore", UserWarning)
                warnings.simplefilter("ignore", LinAlgWarning)
                inverse_values, vectors = spla.lobpcg(
                    operator, x, largest=True, tol=tol or None, maxiter=maxiter
                )
        except Exception:
            if n > self.dense_fallback_cap:
                raise
            return self._dense_fallback(matrix, k)
        if not np.all(np.isfinite(inverse_values)) or np.any(inverse_values == 0.0):
            if n > self.dense_fallback_cap:
                raise RuntimeError(
                    f"lobpcg produced a degenerate spectrum for n={n} and the "
                    f"matrix is too large to densify; retry with method='sparse'"
                )
            return self._dense_fallback(matrix, k)
        values = 1.0 / np.asarray(inverse_values, dtype=np.float64) - sigma
        order = np.argsort(values)
        values = values[order]
        vectors = np.asarray(vectors, dtype=np.float64)[:, order]
        return BackendSolveResult(values[:k], vectors, self.id, warm)

    def _dense_fallback(self, matrix: MatrixLike, k: int) -> BackendSolveResult:
        dense = np.asarray(_cast_matrix(_densify(matrix), self.dtype), dtype=np.float64)
        values, vectors = np.linalg.eigh(dense)
        return BackendSolveResult(values[:k], vectors[:, : max(k, 1)], self.id)


@register_backend
class AmgBackend(LobpcgBackend):
    """LOBPCG preconditioned by an algebraic-multigrid V-cycle.

    The paper-scale backend: where :class:`LobpcgBackend` pays one sparse LU
    factorisation of ``L + sigma I`` (whose fill grows superlinearly on
    expander-ish computation graphs — at n ~ 100k the factor dwarfs the
    matrix), this backend builds a smoothed-aggregation hierarchy
    (:mod:`repro.solvers.amg`, or ``pyamg`` when installed) in O(m) memory
    and runs *un*-transformed LOBPCG on ``A = L + sigma I`` with the V-cycle
    as the preconditioner ``M ~= A^{-1}``.  Per iteration that is a handful
    of SpMVs instead of triangular solves against a dense-ish factor, and
    setup is linear — the combination is what unlocks n >> 50k on one core.

    Matrix-free inputs (:func:`repro.graphs.laplacian.laplacian_operator`)
    are used directly for the LOBPCG matvecs (preserving any row-block
    sharding); explicit entries are materialised only for the hierarchy
    setup, which needs them.

    Warm starts work exactly as for :class:`LobpcgBackend`: the whole
    ``k + oversample`` block is reseeded from the lineage's previous Ritz
    vectors.  Small problems (LOBPCG needs ``5 * block < n``) fall back to a
    dense solve whose eigenvectors still feed the warm-start chain.
    """

    id = "amg"
    supports_warm_start = True

    #: Iteration cap when ``options.max_iterations`` is unset; preconditioned
    #: LOBPCG converges in a few dozen iterations on Laplacian spectra.
    default_iterations = 300

    def solve(self, matrix, k, initial_subspace=None):
        n = matrix.shape[0]
        block = min(n, k + self.oversample)
        rng = np.random.default_rng(self.options.seed)
        if n < max(5 * block, 32):
            return self._dense_fallback(matrix, k)
        csr = _cast_matrix(_as_sparse(matrix).tocsr(), self.dtype)
        sigma = float(max(self.shift_scale * csr.diagonal().max(), 1e-8))
        shifted = (csr + sigma * sp.identity(n, dtype=csr.dtype, format="csr")).tocsr()
        x = adapt_subspace(initial_subspace, n, block, rng)
        warm = x is not None
        if x is None:
            x = rng.standard_normal((n, block))
        x = np.ascontiguousarray(x, dtype=self.dtype)
        maxiter = self.options.max_iterations or self.default_iterations
        tol = max(self.options.tolerance, 1e-6 if self.options.dtype == "float32" else 0.0)
        try:
            preconditioner = smoothed_aggregation_preconditioner(
                shifted, seed=self.options.seed
            )
            if _is_operator(matrix):
                # Keep the caller's matrix-free application (row-block
                # sharding and all); only the +sigma shift is added here.
                base = _cast_matrix(matrix, self.dtype)
                operator = spla.LinearOperator(
                    (n, n),
                    matvec=lambda v: base @ v + sigma * v,
                    matmat=lambda V: base @ V + sigma * V,
                    dtype=shifted.dtype,
                )
            else:
                operator = shifted
            with warnings.catch_warnings():
                # Same rationale as LobpcgBackend: the convergence warning is
                # noise at our tolerances; parity tests bound the accuracy.
                warnings.simplefilter("ignore", UserWarning)
                warnings.simplefilter("ignore", LinAlgWarning)
                values, vectors = spla.lobpcg(
                    operator,
                    x,
                    M=preconditioner,
                    largest=False,
                    tol=tol or None,
                    maxiter=maxiter,
                )
        except Exception:
            if n > self.dense_fallback_cap:
                raise
            return self._dense_fallback(matrix, k)
        if not np.all(np.isfinite(values)):
            if n > self.dense_fallback_cap:
                raise RuntimeError(
                    f"amg-preconditioned lobpcg diverged for n={n} and the "
                    f"matrix is too large to densify; retry with method='lanczos'"
                )
            return self._dense_fallback(matrix, k)
        values = np.asarray(values, dtype=np.float64) - sigma
        order = np.argsort(values)
        values = values[order]
        vectors = np.asarray(vectors, dtype=np.float64)[:, order]
        return BackendSolveResult(values[:k], vectors, self.id, warm)


# ----------------------------------------------------------------------
# high-level solve
# ----------------------------------------------------------------------
def solve_smallest(
    matrix: MatrixLike,
    k: int,
    options: "EigenSolverOptions",
    warm_start: Optional[WarmStartContext] = None,
    lineage: Optional[str] = None,
    normalized: bool = True,
) -> BackendSolveResult:
    """Solve through the registry, with optional warm-start threading.

    The returned eigenvalues are postprocessed the way every caller expects:
    ascending, float64, with numerical noise around zero clamped (graph
    Laplacians are PSD, so small negative values are noise).  When both
    ``warm_start`` and ``lineage`` are given and the resolved backend
    supports it, the solve is seeded from the lineage's previous Ritz block
    and the context is updated with this solve's vectors afterwards.
    """
    n = matrix.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > n:
        raise ValueError(f"requested {k} eigenvalues from an n={n} matrix")
    if k == 0:
        # Even the trivial solve reports the *resolved* backend id so records
        # and store entries never show "auto".
        return BackendSolveResult(
            np.zeros(0), None, resolve_method(options.method, n, k, options)
        )

    method = resolve_method(options.method, n, k, options)
    backend = create_backend(method, options)

    seed_block = None
    context_key = None
    if warm_start is not None and lineage is not None and backend.supports_warm_start:
        context_key = WarmStartContext.key(lineage, normalized, options)
        seed_block = warm_start.get(context_key)

    result = backend.solve(matrix, k, initial_subspace=seed_block)

    if context_key is not None:
        warm_start.update(context_key, result.eigenvectors)

    values = np.asarray(result.eigenvalues, dtype=np.float64).copy()
    # float32 arithmetic leaves noise around 1e-7; float64 around 1e-12.
    clamp = 1e-6 if options.dtype == "float32" else 1e-10
    values[np.abs(values) < clamp] = 0.0
    values[values < 0.0] = 0.0
    values = np.sort(values)
    _BACKEND_SOLVES.inc(
        backend=result.backend, warm="yes" if result.warm_started else "no"
    )
    return BackendSolveResult(
        values, result.eigenvectors, result.backend, result.warm_started
    )
