"""Lanczos iteration with full reorthogonalisation.

This is the in-package implementation of the "Lanczos-Arnoldi" solver the
paper refers to for computing the ``h`` smallest Laplacian eigenvalues in
``O(h n^2)`` time.  It is matrix-free (only needs matrix-vector products), so
it accepts dense arrays, SciPy sparse matrices, or ``LinearOperator``-like
objects exposing ``@``.

The implementation keeps the full Krylov basis and reorthogonalises every new
vector against it.  That costs memory ``O(m n)`` for ``m`` iterations but
avoids the ghost-eigenvalue problem of plain Lanczos, which matters here
because graph Laplacians of highly symmetric graphs (hypercubes, butterflies)
have large eigenvalue multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import SeedLike, as_rng

__all__ = ["LanczosResult", "lanczos_tridiagonalize", "lanczos_smallest_eigenvalues"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


@dataclass
class LanczosResult:
    """Outcome of a Lanczos run.

    Attributes
    ----------
    eigenvalues:
        Ritz values approximating the smallest eigenvalues, increasing order.
    iterations:
        Number of Lanczos steps performed.
    converged:
        Whether the requested eigenvalues met the residual tolerance.
    residuals:
        Per-eigenvalue residual estimates ``|beta_m * s_m|`` (last component
        of the Ritz vector scaled by the last off-diagonal).
    eigenvectors:
        ``(n, k)`` Ritz vectors matching ``eigenvalues`` (``None`` for empty
        solves).  Used to warm-start subsequent solves of the same family.
    """

    eigenvalues: np.ndarray
    iterations: int
    converged: bool
    residuals: np.ndarray
    eigenvectors: np.ndarray | None = None


def _matvec(matrix: MatrixLike, x: np.ndarray) -> np.ndarray:
    return np.asarray(matrix @ x, dtype=np.float64).ravel()


def lanczos_tridiagonalize(
    matrix: MatrixLike,
    num_steps: int,
    seed: SeedLike = 0,
    start_vector: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run ``num_steps`` Lanczos steps and return ``(alphas, betas, basis)``.

    ``alphas`` (length m) and ``betas`` (length m-1) define the tridiagonal
    matrix ``T_m``; ``basis`` is the ``n x m`` orthonormal Krylov basis.  The
    iteration stops early if the Krylov space becomes invariant (``beta``
    numerically zero), in which case the returned arrays are shorter.
    ``start_vector`` replaces the random initial vector (warm starts from a
    previous solve's Ritz vector); degenerate vectors fall back to random.
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0), np.zeros(0), np.zeros((0, 0))
    num_steps = min(num_steps, n)
    rng = as_rng(seed)

    q = None
    if start_vector is not None:
        candidate = np.asarray(start_vector, dtype=np.float64).ravel()
        norm = np.linalg.norm(candidate)
        if candidate.shape[0] == n and np.isfinite(norm) and norm > 1e-12:
            q = candidate / norm
    if q is None:
        q = rng.standard_normal(n)
        q /= np.linalg.norm(q)
    basis = np.zeros((n, num_steps), dtype=np.float64)
    alphas = np.zeros(num_steps, dtype=np.float64)
    betas = np.zeros(max(num_steps - 1, 0), dtype=np.float64)

    basis[:, 0] = q
    steps = 0
    for j in range(num_steps):
        w = _matvec(matrix, basis[:, j])
        alpha = float(basis[:, j] @ w)
        alphas[j] = alpha
        w -= alpha * basis[:, j]
        if j > 0:
            w -= betas[j - 1] * basis[:, j - 1]
        # Full reorthogonalisation (twice is enough; "twice is enough" rule).
        for _ in range(2):
            w -= basis[:, : j + 1] @ (basis[:, : j + 1].T @ w)
        beta = float(np.linalg.norm(w))
        steps = j + 1
        if j + 1 < num_steps:
            if beta <= 1e-12 * max(1.0, abs(alpha)):
                # Invariant subspace found; restart with a fresh random vector
                # orthogonal to the current basis to capture more of the
                # spectrum (important for graphs with many components).
                v = rng.standard_normal(n)
                v -= basis[:, : j + 1] @ (basis[:, : j + 1].T @ v)
                norm = np.linalg.norm(v)
                if norm <= 1e-12:
                    break
                betas[j] = 0.0
                basis[:, j + 1] = v / norm
            else:
                betas[j] = beta
                basis[:, j + 1] = w / beta
    return alphas[:steps], betas[: max(steps - 1, 0)], basis[:, :steps]


def lanczos_smallest_eigenvalues(
    matrix: MatrixLike,
    k: int,
    max_iterations: int | None = None,
    tolerance: float = 1e-8,
    seed: SeedLike = 0,
    start_vector: np.ndarray | None = None,
) -> LanczosResult:
    """Approximate the ``k`` smallest eigenvalues of a symmetric matrix.

    Parameters
    ----------
    matrix:
        Symmetric (positive semi-definite in our use) matrix or sparse matrix.
    k:
        Number of smallest eigenvalues requested; must satisfy ``k <= n``.
    max_iterations:
        Size of the Krylov space.  Defaults to ``min(n, max(4k + 40, 80))``,
        which in practice resolves Laplacian spectra with large multiplicities.
    tolerance:
        Residual tolerance used for the convergence flag (the eigenvalues are
        returned either way).
    seed:
        Seed of the random start vector (fixed by default for
        reproducibility).
    start_vector:
        Optional warm-start vector replacing the random initial vector.
    """
    n = matrix.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > n:
        raise ValueError(f"requested {k} eigenvalues from an n={n} matrix")
    if k == 0 or n == 0:
        return LanczosResult(np.zeros(0), 0, True, np.zeros(0))

    if max_iterations is None:
        max_iterations = min(n, max(4 * k + 40, 80))
    max_iterations = max(max_iterations, k)

    alphas, betas, basis = lanczos_tridiagonalize(
        matrix, max_iterations, seed=seed, start_vector=start_vector
    )
    m = alphas.shape[0]
    if m == 0:
        return LanczosResult(np.zeros(0), 0, False, np.full(k, np.inf))

    tri = np.diag(alphas)
    if m > 1:
        tri += np.diag(betas, 1) + np.diag(betas, -1)
    ritz_values, ritz_vectors = np.linalg.eigh(tri)

    take = min(k, m)
    eigenvalues = ritz_values[:take]
    eigenvectors = basis @ ritz_vectors[:, :take]
    last_beta = betas[-1] if m > 1 else 0.0
    residuals = np.abs(last_beta * ritz_vectors[-1, :take])
    converged = bool(m >= k and np.all(residuals <= tolerance * max(1.0, np.abs(ritz_values).max())))

    if take < k:
        # Not enough Krylov directions (tiny matrices): pad with the largest
        # available Ritz value so callers still receive k entries, flagged as
        # unconverged.
        pad = np.full(k - take, ritz_values[-1])
        eigenvalues = np.concatenate([eigenvalues, pad])
        residuals = np.concatenate([residuals, np.full(k - take, np.inf)])
        converged = False

    return LanczosResult(
        np.asarray(eigenvalues), m, converged, np.asarray(residuals), eigenvectors
    )
