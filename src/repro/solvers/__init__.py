"""Eigenvalue solvers for graph Laplacians.

The spectral bound of Theorem 4 needs the ``h`` smallest eigenvalues of a
symmetric positive semi-definite Laplacian.  The paper notes the bound "is not
only efficiently computable by power iteration" and costs ``O(h n^2)`` with
Lanczos-Arnoldi; this subpackage therefore provides

* :mod:`backends` — the :class:`SpectralBackend` protocol and registry
  (``dense``, ``sparse``, ``lanczos``, ``power``, ``lobpcg``, ``amg``), plus
  :class:`WarmStartContext` for seeding consecutive family solves with the
  previous level's Ritz vectors,
* :mod:`amg` — a pure-SciPy smoothed-aggregation multigrid V-cycle (the
  ``amg`` backend's preconditioner when ``pyamg`` is not installed),
* :mod:`coarsen` — interlacing-certified spectral coarsening: eigenvalue
  *intervals* from a principal-submatrix solve at a fraction of the cost,
* :mod:`backend` — :class:`EigenSolverOptions` (method/dtype/tolerance, the
  hashable object all cache tiers key on) and the legacy entry point
  :func:`smallest_eigenvalues`,
* :mod:`dense` — exact dense spectra via LAPACK (``numpy.linalg.eigvalsh``),
* :mod:`lanczos` — an in-package Lanczos iteration with full
  reorthogonalisation (matrix-free, works with dense and sparse operators),
* :mod:`power_iteration` — shifted power iteration with deflation (the
  slowest option, included because it is the simplest building block the
  paper's efficiency claim refers to),
* :mod:`spectrum_cache` — an LRU cache of eigensolves keyed by the graph's
  structural fingerprint, shared by all bound computations so repeated
  bounds on the same graph solve once.

Deprecated package-level imports: ``lanczos_smallest_eigenvalues`` and
``power_iteration_smallest_eigenvalues`` remain importable from this package
for backwards compatibility but emit :class:`DeprecationWarning` — import
them from their defining modules, or go through the backend registry.
"""

import warnings

from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues
from repro.solvers.backends import (
    SOLVER_BACKEND_ENV_VAR,
    BackendSolveResult,
    SpectralBackend,
    WarmStartContext,
    available_backends,
    create_backend,
    default_warm_start_context,
    register_backend,
    resolve_method,
    solve_smallest,
)
from repro.solvers.coarsen import (
    IntervalSpectrum,
    certified_interval_spectrum,
    coarse_variant,
)
from repro.solvers.dense import dense_spectrum, dense_smallest_eigenvalues
from repro.solvers.power_iteration import power_iteration_largest_eigenvalue
from repro.solvers.spectrum_cache import (
    CachedIntervalSpectrum,
    CachedSpectrum,
    SpectrumCache,
    default_spectrum_cache,
)

__all__ = [
    "smallest_eigenvalues",
    "solve_smallest",
    "resolve_method",
    "EigenSolverOptions",
    "BackendSolveResult",
    "SpectralBackend",
    "WarmStartContext",
    "SOLVER_BACKEND_ENV_VAR",
    "available_backends",
    "create_backend",
    "register_backend",
    "default_warm_start_context",
    "IntervalSpectrum",
    "certified_interval_spectrum",
    "coarse_variant",
    "CachedSpectrum",
    "CachedIntervalSpectrum",
    "SpectrumCache",
    "default_spectrum_cache",
    "dense_spectrum",
    "dense_smallest_eigenvalues",
    "lanczos_smallest_eigenvalues",
    "power_iteration_largest_eigenvalue",
    "power_iteration_smallest_eigenvalues",
]

#: Deprecated package-level names -> (module, attribute, replacement hint).
_DEPRECATED = {
    "lanczos_smallest_eigenvalues": (
        "repro.solvers.lanczos",
        "lanczos_smallest_eigenvalues",
        "repro.solvers.lanczos.lanczos_smallest_eigenvalues or the 'lanczos' backend",
    ),
    "power_iteration_smallest_eigenvalues": (
        "repro.solvers.power_iteration",
        "power_iteration_smallest_eigenvalues",
        "repro.solvers.power_iteration.power_iteration_smallest_eigenvalues or "
        "the 'power' backend",
    ),
}


def __getattr__(name: str):
    """Lazy deprecation shims for direct solver-function imports."""
    if name in _DEPRECATED:
        module_name, attribute, hint = _DEPRECATED[name]
        warnings.warn(
            f"importing {name} from repro.solvers is deprecated; use {hint}",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
