"""Eigenvalue solvers for graph Laplacians.

The spectral bound of Theorem 4 needs the ``h`` smallest eigenvalues of a
symmetric positive semi-definite Laplacian.  The paper notes the bound "is not
only efficiently computable by power iteration" and costs ``O(h n^2)`` with
Lanczos-Arnoldi; this subpackage therefore provides

* :mod:`dense` — exact dense spectra via LAPACK (``numpy.linalg.eigvalsh``),
* :mod:`lanczos` — an in-package Lanczos iteration with full
  reorthogonalisation (matrix-free, works with dense and sparse operators),
* :mod:`power_iteration` — shifted power iteration with deflation (the
  slowest option, included because it is the simplest building block the
  paper's efficiency claim refers to),
* :mod:`backend` — a single entry point,
  :func:`repro.solvers.backend.smallest_eigenvalues`, that picks a backend
  automatically and cross-checks are exercised in the tests.
* :mod:`spectrum_cache` — an LRU cache of eigensolves keyed by the graph's
  structural fingerprint, shared by all bound computations so repeated
  bounds on the same graph solve once.
"""

from repro.solvers.backend import smallest_eigenvalues, EigenSolverOptions
from repro.solvers.dense import dense_spectrum, dense_smallest_eigenvalues
from repro.solvers.lanczos import lanczos_smallest_eigenvalues
from repro.solvers.power_iteration import (
    power_iteration_largest_eigenvalue,
    power_iteration_smallest_eigenvalues,
)
from repro.solvers.spectrum_cache import (
    CachedSpectrum,
    SpectrumCache,
    default_spectrum_cache,
)

__all__ = [
    "smallest_eigenvalues",
    "EigenSolverOptions",
    "CachedSpectrum",
    "SpectrumCache",
    "default_spectrum_cache",
    "dense_spectrum",
    "dense_smallest_eigenvalues",
    "lanczos_smallest_eigenvalues",
    "power_iteration_largest_eigenvalue",
    "power_iteration_smallest_eigenvalues",
]
