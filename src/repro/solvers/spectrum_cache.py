"""Shared cache of Laplacian spectra keyed by graph structure.

Every spectral bound (Theorems 4, 5, 6) consumes the same quantity: the ``h``
smallest eigenvalues of a graph's (normalised or ordinary) Laplacian.  The
eigensolve dominates the cost of a bound by orders of magnitude, yet it
depends only on the graph structure, the normalisation, and the solver
configuration — not on the memory size ``M``, the number of processors ``p``,
or the ``k`` sweep.  :class:`SpectrumCache` therefore memoises eigensolves
under the key ``(fingerprint, normalized, h, sparse assembly, solver
options)``, where ``fingerprint`` is the structural hash from
:meth:`repro.graphs.compgraph.ComputationGraph.fingerprint`.

Properties:

* **LRU budget** — the cache holds at most ``max_entries`` spectra (each is a
  tiny float vector, but fingerprinted graphs can be numerous in a sweep).
* **Prefix serving** — a request for ``h`` eigenvalues is served from any
  cached entry with the same graph/normalisation/options and ``h' >= h`` by
  slicing (eigenvalues are ascending), so shrinking the truncation never
  re-solves.
* **Counters** — ``hits`` / ``misses`` are exposed; every miss corresponds to
  exactly one eigensolve, which is what the engine tests assert.
* **Unnormalised scaling included** — for ``normalized=False`` the cache
  stores ``lambda(L) / max_out_degree`` (the Theorem 5 quantity), so callers
  always receive eigenvalues ready to plug into the bound formula.
* **Optional persistent tier** — a cache constructed with a
  :class:`~repro.runtime.store.SpectrumStore` checks the on-disk archive
  before eigensolving and publishes every fresh solve back to it, so the
  "at most one eigensolve" guarantee extends across processes and runs.
  Disk hits count as ``hits`` (no eigensolve happened) and are additionally
  tallied in ``store_hits``; ``misses`` keeps meaning "eigensolves
  performed".
* **Cross-process solve coalescing** — when the store's solve leases are
  enabled (``lease_ttl > 0``, the default), a cold miss first tries to
  become the *lease leader* for that spectrum; losers block on the lease
  and then read the published spectrum from the store, so concurrent cold
  misses across worker processes (and across different ``M``/truncations,
  which share one spectrum) pay exactly one eigensolve.  A follower whose
  wait times out — or whose leader died — falls back to solving itself:
  wasteful, never wrong.  Episodes are counted in ``lease_leaders`` /
  ``lease_followers`` and the ``repro_lease_total{role=...}`` metric, with
  follower wait time in the ``repro_lease_wait_seconds`` histogram.

The module-level :func:`default_spectrum_cache` is shared by all
:class:`~repro.core.engine.BoundEngine` instances that are not given an
explicit cache, so repeated bound computations on the same graph anywhere in
a process reuse eigensolves.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.store import SpectrumStore

from repro import obs
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.laplacian import laplacian, laplacian_operator
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.backends import WarmStartContext, solve_smallest
from repro.solvers.coarsen import (
    DEFAULT_COARSEN_RATIO,
    certified_interval_spectrum,
    coarse_plan,
    coarse_variant,
)

__all__ = [
    "CachedSpectrum",
    "CachedIntervalSpectrum",
    "SpectrumCache",
    "default_spectrum_cache",
]

#: Graphs larger than this default to sparse Laplacian assembly (mirrors the
#: heuristic the bound functions have always used).
SPARSE_CUTOFF = 2000

_EIG_SECONDS = obs.global_registry().histogram(
    "repro_eigensolve_seconds",
    "Wall-clock latency of real eigensolves (cache misses only).",
    labelnames=("backend", "dtype"),
)
_SPECTRUM_LOOKUPS = obs.global_registry().counter(
    "repro_spectrum_lookups_total",
    "Spectrum fetches by serving tier (memory/store hit vs fresh solve).",
    labelnames=("tier",),
)
_LEASE_TOTAL = obs.global_registry().counter(
    "repro_lease_total",
    "Cross-process solve-lease episodes: leaders solved, followers waited.",
    labelnames=("role",),
)
_LEASE_WAIT_SECONDS = obs.global_registry().histogram(
    "repro_lease_wait_seconds",
    "Time followers spent blocked on another process's solve lease.",
)

#: How many acquire→wait→re-read rounds a cold miss plays before giving up
#: on coalescing and solving redundantly.  Each round only recurs when a
#: leader died or raced away, so 4 bounds pathological churn, not latency.
_LEASE_MAX_ROUNDS = 4


@dataclass(frozen=True)
class CachedSpectrum:
    """One spectrum lookup result.

    Attributes
    ----------
    eigenvalues:
        The requested smallest eigenvalues, ascending, read-only.  For
        ``normalized=False`` they are already divided by the maximum
        out-degree (the Theorem 5 scaling).
    solve_seconds:
        Wall-clock cost of the eigensolve that produced the underlying cache
        entry.  On a cache hit this is the cost of the *original* solve, not
        of this lookup — it attributes the eigensolve cost without repeating
        it per lookup.
    cache_hit:
        True when the spectrum was served from the cache.
    backend:
        Resolved backend id that produced the underlying solve (``"unknown"``
        for entries predating backend tracking, e.g. old store blobs).
    dtype:
        Arithmetic precision of the solve (``"float64"``/``"float32"``).
    """

    eigenvalues: np.ndarray
    solve_seconds: float
    cache_hit: bool
    backend: str = "unknown"
    dtype: str = "float64"


@dataclass(frozen=True)
class CachedIntervalSpectrum:
    """One certified-interval spectrum lookup result.

    ``lower[i] <= lambda_i <= upper[i]`` for the exact fine eigenvalues, by
    Cauchy interlacing (:mod:`repro.solvers.coarsen`).  Both arrays carry
    the Theorem 5 ``/max_out_degree`` scaling when ``normalized=False`` was
    requested, exactly like :class:`CachedSpectrum`.  ``exact`` is True when
    the graph was too small to coarsen and the "intervals" are points.
    """

    lower: np.ndarray
    upper: np.ndarray
    solve_seconds: float
    cache_hit: bool
    backend: str = "unknown"
    dtype: str = "float64"
    num_coarse: int = 0
    num_vertices: int = 0
    exact: bool = False


class SpectrumCache:
    """LRU cache of smallest-eigenvalue computations for graph Laplacians.

    Parameters
    ----------
    max_entries:
        Size budget: least-recently-used entries are evicted beyond this
        count.
    store:
        Optional :class:`~repro.runtime.store.SpectrumStore` used as a
        second, persistent tier: memory misses check the store before
        eigensolving, and fresh solves are published back to it.
    warm_start:
        Optional :class:`~repro.solvers.backends.WarmStartContext` shared
        with other caches; by default every cache owns a private context, so
        lineage-tagged solves through the same cache warm-start each other.
    """

    def __init__(
        self,
        max_entries: int = 128,
        store: "Optional[SpectrumStore]" = None,
        warm_start: Optional[WarmStartContext] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = int(max_entries)
        self._store = store
        self._warm_start = warm_start if warm_start is not None else WarmStartContext()
        self._entries: "OrderedDict[Tuple, Tuple[np.ndarray, float, str]]" = OrderedDict()
        # Interval (coarsened) spectra live in their own LRU map: their keys
        # carry a variant tag and their values two arrays, and they must
        # never be served where an exact spectrum was requested.
        self._interval_entries: "OrderedDict[Tuple, Tuple[np.ndarray, np.ndarray, float, str]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._store_hits = 0
        self._lease_leaders = 0
        self._lease_followers = 0

    # ------------------------------------------------------------------
    # stats / management
    # ------------------------------------------------------------------
    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hits(self) -> int:
        """Number of lookups served without an eigensolve."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that required an eigensolve."""
        return self._misses

    @property
    def num_eigensolves(self) -> int:
        """Alias for :attr:`misses`: each miss performs exactly one solve."""
        return self._misses

    @property
    def store_hits(self) -> int:
        """Lookups served from the persistent store tier (subset of hits)."""
        return self._store_hits

    @property
    def lease_leaders(self) -> int:
        """Cold misses this cache won a cross-process solve lease for."""
        return self._lease_leaders

    @property
    def lease_followers(self) -> int:
        """Cold misses this cache waited out another process's lease for."""
        return self._lease_followers

    @property
    def store(self) -> "Optional[SpectrumStore]":
        """The persistent second tier, if configured."""
        return self._store

    @property
    def warm_start(self) -> WarmStartContext:
        """The warm-start context threaded into lineage-tagged solves."""
        return self._warm_start

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._interval_entries.clear()
            self._hits = 0
            self._misses = 0
            self._store_hits = 0
            self._lease_leaders = 0
            self._lease_followers = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def spectrum(
        self,
        graph: ComputationGraph,
        num_eigenvalues: int,
        normalized: bool = True,
        eig_options: Optional[EigenSolverOptions] = None,
        sparse: Optional[bool] = None,
        lineage: Optional[str] = None,
    ) -> CachedSpectrum:
        """The ``num_eigenvalues`` smallest Laplacian eigenvalues of ``graph``.

        Serves from the cache when possible (exact key, or a prefix of a
        larger cached spectrum); otherwise assembles the Laplacian, solves,
        stores and returns.  ``normalized=False`` returns the Theorem 5
        quantity ``lambda(L) / max_out_degree``.  ``lineage`` tags the solve
        with a family identity (e.g. ``"fft"``) so warm-start-capable
        backends can seed from the previous solve of the same lineage; it is
        *not* part of the cache key (identical graphs share spectra whatever
        lineage asked first).
        """
        n = graph.num_vertices
        h = int(num_eigenvalues)
        if h < 0:
            raise ValueError(f"num_eigenvalues must be non-negative, got {h}")
        if h > n:
            raise ValueError(f"requested {h} eigenvalues from an n={n} graph")
        if n == 0 or h == 0:
            return CachedSpectrum(np.zeros(0), 0.0, True)
        options = eig_options or EigenSolverOptions()
        dtype = options.dtype
        # Resolve the sparse/dense assembly choice *before* keying: the two
        # paths can use different solver backends (dense LAPACK vs ARPACK),
        # so their spectra must never be served interchangeably.  Keying on
        # the resolved flag also lets sparse=None share entries with an
        # explicit request that resolves the same way.
        use_sparse = sparse if sparse is not None else n > SPARSE_CUTOFF
        base_key = (graph.fingerprint(), bool(normalized), bool(use_sparse), options)
        key = base_key + (h,)

        with self._lock:
            found = self._entries.get(key)
            if found is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                _SPECTRUM_LOOKUPS.inc(tier="memory")
                return CachedSpectrum(found[0], found[1], True, found[2], dtype)
            # Prefix serving: any cached spectrum of the same graph /
            # normalisation / assembly / options with h' >= h contains the
            # answer.
            for other_key, (values, solve_seconds, backend) in self._entries.items():
                if other_key[:4] == base_key and other_key[4] >= h:
                    self._entries.move_to_end(other_key)
                    self._hits += 1
                    _SPECTRUM_LOOKUPS.inc(tier="memory")
                    prefix = values[:h]
                    prefix.flags.writeable = False
                    return CachedSpectrum(prefix, solve_seconds, True, backend, dtype)

        # Second tier: the persistent store may hold this spectrum (or a
        # longer one) from an earlier run or another process.  Checked
        # outside the lock — it is disk I/O.  A broken store (unreadable
        # mount, permission error on the lock file) degrades to a cold
        # solve, mirroring the write path below.  A genuine store miss then
        # contends for the cross-process solve lease: leaders solve below
        # (and release in the ``finally``), followers come back with the
        # spectrum the leader published.
        lease = None
        if self._store is not None:
            stored = self._fetch_stored(
                base_key[0], h, normalized, use_sparse, options, "exact"
            )
            if stored is None:
                stored, lease = self._claim_solve(
                    base_key[0], h, normalized, use_sparse, options, "exact"
                )
            if stored is not None:
                stored_key = base_key + (stored.num_eigenvalues,)
                with self._lock:
                    # Promote the full stored vector into the memory tier so
                    # follow-up lookups (including smaller h) stay in memory.
                    if stored_key not in self._entries:
                        self._entries[stored_key] = (
                            stored.eigenvalues,
                            stored.solve_seconds,
                            stored.backend,
                        )
                    self._entries.move_to_end(stored_key)
                    while len(self._entries) > self._max_entries:
                        self._entries.popitem(last=False)
                    self._hits += 1
                    self._store_hits += 1
                _SPECTRUM_LOOKUPS.inc(tier="store")
                prefix = stored.eigenvalues[:h]
                prefix.flags.writeable = False
                return CachedSpectrum(prefix, stored.solve_seconds, True, stored.backend, dtype)

        # Solve outside the lock: concurrent misses on the same key may solve
        # twice, which is wasteful but never wrong (results are identical for
        # deterministic backends).
        try:
            values, solve_seconds, backend = self._solve(
                graph, h, normalized, options, use_sparse, lineage
            )
            if self._store is not None:
                try:
                    self._store.put(
                        base_key[0],
                        values,
                        solve_seconds,
                        normalized=bool(normalized),
                        sparse=bool(use_sparse),
                        eig_options=options,
                        backend=backend,
                        lineage=lineage,
                    )
                except OSError:
                    pass  # a full/read-only disk must not break the computation
        finally:
            # Publish-then-release ordering: followers re-read the store the
            # moment the lease file disappears, so the entry must be there.
            if lease is not None:
                lease.release()
        with self._lock:
            self._entries[key] = (values, solve_seconds, backend)
            self._entries.move_to_end(key)
            self._misses += 1
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
        _SPECTRUM_LOOKUPS.inc(tier="solve")
        return CachedSpectrum(values, solve_seconds, False, backend, dtype)

    def _solve(
        self,
        graph: ComputationGraph,
        h: int,
        normalized: bool,
        options: EigenSolverOptions,
        use_sparse: bool,
        lineage: Optional[str],
    ) -> Tuple[np.ndarray, float, str]:
        with obs.span(
            "eigensolve",
            fingerprint=graph.fingerprint() if obs.enabled() else None,
            h=h,
            dtype=options.dtype,
        ) as active:
            start = time.perf_counter()
            # Sparse assembly hands backends the matrix-free LaplacianOperator:
            # matvec-only backends (lanczos, amg's LOBPCG loop) never see an
            # explicit Laplacian, and those needing entries lower it themselves
            # at O(m).  The spectra are identical, so cache keys are unchanged.
            if use_sparse:
                lap = laplacian_operator(graph, normalized=normalized)
            else:
                lap = laplacian(graph, normalized=normalized, sparse=False)
            result = solve_smallest(
                lap,
                h,
                options,
                warm_start=self._warm_start,
                lineage=lineage,
                normalized=normalized,
            )
            values = result.eigenvalues
            if not normalized:
                max_out = graph.freeze().max_out_degree
                values = values / max_out if max_out else values * 0.0
            values = np.ascontiguousarray(values, dtype=np.float64)
            values.flags.writeable = False
            elapsed = time.perf_counter() - start
            active.set_attr(backend=result.backend)
            _EIG_SECONDS.observe(elapsed, backend=result.backend, dtype=options.dtype)
            return values, elapsed, result.backend

    # ------------------------------------------------------------------
    # store tier + cross-process lease plumbing
    # ------------------------------------------------------------------
    def _fetch_stored(self, fingerprint, h, normalized, use_sparse, options, variant):
        """One store lookup; a broken store reads as a miss."""
        try:
            return self._store.get(
                fingerprint,
                h,
                normalized=bool(normalized),
                sparse=bool(use_sparse),
                eig_options=options,
                variant=variant,
            )
        except OSError:
            return None

    def _claim_solve(self, fingerprint, h, normalized, use_sparse, options, variant):
        """Contend for the cross-process solve lease on one cold spectrum.

        Returns ``(stored, lease)`` with at most one side set: ``stored``
        when another process's leader published the spectrum while we
        waited (serve it as a store hit), ``lease`` when *we* are the
        leader and must solve — and release.  ``(None, None)`` means
        leasing is disabled/broken or the wait timed out; the caller just
        solves (wasteful, never wrong).  The lease key deliberately
        excludes ``h``, so every truncation of one spectrum coalesces.
        """
        store = self._store
        if store is None or store.lease_ttl <= 0:
            return None, None
        waited = 0.0
        followed = False
        try:
            for _ in range(_LEASE_MAX_ROUNDS):
                try:
                    lease = store.acquire_lease(
                        fingerprint,
                        normalized=bool(normalized),
                        sparse=bool(use_sparse),
                        eig_options=options,
                        variant=variant,
                    )
                except (OSError, ValueError):
                    return None, None
                if lease is not None:
                    # Re-check the store now that we hold the lease: the
                    # previous leader may have published and released in
                    # the window since our fetch missed.  Without this a
                    # late acquirer would re-solve a published spectrum.
                    stored = self._fetch_stored(
                        fingerprint, h, normalized, use_sparse, options, variant
                    )
                    if stored is not None:
                        lease.release()
                        return stored, None
                    with self._lock:
                        self._lease_leaders += 1
                    _LEASE_TOTAL.inc(role="leader")
                    return None, lease
                followed = True
                start = time.perf_counter()
                outcome = store.wait_for_lease(
                    fingerprint,
                    normalized=bool(normalized),
                    sparse=bool(use_sparse),
                    eig_options=options,
                    variant=variant,
                )
                waited += time.perf_counter() - start
                # Whatever ended the wait, the published spectrum wins; a
                # "stale" verdict without one loops back to take the lease
                # over, "timeout" falls through to a redundant solve.
                stored = self._fetch_stored(
                    fingerprint, h, normalized, use_sparse, options, variant
                )
                if stored is not None:
                    return stored, None
                if outcome == "timeout":
                    return None, None
        finally:
            if followed:
                with self._lock:
                    self._lease_followers += 1
                _LEASE_TOTAL.inc(role="follower")
                _LEASE_WAIT_SECONDS.observe(waited)
        return None, None

    # ------------------------------------------------------------------
    # certified interval lookup (coarsened spectra)
    # ------------------------------------------------------------------
    def interval_spectrum(
        self,
        graph: ComputationGraph,
        num_eigenvalues: int,
        normalized: bool = True,
        eig_options: Optional[EigenSolverOptions] = None,
        sparse: Optional[bool] = None,
        lineage: Optional[str] = None,
        ratio: float = DEFAULT_COARSEN_RATIO,
        coarsen_seed: int = 0,
    ) -> CachedIntervalSpectrum:
        """Certified eigenvalue intervals via interlacing coarsening.

        The cheap sibling of :meth:`spectrum`: solves a seeded principal
        submatrix keeping ``~ratio * n`` vertices and returns intervals that
        provably contain the exact eigenvalues (see
        :mod:`repro.solvers.coarsen`).  Cached and persisted exactly like
        exact spectra but under a distinct ``coarse-r<ratio>-s<seed>``
        variant, so exact refreshes of the same graph can land lazily next
        to the certified entry without either ever masquerading as the
        other.  Counters are shared: a miss is one eigensolve.
        """
        n = graph.num_vertices
        h = int(num_eigenvalues)
        if h < 0:
            raise ValueError(f"num_eigenvalues must be non-negative, got {h}")
        if h > n:
            raise ValueError(f"requested {h} eigenvalues from an n={n} graph")
        if n == 0 or h == 0:
            empty = np.zeros(0)
            return CachedIntervalSpectrum(empty, empty, 0.0, True, exact=True)
        options = eig_options or EigenSolverOptions()
        dtype = options.dtype
        use_sparse = sparse if sparse is not None else n > SPARSE_CUTOFF
        variant = coarse_variant(ratio, coarsen_seed)
        num_coarse, exact_plan = coarse_plan(n, h, ratio)
        base_key = (
            graph.fingerprint(), bool(normalized), bool(use_sparse), options, variant,
        )
        key = base_key + (h,)

        def _result(lower, upper, seconds, hit, backend):
            return CachedIntervalSpectrum(
                lower, upper, seconds, hit, backend, dtype,
                num_coarse=num_coarse, num_vertices=n, exact=exact_plan,
            )

        with self._lock:
            found = self._interval_entries.get(key)
            if found is not None:
                self._interval_entries.move_to_end(key)
                self._hits += 1
                _SPECTRUM_LOOKUPS.inc(tier="memory")
                return _result(found[0], found[1], found[2], True, found[3])
            for other_key, (lower, upper, seconds, backend) in self._interval_entries.items():
                if other_key[:5] == base_key and other_key[5] >= h:
                    self._interval_entries.move_to_end(other_key)
                    self._hits += 1
                    _SPECTRUM_LOOKUPS.inc(tier="memory")
                    lo, up = lower[:h], upper[:h]
                    lo.flags.writeable = False
                    up.flags.writeable = False
                    return _result(lo, up, seconds, True, backend)

        lease = None
        if self._store is not None:
            stored = self._fetch_stored(
                base_key[0], h, normalized, use_sparse, options, variant
            )
            if stored is None:
                stored, lease = self._claim_solve(
                    base_key[0], h, normalized, use_sparse, options, variant
                )
            if stored is not None:
                upper = stored.eigenvalues
                # Degenerate (exact) interval entries may omit the lower
                # array — the uppers are the values.
                lower = stored.eigenvalues_lo if stored.eigenvalues_lo is not None else upper
                stored_key = base_key + (stored.num_eigenvalues,)
                with self._lock:
                    if stored_key not in self._interval_entries:
                        self._interval_entries[stored_key] = (
                            lower, upper, stored.solve_seconds, stored.backend,
                        )
                    self._interval_entries.move_to_end(stored_key)
                    while len(self._interval_entries) > self._max_entries:
                        self._interval_entries.popitem(last=False)
                    self._hits += 1
                    self._store_hits += 1
                _SPECTRUM_LOOKUPS.inc(tier="store")
                lo, up = lower[:h], upper[:h]
                lo.flags.writeable = False
                up.flags.writeable = False
                return _result(lo, up, stored.solve_seconds, True, stored.backend)

        try:
            with obs.span(
                "eigensolve",
                fingerprint=graph.fingerprint() if obs.enabled() else None,
                h=h,
                dtype=options.dtype,
                coarse=True,
            ) as active:
                start = time.perf_counter()
                if use_sparse:
                    lap = laplacian_operator(graph, normalized=normalized)
                else:
                    lap = laplacian(graph, normalized=normalized, sparse=False)
                interval = certified_interval_spectrum(
                    lap,
                    h,
                    options,
                    ratio=ratio,
                    seed=coarsen_seed,
                    warm_start=self._warm_start,
                    lineage=lineage,
                    normalized=normalized,
                )
                lower, upper = interval.lower, interval.upper
                if not normalized:
                    max_out = graph.freeze().max_out_degree
                    scale = 1.0 / max_out if max_out else 0.0
                    lower, upper = lower * scale, upper * scale
                lower = np.ascontiguousarray(lower, dtype=np.float64)
                upper = np.ascontiguousarray(upper, dtype=np.float64)
                lower.flags.writeable = False
                upper.flags.writeable = False
                solve_seconds = time.perf_counter() - start
                active.set_attr(backend=interval.backend)
                _EIG_SECONDS.observe(solve_seconds, backend=interval.backend, dtype=options.dtype)
            if self._store is not None:
                try:
                    self._store.put(
                        base_key[0],
                        upper,
                        solve_seconds,
                        normalized=bool(normalized),
                        sparse=bool(use_sparse),
                        eig_options=options,
                        backend=interval.backend,
                        lineage=lineage,
                        variant=variant,
                        eigenvalues_lo=lower,
                    )
                except OSError:
                    pass
        finally:
            if lease is not None:
                lease.release()
        with self._lock:
            self._interval_entries[key] = (lower, upper, solve_seconds, interval.backend)
            self._interval_entries.move_to_end(key)
            self._misses += 1
            while len(self._interval_entries) > self._max_entries:
                self._interval_entries.popitem(last=False)
        _SPECTRUM_LOOKUPS.inc(tier="solve")
        return _result(lower, upper, solve_seconds, False, interval.backend)


_DEFAULT_CACHE = SpectrumCache(max_entries=128)


def default_spectrum_cache() -> SpectrumCache:
    """The process-wide spectrum cache shared by default-constructed engines."""
    return _DEFAULT_CACHE
