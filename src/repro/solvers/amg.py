"""Pure-SciPy smoothed-aggregation algebraic multigrid (AMG) V-cycle.

The ``amg`` spectral backend runs LOBPCG on the shifted Laplacian
``A = L + sigma I`` preconditioned by ``M ~= A^{-1}``.  When `pyamg
<https://github.com/pyamg/pyamg>`_ is importable the preconditioner comes
from ``pyamg.smoothed_aggregation_solver`` (its C kernels are faster); this
module is the dependency-free fallback so the backend works from the
stdlib+numpy+scipy baseline the repo targets.

The construction is classical smoothed aggregation (Vanek, Mandel, Brezina):

1. **Strength of connection** — keep off-diagonal ``a_ij`` with
   ``|a_ij| >= theta * sqrt(|a_ii a_jj|)``; weak couplings are ignored when
   forming aggregates (they carry no smooth-error information).
2. **Greedy aggregation** — a standard three-pass sweep over the strength
   graph: seed disjoint root aggregates, attach leftover vertices to a
   neighbouring aggregate, make singletons of anything still loose.
3. **Tentative prolongator** — one column per aggregate, carrying the
   constant vector (the Laplacian near-nullspace), column-normalised.
4. **Jacobi smoothing** — ``P = (I - omega D^{-1} A) T`` with
   ``omega = 4/3 / rho(D^{-1} A)``, which turns the piecewise-constant
   tentative basis into overlapping smooth basis functions (plain
   aggregation stalls on smooth error; this one step is what makes SA
   optimal-order on Laplacians).
5. **Galerkin coarsening** — ``A_c = P^T A P``, recursively, until the
   coarsest level is small enough for one sparse LU factorisation.

One V-cycle (damped-Jacobi pre/post smoothing, exact coarsest solve) is
exposed as a :class:`scipy.sparse.linalg.LinearOperator`, which is exactly
the ``M`` argument ``scipy.sparse.linalg.lobpcg`` expects.  All heavy
operations are vectorised sparse kernels; only the aggregation sweep is a
Python loop over vertices (linear, runs once per setup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs.metrics import global_registry

_AMG_CYCLES = global_registry().counter(
    "repro_amg_cycles_total",
    "Top-level AMG V-cycles applied (one per preconditioner matvec/matmat).",
)

__all__ = [
    "AMGLevel",
    "SmoothedAggregationPreconditioner",
    "smoothed_aggregation_preconditioner",
    "strength_graph",
    "aggregate_vertices",
    "tentative_prolongator",
    "smoothed_prolongator",
    "estimate_jacobi_radius",
    "pyamg_available",
]

#: Relative strength-of-connection threshold.  ``0.0`` keeps every coupling
#: (safe default for the near-uniform edge weights of computation-graph
#: Laplacians); raising it sparsifies the aggregates on wildly heterogeneous
#: weights.
DEFAULT_THETA = 0.0

#: Prolongator-smoothing weight numerator: ``omega = OMEGA / rho(D^-1 A)``.
DEFAULT_OMEGA = 4.0 / 3.0

#: Stop coarsening once a level has at most this many vertices; the coarsest
#: level is solved exactly by one sparse LU factorisation.
DEFAULT_COARSE_SIZE = 400

#: Hierarchy depth cap (a safety net; Laplacian hierarchies are shallow).
DEFAULT_MAX_LEVELS = 15


def strength_graph(matrix: sp.csr_matrix, theta: float = DEFAULT_THETA) -> sp.csr_matrix:
    """Symmetric strength-of-connection graph of a sparse SPD matrix.

    Keeps off-diagonal entries with ``|a_ij| >= theta * sqrt(|a_ii a_jj|)``
    (and always drops the diagonal).  ``theta = 0`` keeps every off-diagonal
    coupling.
    """
    a = matrix.tocoo()
    off = a.row != a.col
    rows, cols, vals = a.row[off], a.col[off], np.abs(a.data[off])
    if theta > 0.0:
        diag = np.abs(matrix.diagonal())
        scale = np.sqrt(diag[rows] * diag[cols])
        keep = vals >= theta * np.maximum(scale, 1e-300)
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    n = matrix.shape[0]
    strong = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    strong.sum_duplicates()
    return strong


def aggregate_vertices(strength: sp.csr_matrix) -> np.ndarray:
    """Greedy aggregation over a strength graph; returns vertex -> aggregate.

    The standard three passes:

    1. every vertex whose strong neighbourhood is entirely unaggregated
       becomes the root of a new aggregate (itself + its neighbours),
    2. remaining vertices join the aggregate of any strong neighbour,
    3. anything still loose (isolated vertices) becomes a singleton.

    Every vertex ends up in exactly one aggregate, so the tentative
    prolongator below has exactly one entry per row.
    """
    n = strength.shape[0]
    indptr, indices = strength.indptr, strength.indices
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    # Pass 1: root aggregates.
    for v in range(n):
        if labels[v] != -1:
            continue
        neighbours = indices[indptr[v] : indptr[v + 1]]
        if neighbours.size and np.any(labels[neighbours] != -1):
            continue
        labels[v] = next_label
        labels[neighbours] = next_label
        next_label += 1
    # Pass 2: attach stragglers to a neighbouring aggregate.
    for v in range(n):
        if labels[v] != -1:
            continue
        neighbours = indices[indptr[v] : indptr[v + 1]]
        tagged = neighbours[labels[neighbours] != -1]
        if tagged.size:
            labels[v] = labels[tagged[0]]
    # Pass 3: singletons for whatever is left.
    for v in range(n):
        if labels[v] == -1:
            labels[v] = next_label
            next_label += 1
    return labels


def tentative_prolongator(labels: np.ndarray) -> sp.csr_matrix:
    """Piecewise-constant prolongator from an aggregation labelling.

    Column ``j`` is the (normalised) indicator of aggregate ``j`` — the
    restriction of the Laplacian near-nullspace (the constant vector) to the
    aggregate.  Columns are unit-norm, so ``T^T T = I``.
    """
    n = labels.shape[0]
    num_aggregates = int(labels.max()) + 1 if n else 0
    sizes = np.bincount(labels, minlength=num_aggregates).astype(np.float64)
    data = 1.0 / np.sqrt(sizes[labels])
    return sp.csr_matrix(
        (data, (np.arange(n), labels)), shape=(n, num_aggregates)
    )


def estimate_jacobi_radius(
    matrix: sp.csr_matrix, diag_inv: np.ndarray, iterations: int = 12, seed: int = 0
) -> float:
    """Estimate ``rho(D^{-1} A)`` by a few power iterations (for damping)."""
    n = matrix.shape[0]
    if n == 0:
        return 1.0
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    radius = 2.0  # the exact value for an unweighted Laplacian's D^-1 L
    for _ in range(iterations):
        w = diag_inv * (matrix @ v)
        norm = float(np.linalg.norm(w))
        if not np.isfinite(norm) or norm <= 1e-30:
            break
        radius = norm
        v = w / norm
    return max(radius, 1e-12)


def smoothed_prolongator(
    matrix: sp.csr_matrix,
    tentative: sp.csr_matrix,
    diag_inv: np.ndarray,
    radius: float,
    omega: float = DEFAULT_OMEGA,
) -> sp.csr_matrix:
    """One damped-Jacobi smoothing step: ``P = (I - omega D^{-1} A) T``."""
    weight = omega / radius
    scaled = sp.diags(diag_inv * weight) @ matrix
    return (tentative - scaled @ tentative).tocsr()


@dataclass
class AMGLevel:
    """One level of the hierarchy (finest is level 0).

    ``prolongator`` maps this level's coarse space (level ``i + 1``) back up;
    it is ``None`` on the coarsest level, where ``solve`` holds the LU
    factorisation instead.
    """

    matrix: sp.csr_matrix
    diag_inv: np.ndarray
    jacobi_weight: float
    prolongator: Optional[sp.csr_matrix] = None


class SmoothedAggregationPreconditioner(spla.LinearOperator):
    """AMG V-cycle as a :class:`~scipy.sparse.linalg.LinearOperator`.

    ``matvec``/``matmat`` apply one V(1,1)-cycle (one damped-Jacobi pre- and
    post-smoothing sweep per level, exact coarsest solve) to the right-hand
    side — an approximation of ``A^{-1} b`` fit for preconditioning LOBPCG
    or CG.  Block right-hand sides are cycled as blocks: every kernel in the
    cycle (SpMM, diagonal scaling) is vectorised over columns, which is what
    makes blocked eigensolves cheap.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        theta: float = DEFAULT_THETA,
        omega: float = DEFAULT_OMEGA,
        coarse_size: int = DEFAULT_COARSE_SIZE,
        max_levels: int = DEFAULT_MAX_LEVELS,
        seed: int = 0,
    ) -> None:
        a = matrix.tocsr().astype(np.float64)
        if a.shape[0] != a.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {a.shape}")
        super().__init__(dtype=np.float64, shape=a.shape)
        self.levels: List[AMGLevel] = []
        self._coarse_solve = None
        for _ in range(max(1, int(max_levels))):
            diag = a.diagonal()
            diag_inv = np.where(np.abs(diag) > 1e-300, 1.0 / diag, 0.0)
            radius = estimate_jacobi_radius(a, diag_inv, seed=seed)
            level = AMGLevel(
                matrix=a, diag_inv=diag_inv, jacobi_weight=1.0 / radius
            )
            self.levels.append(level)
            if a.shape[0] <= coarse_size:
                break
            labels = aggregate_vertices(strength_graph(a, theta))
            tentative = tentative_prolongator(labels)
            if tentative.shape[1] >= a.shape[0]:
                break  # aggregation stalled (e.g. an edgeless level)
            prolongator = smoothed_prolongator(a, tentative, diag_inv, radius, omega)
            level.prolongator = prolongator
            a = (prolongator.T @ a @ prolongator).tocsr()
        self._factorize_coarse(self.levels[-1].matrix)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def operator_complexity(self) -> float:
        """``sum_l nnz(A_l) / nnz(A_0)`` — the classical AMG cost metric."""
        finest = max(self.levels[0].matrix.nnz, 1)
        return sum(level.matrix.nnz for level in self.levels) / finest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = " -> ".join(str(level.matrix.shape[0]) for level in self.levels)
        return (
            f"SmoothedAggregationPreconditioner({sizes}, "
            f"complexity={self.operator_complexity():.2f})"
        )

    # ------------------------------------------------------------------
    # the V-cycle
    # ------------------------------------------------------------------
    def _factorize_coarse(self, coarse: sp.csr_matrix) -> None:
        n = coarse.shape[0]
        if n == 0:
            self._coarse_solve = lambda b: b
            return
        try:
            lu = spla.splu(coarse.tocsc())
            self._coarse_solve = lambda b: lu.solve(np.ascontiguousarray(b))
        except RuntimeError:
            # A (numerically) singular coarsest level: fall back to a dense
            # pseudo-inverse — the level is tiny by construction.
            pinv = np.linalg.pinv(coarse.toarray())
            self._coarse_solve = lambda b: pinv @ b

    def _cycle(self, index: int, rhs: np.ndarray) -> np.ndarray:
        level = self.levels[index]
        if index == len(self.levels) - 1:
            return np.asarray(self._coarse_solve(rhs))
        scale = level.jacobi_weight
        diag_inv = level.diag_inv if rhs.ndim == 1 else level.diag_inv[:, None]
        # Pre-smooth from a zero initial guess: x = omega D^-1 b.
        x = scale * (diag_inv * rhs)
        residual = rhs - level.matrix @ x
        coarse_rhs = level.prolongator.T @ residual
        x = x + level.prolongator @ self._cycle(index + 1, coarse_rhs)
        # Post-smooth.
        residual = rhs - level.matrix @ x
        return x + scale * (diag_inv * residual)

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        _AMG_CYCLES.inc()
        return self._cycle(0, np.asarray(x, dtype=np.float64).ravel())

    def _matmat(self, x: np.ndarray) -> np.ndarray:
        _AMG_CYCLES.inc()
        return self._cycle(0, np.asarray(x, dtype=np.float64))

    def _adjoint(self) -> "SmoothedAggregationPreconditioner":
        return self  # symmetric cycle (same pre/post smoother, Galerkin)


def pyamg_available() -> bool:
    """Whether the optional ``pyamg`` accelerator imports."""
    try:
        import pyamg  # noqa: F401
    except ImportError:
        return False
    return True


def _pyamg_preconditioner(matrix: sp.csr_matrix) -> Optional[spla.LinearOperator]:
    try:
        import pyamg
    except ImportError:
        return None
    try:  # pragma: no cover - exercised only where pyamg is installed
        ml = pyamg.smoothed_aggregation_solver(matrix)
        return ml.aspreconditioner(cycle="V")
    except Exception:
        return None  # fall back to the in-package hierarchy


def smoothed_aggregation_preconditioner(
    matrix: sp.spmatrix,
    theta: float = DEFAULT_THETA,
    omega: float = DEFAULT_OMEGA,
    coarse_size: int = DEFAULT_COARSE_SIZE,
    max_levels: int = DEFAULT_MAX_LEVELS,
    seed: int = 0,
) -> spla.LinearOperator:
    """The AMG V-cycle preconditioner for a sparse SPD matrix.

    Uses ``pyamg`` when importable (same algorithm, compiled kernels);
    otherwise builds the in-package
    :class:`SmoothedAggregationPreconditioner`.  Either way the result is a
    :class:`~scipy.sparse.linalg.LinearOperator` approximating
    ``matrix^{-1}``.
    """
    csr = matrix.tocsr()
    accelerated = _pyamg_preconditioner(csr)
    if accelerated is not None:
        return accelerated
    return SmoothedAggregationPreconditioner(
        csr,
        theta=theta,
        omega=omega,
        coarse_size=coarse_size,
        max_levels=max_levels,
        seed=seed,
    )
