"""Dense (LAPACK) eigenvalue computation.

The reference backend: exact to machine precision, ``O(n^3)`` time and
``O(n^2)`` memory, hence only sensible for graphs up to a few thousand
vertices.  All other solvers are validated against this one in the tests.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

__all__ = ["dense_spectrum", "dense_smallest_eigenvalues"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _to_dense_symmetric(matrix: MatrixLike) -> np.ndarray:
    """Densify and validate a symmetric matrix."""
    if sp.issparse(matrix):
        dense = np.asarray(matrix.todense(), dtype=np.float64)
    else:
        dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {dense.shape}")
    if not np.allclose(dense, dense.T, atol=1e-8):
        raise ValueError("matrix must be symmetric")
    return dense


def dense_spectrum(matrix: MatrixLike) -> np.ndarray:
    """All eigenvalues of a symmetric matrix, in increasing order."""
    dense = _to_dense_symmetric(matrix)
    if dense.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return np.linalg.eigvalsh(dense)


def dense_smallest_eigenvalues(matrix: MatrixLike, k: int) -> np.ndarray:
    """The ``k`` smallest eigenvalues of a symmetric matrix (increasing)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    spectrum = dense_spectrum(matrix)
    if k > spectrum.shape[0]:
        raise ValueError(
            f"requested {k} eigenvalues from a {spectrum.shape[0]}-dimensional matrix"
        )
    return spectrum[:k]
