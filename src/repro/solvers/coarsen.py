"""Interlacing-certified spectral coarsening.

The spectral bound needs the ``h`` smallest Laplacian eigenvalues, and for
paper-scale graphs even the AMG backend pays seconds per cold solve.  This
module trades accuracy for time *without giving up correctness*: it solves
the spectrum of a smaller matrix and returns certified **intervals** that
provably contain the exact eigenvalues.

The certificate is Cauchy's interlacing theorem.  Let ``A`` be the symmetric
n-by-n fine Laplacian and ``B`` the principal submatrix obtained by deleting
``m = n - nc`` rows/columns (i.e. the Laplacian restricted to a vertex
subset — *not* a rebuilt quotient graph, which would certify nothing).  With
eigenvalues ascending and 1-indexed,

    lambda_i(A)  <=  lambda_i(B)  <=  lambda_{i+m}(A)    for i = 1..nc.

Reading the two inequalities per fine eigenvalue ``lambda_i(A)``:

* **upper end** — ``lambda_i(A) <= lambda_i(B)``: the i-th coarse eigenvalue.
* **lower end** — ``lambda_{i-m}(B) <= lambda_i(A)`` when ``i > m``; for
  ``i <= m`` interlacing says nothing and PSD-ness gives the trivial ``0``.

One coarse solve of ``h`` eigenvalues therefore yields all ``h`` fine
intervals.  The lower ends are informative only for ``i > m``, so aggressive
coarsening (small ``ratio``) buys speed at the price of trivial lower ends —
the intervals stay *valid* either way, which is what the property tests
assert.  The bound formula is monotone non-decreasing in every eigenvalue,
so evaluating it at the two endpoint vectors brackets the exact bound
(:meth:`repro.core.engine.BoundEngine.spectral_interval`).

Deletion is deterministic in ``seed``, so coarse spectra are cacheable under
``(fingerprint, h, options, ratio, seed)`` like exact ones — the
:class:`~repro.runtime.store.SpectrumStore` files them as a ``coarse``
variant, letting exact refreshes land lazily next to the certified entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np
import scipy.sparse as sp

from repro.solvers.backends import (
    MatrixLike,
    WarmStartContext,
    _as_sparse,
    solve_smallest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solvers.backend import EigenSolverOptions

__all__ = [
    "DEFAULT_COARSEN_RATIO",
    "COARSEN_MIN_VERTICES",
    "IntervalSpectrum",
    "coarse_plan",
    "coarse_variant",
    "coarsen_keep_indices",
    "principal_submatrix",
    "certified_interval_spectrum",
]

#: Default fraction of vertices the coarse matrix keeps.  ``0.5`` halves the
#: solve; raise it towards 1 for tighter (non-trivial) lower interval ends.
DEFAULT_COARSEN_RATIO = 0.5

#: Below this size coarsening cannot pay for itself; the exact spectrum is
#: returned as degenerate intervals (``lower == upper``).
COARSEN_MIN_VERTICES = 64


@dataclass(frozen=True)
class IntervalSpectrum:
    """Certified eigenvalue intervals ``lower[i] <= lambda_i <= upper[i]``.

    Attributes
    ----------
    lower / upper:
        Ascending float64 arrays of length ``h``; both read-only.  Equal
        when the spectrum is exact (``exact=True``).
    num_vertices / num_coarse:
        Fine size and the size of the solved principal submatrix.
    backend:
        Resolved backend id of the underlying (coarse or exact) solve.
    exact:
        True when no coarsening happened — the "intervals" are points.
    """

    lower: np.ndarray
    upper: np.ndarray
    num_vertices: int
    num_coarse: int
    backend: str
    exact: bool

    @property
    def num_deleted(self) -> int:
        return self.num_vertices - self.num_coarse

    def contains(self, eigenvalues: np.ndarray, slack: float = 1e-8) -> bool:
        """Whether exact ``eigenvalues`` sit inside the intervals (+slack)."""
        values = np.asarray(eigenvalues, dtype=np.float64)
        h = min(values.shape[0], self.lower.shape[0])
        return bool(
            np.all(self.lower[:h] - slack <= values[:h])
            and np.all(values[:h] <= self.upper[:h] + slack)
        )


def coarse_plan(num_vertices: int, h: int, ratio: float = DEFAULT_COARSEN_RATIO):
    """``(num_coarse, exact)`` the coarsener will use for this solve.

    Shared with the caching layers so a store hit can reconstruct the
    deterministic coarsening metadata without re-deriving it ad hoc.
    """
    num_coarse = max(int(math.ceil(ratio * num_vertices)), h)
    if num_vertices < COARSEN_MIN_VERTICES or num_coarse >= num_vertices:
        return num_vertices, True
    return num_coarse, False


def coarse_variant(ratio: float = DEFAULT_COARSEN_RATIO, seed: int = 0) -> str:
    """Store/cache variant tag for a coarsening configuration."""
    return f"coarse-r{ratio:g}-s{int(seed)}"


def coarsen_keep_indices(
    num_vertices: int, num_coarse: int, seed: int = 0
) -> np.ndarray:
    """The sorted vertex subset the coarse matrix keeps (deterministic)."""
    if not 0 <= num_coarse <= num_vertices:
        raise ValueError(
            f"num_coarse must be in [0, {num_vertices}], got {num_coarse}"
        )
    rng = np.random.default_rng(seed)
    keep = rng.choice(num_vertices, size=num_coarse, replace=False)
    return np.sort(keep)


def principal_submatrix(matrix: MatrixLike, keep: np.ndarray) -> sp.csr_matrix:
    """The principal submatrix ``A[keep, keep]`` as CSR.

    This is the object interlacing speaks about; matrix-free operators are
    lowered to their sparse form first (O(m)).
    """
    csr = _as_sparse(matrix).tocsr()
    return csr[keep][:, keep].tocsr()


def _interval_arrays(
    coarse_values: np.ndarray, h: int, num_deleted: int
) -> tuple:
    """Lower/upper endpoint vectors from the coarse spectrum (see module doc)."""
    upper = np.asarray(coarse_values[:h], dtype=np.float64).copy()
    lower = np.zeros(h, dtype=np.float64)
    if num_deleted < h:
        lower[num_deleted:] = upper[: h - num_deleted]
    # Guard against backend round-off inverting an interval at clustered
    # eigenvalues (the theorem guarantees lower <= upper exactly).
    return np.minimum(lower, upper), upper


def certified_interval_spectrum(
    matrix: MatrixLike,
    h: int,
    options: "Optional[EigenSolverOptions]" = None,
    ratio: float = DEFAULT_COARSEN_RATIO,
    seed: int = 0,
    warm_start: Optional[WarmStartContext] = None,
    lineage: Optional[str] = None,
    normalized: bool = True,
) -> IntervalSpectrum:
    """Certified intervals for the ``h`` smallest eigenvalues of ``matrix``.

    Solves the spectrum of a seeded-random principal submatrix keeping
    ``max(ceil(ratio * n), h)`` vertices and converts it into interlacing
    intervals.  Degenerates to an exact solve (``lower == upper``) when the
    matrix is too small for coarsening to pay (:data:`COARSEN_MIN_VERTICES`)
    or ``ratio`` rounds to keeping everything.  ``lineage`` is suffixed with
    ``"::coarse"`` so coarse warm-start blocks never cross-seed exact solves.
    """
    from repro.solvers.backend import EigenSolverOptions

    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    n = matrix.shape[0]
    if h < 0:
        raise ValueError(f"h must be non-negative, got {h}")
    if h > n:
        raise ValueError(f"requested {h} eigenvalues from an n={n} matrix")
    options = options or EigenSolverOptions()
    num_coarse, exact = coarse_plan(n, h, ratio)
    coarse_lineage = f"{lineage}::coarse" if lineage is not None else None

    if exact:
        result = solve_smallest(
            matrix, h, options, warm_start=warm_start,
            lineage=lineage, normalized=normalized,
        )
        values = np.asarray(result.eigenvalues, dtype=np.float64)
        values.flags.writeable = False
        return IntervalSpectrum(values, values, n, n, result.backend, True)

    keep = coarsen_keep_indices(n, num_coarse, seed=seed)
    coarse = principal_submatrix(matrix, keep)
    result = solve_smallest(
        coarse, h, options, warm_start=warm_start,
        lineage=coarse_lineage, normalized=normalized,
    )
    lower, upper = _interval_arrays(result.eigenvalues, h, n - num_coarse)
    lower.flags.writeable = False
    upper.flags.writeable = False
    return IntervalSpectrum(lower, upper, n, num_coarse, result.backend, False)
