"""Experiment harness: parameter sweeps, runtime measurement, reporting.

The benchmark files under ``benchmarks/`` are thin wrappers around this
subpackage:

* :mod:`sweep` — run one or several bound methods over a family of graphs and
  a list of memory sizes, producing uniform result rows;
* :mod:`runtime` — wall-clock measurement of bound computations (Figure 11);
* :mod:`reporting` — plain-text tables and CSV output of result rows;
* :mod:`figures` — assemble the (x, y) series the paper's figures plot from
  sweep rows (e.g. bound vs ``l`` and bound vs ``l·2^l`` for the FFT).
"""

from repro.analysis.sweep import SweepRow, sweep, METHODS
from repro.analysis.runtime import RuntimeRow, runtime_comparison
from repro.analysis.reporting import format_table, rows_to_csv, write_csv
from repro.analysis.figures import FigureSeries, series_from_rows

__all__ = [
    "SweepRow",
    "sweep",
    "METHODS",
    "RuntimeRow",
    "runtime_comparison",
    "format_table",
    "rows_to_csv",
    "write_csv",
    "FigureSeries",
    "series_from_rows",
]
