"""Parameter sweeps over graph families, memory sizes and bound methods.

A sweep evaluates one or more lower-bound methods on a *graph family* — a
callable mapping a size parameter to a computation graph — for every
combination of size parameter and fast-memory size.  The output is a flat
list of :class:`SweepRow` records that the reporting and figure helpers
consume; each benchmark file then simply declares its family, sizes and
memory sizes (matching one of the paper's figures) and prints/saves the rows.

Following §6.4, combinations where the graph's maximum in-degree exceeds
``M - 1`` are skipped (the computation could not even hold one operation's
operands in fast memory), mirroring "we do not display points where the
maximum in-degree is greater than M".

Spectral methods are executed through one :class:`repro.core.engine
.BoundEngine` per graph, all sharing a per-sweep spectrum cache: a figure
sweep performs exactly one eigensolve per (graph, normalisation), no matter
how many memory sizes or methods it covers.

Execution is delegated to :class:`repro.runtime.orchestrator
.SweepOrchestrator`: ``processes > 1`` fans the family out over a process
pool, and ``store`` plugs a persistent :class:`repro.runtime.store
.SpectrumStore` under every engine so repeated sweeps (across processes and
runs) skip eigensolves entirely.  :func:`evaluate_graph_rows` is the
single-graph kernel both the serial path and the pool workers execute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, asdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.convex_mincut import MinCutEngine
from repro.core.engine import BoundEngine, SolveRecord
from repro.graphs.compgraph import ComputationGraph
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = [
    "SweepRow",
    "sweep",
    "evaluate_graph_rows",
    "convex_candidates",
    "METHODS",
]

#: Methods understood by :func:`sweep`.  ``spectral-coarse`` evaluates the
#: interlacing-certified bound interval; its row ``bound`` is the certified
#: *safe* lower end (see :class:`repro.core.result.IntervalBoundResult`).
METHODS = ("spectral", "spectral-unnormalized", "spectral-coarse", "convex-min-cut")


@dataclass(frozen=True)
class SweepRow:
    """One (graph size, memory size, method) evaluation."""

    family: str
    size_param: int
    num_vertices: int
    num_edges: int
    max_in_degree: int
    memory_size: int
    method: str
    bound: float
    best_k: Optional[int]
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _evaluate_spectral(
    method: str,
    engine: BoundEngine,
    memory_sizes: Sequence[int],
) -> Dict[int, tuple[float, Optional[int], float]]:
    """Evaluate a spectral method for all memory sizes with one eigensolve.

    The engine's spectrum cache guarantees the eigensolve runs once per
    (graph, normalisation); its cost lands in the ``elapsed_seconds`` of the
    point that triggered it, so summing row times never overcounts it.
    """
    points = engine.sweep(memory_sizes, methods=(method,))
    return {
        p.memory_size: (p.result.value, p.result.best_k, p.result.elapsed_seconds)
        for p in points
    }


def convex_candidates(
    graph: ComputationGraph,
    convex_vertex_cap: Optional[int],
    chunk: Optional[Tuple[int, int]] = None,
) -> Optional[List[int]]:
    """The candidate vertices the convex min-cut baseline examines.

    ``None`` means "all vertices".  With a ``convex_vertex_cap`` smaller than
    the graph, a deterministic strided sub-sample keeps the ``O(n)`` max-flow
    calls affordable (the result remains a valid bound).  ``chunk=(i, k)``
    takes the ``i``-th of ``k`` strided slices of the candidate list — the
    unit the orchestrator schedules across pool workers; the union over all
    chunks is exactly the unchunked candidate set.
    """
    vertices: Optional[List[int]] = None
    if convex_vertex_cap is not None and graph.num_vertices > convex_vertex_cap:
        stride = max(1, graph.num_vertices // convex_vertex_cap)
        vertices = list(range(0, graph.num_vertices, stride))
    if chunk is not None:
        index, total = chunk
        if not 0 <= index < total:
            raise ValueError(f"chunk index {index} out of range for {total} chunks")
        if total > 1:
            if vertices is None:
                vertices = list(range(graph.num_vertices))
            vertices = vertices[index::total]
    return vertices


def _evaluate_convex(
    graph: ComputationGraph,
    memory_sizes: Sequence[int],
    convex_vertex_cap: Optional[int],
    engine: MinCutEngine,
    chunk: Optional[Tuple[int, int]] = None,
) -> Dict[int, tuple[float, Optional[int], float]]:
    """Run the convex min-cut baseline for all memory sizes.

    The expensive part (``max_v C(v, G)``) is independent of ``M``, so the
    per-vertex max-flow computations run once and the per-``M`` bounds follow
    arithmetically (the recorded elapsed time is the shared cost).  The
    engine carries the backend choice, the persistent cut table, and the
    pruning logic.
    """
    start = time.perf_counter()
    vertices = convex_candidates(graph, convex_vertex_cap, chunk)
    max_cut, _ = engine.max_cut(vertices)
    elapsed = time.perf_counter() - start
    return {
        M: (max(0.0, 2.0 * (max_cut - M)), None, elapsed) for M in memory_sizes
    }


def evaluate_graph_rows(
    family: str,
    size_param: int,
    graph: ComputationGraph,
    memory_sizes: Sequence[int],
    methods: Sequence[str] = ("spectral",),
    num_eigenvalues: int = 100,
    skip_infeasible: bool = True,
    convex_vertex_cap: Optional[int] = None,
    max_vertices: Optional[Dict[str, int]] = None,
    cache: Optional[SpectrumCache] = None,
    eig_options: Optional[EigenSolverOptions] = None,
    lineage: Optional[str] = None,
    mincut_backend: Optional[str] = None,
    cut_store=None,
    convex_chunk: Optional[Tuple[int, int]] = None,
) -> Tuple[List[SweepRow], int, List[SolveRecord], Optional[Dict[str, object]]]:
    """Evaluate every (method, M) combination on one graph.

    This is the per-graph kernel of :func:`sweep`: the serial path calls it
    in a loop with a shared cache, and the orchestrator's pool workers call
    it once per task with a store-backed private cache.  ``eig_options``
    selects the spectral backend/precision, and ``lineage`` tags solves for
    warm starting (defaults to the family name).  ``mincut_backend`` /
    ``cut_store`` configure the convex min-cut baseline (max-flow backend id
    and persistent :class:`~repro.runtime.store.CutStore`); ``convex_chunk``
    restricts the baseline to the ``(index, total)``-th strided slice of its
    candidate vertices (see :func:`convex_candidates`).

    Returns
    -------
    (rows, num_eigensolves, solve_records, cut_stats)
        The sweep rows, the number of eigensolves actually performed (0 when
        every spectrum came from a cache tier), one
        :class:`~repro.core.engine.SolveRecord` per spectrum fetch (empty
        for purely combinatorial methods), and the convex baseline's
        :meth:`~repro.baselines.convex_mincut.MinCutEngine.stats` (``None``
        when the method did not run).
    """
    for method in methods:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    max_vertices = max_vertices or {}
    memory_sizes = list(memory_sizes)
    engine = BoundEngine(
        graph,
        num_eigenvalues=num_eigenvalues,
        cache=cache,
        eig_options=eig_options,
        lineage=lineage if lineage is not None else family,
    )
    cut_stats: Optional[Dict[str, object]] = None
    max_in = graph.max_in_degree
    feasible_ms = [
        M for M in memory_sizes if not (skip_infeasible and max_in + 1 > M)
    ]
    rows: List[SweepRow] = []
    if not feasible_ms:
        return rows, 0, [], cut_stats

    def emit(method: str, M: int, bound: float, best_k: Optional[int], elapsed: float) -> None:
        rows.append(
            SweepRow(
                family=family,
                size_param=size_param,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                max_in_degree=max_in,
                memory_size=M,
                method=method,
                bound=float(bound),
                best_k=best_k,
                elapsed_seconds=elapsed,
            )
        )

    for method in methods:
        cap = max_vertices.get(method)
        if cap is not None and graph.num_vertices > cap:
            continue
        if method in ("spectral", "spectral-unnormalized", "spectral-coarse"):
            per_m = _evaluate_spectral(method, engine, feasible_ms)
        else:  # convex-min-cut
            mincut_engine = MinCutEngine(
                graph,
                backend=mincut_backend,
                store=cut_store,
                lineage=lineage if lineage is not None else family,
            )
            per_m = _evaluate_convex(
                graph, feasible_ms, convex_vertex_cap, mincut_engine, convex_chunk
            )
            cut_stats = mincut_engine.stats()
        for M in feasible_ms:
            bound, best_k, elapsed = per_m[M]
            emit(method, M, bound, best_k, elapsed)
    return rows, engine.num_eigensolves, engine.solve_log, cut_stats


def sweep(
    family: str,
    graph_builder: Callable[[int], ComputationGraph],
    size_params: Iterable[int],
    memory_sizes: Iterable[int],
    methods: Sequence[str] = ("spectral",),
    num_eigenvalues: int = 100,
    skip_infeasible: bool = True,
    convex_vertex_cap: Optional[int] = None,
    max_vertices: Optional[Dict[str, int]] = None,
    processes: int = 1,
    store=None,
    solver: Optional[str] = None,
    dtype: Optional[str] = None,
    eig_options: Optional[EigenSolverOptions] = None,
    mincut_backend: Optional[str] = None,
) -> List[SweepRow]:
    """Evaluate ``methods`` over a graph family.

    Parameters
    ----------
    family:
        Name recorded in every row (e.g. ``"fft"``).
    graph_builder:
        Callable mapping the size parameter to a computation graph.  Must be
        picklable (e.g. a module-level generator) when ``processes > 1``.
    size_params:
        Size parameters to sweep (``l`` for FFT/BHK, ``n`` for matmul).
    memory_sizes:
        Fast-memory sizes ``M`` to sweep.
    methods:
        Bound methods (subset of :data:`METHODS`).
    num_eigenvalues:
        The ``h`` truncation for the spectral methods.
    skip_infeasible:
        Skip (graph, M) combinations whose maximum in-degree exceeds ``M - 1``
        (as in the paper's figures).
    convex_vertex_cap:
        If set, the convex min-cut method only examines roughly this many
        candidate vertices on larger graphs (still a valid lower bound).
    max_vertices:
        Optional per-method cap ``{method: n_max}``: graphs larger than the
        cap are skipped for that method (used to keep the ``O(n^5)`` baseline
        within the benchmark time budget, mirroring the paper's 1-day cutoff).
    processes:
        Number of worker processes; ``1`` (default) runs serially in-process,
        ``None`` uses one worker per CPU.
    store:
        Optional persistent :class:`~repro.runtime.store.SpectrumStore` (or
        its root path) shared by all engines/workers of the sweep.
    solver, dtype:
        Shorthand for ``eig_options``: backend id (``auto``/``dense``/
        ``sparse``/``lanczos``/``power``/``lobpcg``/``amg``) and precision
        (``float64``/``float32``).  ``auto`` honours the
        ``REPRO_SOLVER_BACKEND`` environment variable.  Mutually exclusive
        with ``eig_options``.
    eig_options:
        Full :class:`~repro.solvers.backend.EigenSolverOptions` forwarded to
        every engine/worker of the sweep.
    mincut_backend:
        Max-flow backend id for the convex min-cut baseline (``auto``/
        ``dinic``/``array-dinic``/``scipy``; ``None`` resolves like ``auto``,
        the ``--mincut-backend`` CLI flag).

    Returns
    -------
    list[SweepRow]
        One row per (size, M, method) combination actually evaluated.
    """
    # Imported here: the orchestrator imports this module for the per-graph
    # kernel, so a top-level import would be circular.
    from repro.runtime.orchestrator import SweepOrchestrator

    if eig_options is not None and (solver is not None or dtype is not None):
        raise ValueError("pass either eig_options or solver/dtype, not both")
    if eig_options is None and (solver is not None or dtype is not None):
        eig_options = EigenSolverOptions(
            method=solver or "auto", dtype=dtype or "float64"
        )
    orchestrator = SweepOrchestrator(
        store=store,
        processes=processes,
        num_eigenvalues=num_eigenvalues,
        skip_infeasible=skip_infeasible,
        convex_vertex_cap=convex_vertex_cap,
        max_vertices=max_vertices,
        eig_options=eig_options,
        mincut_backend=mincut_backend,
    )
    report = orchestrator.run_family(
        family, graph_builder, size_params, memory_sizes, methods=methods
    )
    return report.rows
