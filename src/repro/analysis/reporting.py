"""Plain-text and CSV reporting of experiment rows.

The benchmark harness prints the same rows/series the paper's figures plot; a
fixed-width text table keeps the output readable in CI logs, and optional CSV
output (``REPRO_WRITE_RESULTS=1``) makes it easy to re-plot the data with any
external tool.
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "rows_to_csv", "write_csv", "maybe_write_results"]

RowLike = Union[Dict[str, object], object]


def _as_dict(row: RowLike) -> Dict[str, object]:
    if isinstance(row, dict):
        return row
    if hasattr(row, "as_dict"):
        return row.as_dict()  # type: ignore[no-any-return]
    raise TypeError(f"cannot convert {type(row).__name__} to a report row")


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Iterable[RowLike],
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        Dicts or objects with an ``as_dict`` method (the sweep/runtime rows).
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        Format spec applied to float cells.
    title:
        Optional heading printed above the table.
    """
    dict_rows = [_as_dict(r) for r in rows]
    if not dict_rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(dict_rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(col), float_format) for col in columns] for row in dict_rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[RowLike], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise rows to a CSV string."""
    dict_rows = [_as_dict(r) for r in rows]
    if not dict_rows:
        return ""
    columns = list(columns) if columns is not None else list(dict_rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in dict_rows:
        writer.writerow({col: row.get(col) for col in columns})
    return buffer.getvalue()


def write_csv(
    path: Union[str, Path],
    rows: Iterable[RowLike],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to ``path`` as CSV (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows, columns))
    return path


def maybe_write_results(
    name: str,
    rows: Iterable[RowLike],
    columns: Optional[Sequence[str]] = None,
    directory: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Write ``<directory>/<name>.csv`` when ``REPRO_WRITE_RESULTS=1``.

    Used by the benchmark files so that CSV output is opt-in and CI runs stay
    side-effect free.  Returns the written path, or ``None`` when disabled.
    """
    if os.environ.get("REPRO_WRITE_RESULTS", "0") != "1":
        return None
    directory = Path(directory) if directory is not None else Path("benchmarks") / "results"
    return write_csv(directory / f"{name}.csv", rows, columns)
