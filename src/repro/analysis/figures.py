"""Assemble figure series from sweep rows.

Each figure of the paper plots the computed bound against either the size
parameter itself (e.g. ``l`` for the FFT) or against the growth term of the
published analytical bound (e.g. ``l·2^l``), with one series per
(method, M) pair.  :func:`series_from_rows` performs exactly that grouping so
benchmark files can print the same series the figures show and, optionally,
check their shape (monotonicity / approximate linearity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.sweep import SweepRow

__all__ = ["FigureSeries", "series_from_rows", "linear_fit_r_squared"]


@dataclass
class FigureSeries:
    """One figure: an x-axis definition plus named (x, y) series.

    Attributes
    ----------
    name:
        Figure identifier (e.g. ``"fig7-top"``).
    x_label / y_label:
        Axis labels, for reporting.
    series:
        Mapping from series label (e.g. ``"Spectral, M=8"``) to a list of
        ``(x, y)`` points sorted by ``x``.
    """

    name: str
    x_label: str
    y_label: str = "computed I/O bound"
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add_point(self, label: str, x: float, y: float) -> None:
        self.series.setdefault(label, []).append((float(x), float(y)))

    def sorted(self) -> "FigureSeries":
        """Return a copy with every series sorted by x."""
        out = FigureSeries(self.name, self.x_label, self.y_label)
        for label, points in self.series.items():
            out.series[label] = sorted(points)
        return out

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten to rows (series, x, y) for the reporting helpers."""
        rows: List[Dict[str, object]] = []
        for label, points in sorted(self.series.items()):
            for x, y in sorted(points):
                rows.append({"figure": self.name, "series": label, "x": x, "y": y})
        return rows


_METHOD_LABELS = {
    "spectral": "Spectral",
    "spectral-unnormalized": "Spectral (Thm 5)",
    "convex-min-cut": "Convex Min-cut",
}


def series_from_rows(
    name: str,
    rows: Sequence[SweepRow],
    x_of: Callable[[SweepRow], float],
    x_label: str,
) -> FigureSeries:
    """Group sweep rows into the per-(method, M) series a paper figure plots.

    Parameters
    ----------
    name:
        Figure name.
    rows:
        Sweep rows (possibly from several methods and memory sizes).
    x_of:
        Maps a row to its x coordinate (e.g. ``lambda r: r.size_param`` or
        ``lambda r: r.size_param * 2 ** r.size_param``).
    x_label:
        Axis label for reporting.
    """
    figure = FigureSeries(name=name, x_label=x_label)
    for row in rows:
        method_label = _METHOD_LABELS.get(row.method, row.method)
        label = f"{method_label}, M={row.memory_size}"
        figure.add_point(label, x_of(row), row.bound)
    return figure.sorted()


def linear_fit_r_squared(points: Sequence[Tuple[float, float]]) -> float:
    """Coefficient of determination of a least-squares line through ``points``.

    Used by the figure benchmarks to check the paper's claim that the
    computed bound is "roughly linear" in the published growth term (§6.4).
    Returns 1.0 for degenerate inputs (fewer than 3 points or zero variance),
    since those cannot falsify linearity.
    """
    if len(points) < 3:
        return 1.0
    xs = np.asarray([p[0] for p in points], dtype=np.float64)
    ys = np.asarray([p[1] for p in points], dtype=np.float64)
    if np.allclose(ys, ys[0]) or np.allclose(xs, xs[0]):
        return 1.0
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot
