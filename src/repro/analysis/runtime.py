"""Runtime comparison of lower-bound methods (Figure 11).

Figure 11 of the paper plots the wall-clock time of the spectral method
against the convex min-cut method on Bellman-Held-Karp graphs of increasing
size; the convex min-cut runtime explodes (``O(n^5)``) while the spectral
method stays in seconds (``O(h n^2)``).  :func:`runtime_comparison` reproduces
exactly that measurement for arbitrary graph families.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, asdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.baselines.convex_mincut import convex_min_cut_bound
from repro.core.bounds import spectral_bound
from repro.graphs.compgraph import ComputationGraph

__all__ = ["RuntimeRow", "runtime_comparison"]


@dataclass(frozen=True)
class RuntimeRow:
    """Wall-clock time of one method on one graph size."""

    family: str
    size_param: int
    num_vertices: int
    memory_size: int
    method: str
    bound: float
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def runtime_comparison(
    family: str,
    graph_builder: Callable[[int], ComputationGraph],
    size_params: Iterable[int],
    M: int,
    methods: Sequence[str] = ("spectral", "convex-min-cut"),
    num_eigenvalues: int = 100,
    convex_max_vertices: Optional[int] = None,
) -> List[RuntimeRow]:
    """Measure the wall-clock runtime of each method over a graph family.

    ``convex_max_vertices`` mirrors the paper's practical cutoff for the
    ``O(n^5)`` baseline (they stopped at one day of compute; we stop at a
    vertex-count threshold so the benchmark suite finishes in minutes).
    """
    rows: List[RuntimeRow] = []
    for size in size_params:
        graph = graph_builder(size)
        for method in methods:
            if method == "spectral":
                start = time.perf_counter()
                result = spectral_bound(graph, M, num_eigenvalues=num_eigenvalues)
                elapsed = time.perf_counter() - start
                bound = result.value
            elif method == "convex-min-cut":
                if convex_max_vertices is not None and graph.num_vertices > convex_max_vertices:
                    continue
                start = time.perf_counter()
                result = convex_min_cut_bound(graph, M)
                elapsed = time.perf_counter() - start
                bound = result.value
            else:
                raise ValueError(f"unknown method {method!r}")
            rows.append(
                RuntimeRow(
                    family=family,
                    size_param=size,
                    num_vertices=graph.num_vertices,
                    memory_size=M,
                    method=method,
                    bound=float(bound),
                    elapsed_seconds=elapsed,
                )
            )
    return rows
