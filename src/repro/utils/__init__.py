"""Shared utilities: validation helpers, RNG handling, small math helpers."""

from repro.utils.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_probability,
    check_memory_size,
    check_power_of_two,
)
from repro.utils.rng import as_rng
from repro.utils.mathutils import (
    binomial,
    floor_div,
    is_power_of_two,
    next_power_of_two,
    log2_int,
)

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
    "check_memory_size",
    "check_power_of_two",
    "as_rng",
    "binomial",
    "floor_div",
    "is_power_of_two",
    "next_power_of_two",
    "log2_int",
]
