"""Small exact-integer math helpers.

These exist so closed-form bound code (Section 5 of the paper) can work with
exact integers where possible, only falling back to floating point for the
trigonometric parts of the butterfly spectrum.
"""

from __future__ import annotations

from math import comb


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` with the convention ``C(n, k) = 0``
    for ``k < 0`` or ``k > n``."""
    if k < 0 or k > n:
        return 0
    return comb(n, k)


def floor_div(a: int, b: int) -> int:
    """Exact floor division that rejects non-positive divisors."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return a // b


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two greater than or equal to ``n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def log2_int(n: int) -> int:
    """Exact base-2 logarithm of a power of two."""
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    return n.bit_length() - 1
