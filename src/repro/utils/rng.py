"""Random number generator normalisation.

Every stochastic entry point in the package accepts a ``seed`` argument that
may be ``None``, an integer, or an already constructed
:class:`numpy.random.Generator`.  :func:`as_rng` converts any of those into a
``Generator`` so downstream code never has to branch on the seed type.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share one
        stream across multiple helpers).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Useful for parallel experiments that must be reproducible regardless of
    execution order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(
        seed if isinstance(seed, (int, type(None))) else None
    )
    return [np.random.default_rng(child) for child in seq.spawn(count)]
