"""Minimal logging configuration for the package.

The library itself never configures the root logger; it only provides a
namespaced logger factory so applications and the benchmark harness can opt in
to progress output (useful when sweeping large graphs).
"""

from __future__ import annotations

import logging

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional sub-name, e.g. ``"bounds"`` yields ``repro.bounds``.
    """
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER_NAME)


def enable_progress_logging(level: int = logging.INFO) -> None:
    """Attach a basic stream handler to the package logger.

    Intended for scripts and benchmarks, not for library code.  Calling it
    twice is harmless (the handler is only added once).
    """
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)
