"""Argument validation helpers used across the package.

All helpers raise :class:`ValueError` or :class:`TypeError` with a message that
names the offending parameter, so call sites can stay terse while error
messages remain actionable.
"""

from __future__ import annotations

import numbers
from typing import Any


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero.

    Parameters
    ----------
    value:
        Value to validate.  Booleans are rejected even though they are
        ``int`` subclasses, because a ``True`` fast-memory size is almost
        always a bug.
    name:
        Parameter name used in error messages.

    Returns
    -------
    int
        The validated value, coerced to a built-in ``int``.
    """
    check_nonnegative_int(value, name)
    if int(value) <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if int(value) < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return int(value)


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a real number in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_memory_size(value: Any, name: str = "M") -> int:
    """Validate a fast-memory size ``M``.

    The memory model requires at least one slot of fast memory; most bounds
    additionally assume ``M >= 2`` to hold both an operand and a result, but we
    only enforce positivity here so degenerate cases remain expressible.
    """
    return check_positive_int(value, name)


def check_power_of_two(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    value = check_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")
    return value
