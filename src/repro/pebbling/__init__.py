"""Schedule simulation in the two-level memory model (red-blue pebbling).

The lower bounds of the paper are complemented here by *upper* bounds: a
simulator that executes a concrete evaluation order with a concrete eviction
policy and counts the non-trivial I/O it incurs.  Together they sandwich the
optimal I/O ``J*_G``:

    spectral/convex-min-cut lower bound   <=   J*_G   <=   simulated I/O.

The sandwich is used throughout the test-suite as a soundness oracle and in
the ``bench_sandwich`` benchmark.

* :mod:`simulator` — the event-by-event memory simulation,
* :mod:`policies` — eviction policies (Belady/MIN, LRU, FIFO, random),
* :mod:`scheduler` — evaluation-order heuristics (natural, DFS, random,
  fan-out-aware greedy).
"""

from repro.pebbling.policies import EVICTION_POLICIES, make_policy
from repro.pebbling.scheduler import SCHEDULERS, make_schedule
from repro.pebbling.simulator import SimulationResult, simulate_order, best_simulated_io

__all__ = [
    "SimulationResult",
    "simulate_order",
    "best_simulated_io",
    "EVICTION_POLICIES",
    "make_policy",
    "SCHEDULERS",
    "make_schedule",
]
