"""Evaluation-order (schedule) heuristics.

The lower bounds hold for *every* evaluation order; the simulator needs
concrete ones.  Besides the natural and DFS orders from
:mod:`repro.graphs.orders`, this module adds a locality-aware greedy heuristic
that tries to keep the live set small — a cheap stand-in for the I/O-aware
schedulers real systems use, and therefore the most interesting upper bound to
sandwich the spectral lower bound with.
"""

from __future__ import annotations

from typing import List

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.orders import (
    dfs_topological_order,
    natural_topological_order,
    random_topological_order,
)
from repro.utils.rng import SeedLike

__all__ = ["SCHEDULERS", "make_schedule", "greedy_min_live_order"]

SCHEDULERS = ("natural", "dfs", "random", "min-live")


def greedy_min_live_order(graph: ComputationGraph) -> List[int]:
    """Greedy order that always evaluates the ready vertex minimising the
    growth of the live set.

    A vertex is *ready* when all its operands are evaluated; choosing it
    retires every operand whose last use it is and adds one new live value.
    The greedy rule picks the ready vertex with the best (most negative)
    net change, breaking ties by vertex id.  Runs in ``O(n * width)`` which is
    fine for the small/medium graphs the simulator targets.
    """
    n = graph.num_vertices
    indeg = [graph.in_degree(v) for v in range(n)]
    remaining_uses = [graph.out_degree(v) for v in range(n)]
    ready = sorted(v for v in range(n) if indeg[v] == 0)
    order: List[int] = []

    def net_live_change(v: int) -> int:
        retired = sum(1 for p in graph.predecessors(v) if remaining_uses[p] == 1)
        return 1 - retired

    while ready:
        best_idx = 0
        best_key = (net_live_change(ready[0]), ready[0])
        for idx in range(1, len(ready)):
            key = (net_live_change(ready[idx]), ready[idx])
            if key < best_key:
                best_key = key
                best_idx = idx
        v = ready.pop(best_idx)
        order.append(v)
        for p in graph.predecessors(v):
            remaining_uses[p] -= 1
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(order) != n:
        raise ValueError("graph contains a directed cycle")
    return order


def make_schedule(graph: ComputationGraph, name: str, seed: SeedLike = 0) -> List[int]:
    """Build a schedule by heuristic name (``natural``, ``dfs``, ``random``,
    ``min-live``)."""
    if name == "natural":
        return natural_topological_order(graph)
    if name == "dfs":
        return dfs_topological_order(graph)
    if name == "random":
        return random_topological_order(graph, seed=seed)
    if name == "min-live":
        return greedy_min_live_order(graph)
    raise ValueError(f"unknown scheduler {name!r}; expected one of {SCHEDULERS}")
