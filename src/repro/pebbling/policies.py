"""Eviction policies for the memory simulator.

A policy chooses which resident value to evict when fast memory is full.  The
simulator already removes *dead* values (no remaining uses) for free before
consulting the policy, so policies only ever choose among live values.

Available policies:

* ``"belady"`` — evict the value whose next use is furthest in the future
  (Belady/MIN; optimal for read misses under a fixed schedule and the
  strongest practical upper bound here),
* ``"lru"`` — least recently used,
* ``"fifo"`` — first loaded, first evicted,
* ``"random"`` — uniform random victim (with a seeded generator).
"""

from __future__ import annotations

from typing import Dict, Iterable, Protocol

from repro.utils.rng import SeedLike, as_rng

__all__ = ["EvictionPolicy", "EVICTION_POLICIES", "make_policy"]


class EvictionPolicy(Protocol):
    """Protocol implemented by eviction policies."""

    def on_access(self, vertex: int, time_step: int) -> None:
        """Notify the policy that ``vertex`` was accessed at ``time_step``."""

    def choose_victim(self, candidates: Iterable[int], next_use: Dict[int, int]) -> int:
        """Pick one vertex to evict among ``candidates``.

        ``next_use[v]`` is the schedule position of the next use of ``v`` (a
        large sentinel when there is none); policies may ignore it.
        """


class BeladyPolicy:
    """Evict the candidate whose next use is furthest in the future."""

    def on_access(self, vertex: int, time_step: int) -> None:  # noqa: D401 - no state
        return None

    def choose_victim(self, candidates: Iterable[int], next_use: Dict[int, int]) -> int:
        return max(candidates, key=lambda v: (next_use.get(v, float("inf")), v))


class LRUPolicy:
    """Evict the least recently accessed candidate."""

    def __init__(self) -> None:
        self._last_access: Dict[int, int] = {}

    def on_access(self, vertex: int, time_step: int) -> None:
        self._last_access[vertex] = time_step

    def choose_victim(self, candidates: Iterable[int], next_use: Dict[int, int]) -> int:
        return min(candidates, key=lambda v: (self._last_access.get(v, -1), v))


class FIFOPolicy:
    """Evict the candidate that has been resident the longest."""

    def __init__(self) -> None:
        self._load_time: Dict[int, int] = {}

    def on_access(self, vertex: int, time_step: int) -> None:
        self._load_time.setdefault(vertex, time_step)

    def choose_victim(self, candidates: Iterable[int], next_use: Dict[int, int]) -> int:
        return min(candidates, key=lambda v: (self._load_time.get(v, -1), v))


class RandomPolicy:
    """Evict a uniformly random candidate (seeded for reproducibility)."""

    def __init__(self, seed: SeedLike = 0) -> None:
        self._rng = as_rng(seed)

    def on_access(self, vertex: int, time_step: int) -> None:
        return None

    def choose_victim(self, candidates: Iterable[int], next_use: Dict[int, int]) -> int:
        candidates = list(candidates)
        return candidates[int(self._rng.integers(len(candidates)))]


EVICTION_POLICIES = ("belady", "lru", "fifo", "random")


def make_policy(name: str, seed: SeedLike = 0) -> EvictionPolicy:
    """Instantiate an eviction policy by name."""
    if name == "belady":
        return BeladyPolicy()
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    raise ValueError(f"unknown eviction policy {name!r}; expected one of {EVICTION_POLICIES}")
