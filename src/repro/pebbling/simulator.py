"""Two-level-memory simulation of a concrete evaluation order.

The simulator executes a topological evaluation order under the memory model
of Section 3:

* fast memory holds at most ``M`` values; slow memory is unbounded;
* evaluating a vertex requires all of its operands plus one free slot for the
  result to be in fast memory simultaneously (so the graph's maximum
  in-degree must be at most ``M - 1``);
* recomputation is disallowed — evicting a value that is still needed and has
  never been written to slow memory costs one **write**; accessing a value
  that is not resident costs one **read** (it is guaranteed to be in slow
  memory at that point, precisely because of the write rule);
* *trivial* I/O is free: inputs materialise into fast memory directly from
  the user when they are first evaluated, and outputs (values with no
  remaining uses) are reported to the user on eviction at no cost.

The total of reads and writes is the non-trivial I/O ``J_G(X)`` of the order,
an upper bound on the optimal ``J*_G`` — the counterpart of the paper's lower
bounds used throughout the tests and the "sandwich" benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.orders import is_topological_order
from repro.pebbling.policies import EvictionPolicy, make_policy
from repro.pebbling.scheduler import make_schedule
from repro.utils.rng import SeedLike
from repro.utils.validation import check_memory_size

__all__ = ["SimulationResult", "simulate_order", "best_simulated_io"]

#: Sentinel "never used again" position for next-use bookkeeping.
_NEVER = 1 << 60


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one evaluation order.

    Attributes
    ----------
    total_io:
        Non-trivial reads + writes incurred.
    reads / writes:
        The two components of ``total_io``.
    trivial_reads / trivial_writes:
        Free I/O under the paper's conventions (first materialisation of
        inputs, final reporting of outputs); tracked for completeness.
    max_resident:
        Peak number of values simultaneously resident in fast memory.
    memory_size:
        The fast-memory capacity ``M`` used.
    policy:
        Name of the eviction policy used.
    """

    total_io: int
    reads: int
    writes: int
    trivial_reads: int
    trivial_writes: int
    max_resident: int
    memory_size: int
    policy: str


def simulate_order(
    graph: ComputationGraph,
    order: Sequence[int],
    M: int,
    policy: str = "belady",
    seed: SeedLike = 0,
    validate_order: bool = True,
) -> SimulationResult:
    """Simulate the evaluation of ``graph`` in ``order`` with fast memory ``M``.

    Parameters
    ----------
    graph:
        The computation graph.
    order:
        A topological evaluation order (``order[t]`` evaluated at step ``t``).
    M:
        Fast-memory capacity in values.
    policy:
        Eviction policy name (see :mod:`repro.pebbling.policies`).
    seed:
        Seed for randomised policies.
    validate_order:
        Set to False to skip the (linear-time) topological-order check when
        the caller guarantees validity.

    Raises
    ------
    ValueError
        If the order is invalid or some vertex needs more than ``M - 1``
        operands (the computation cannot run in the given memory).
    """
    check_memory_size(M)
    if validate_order and not is_topological_order(graph, order):
        raise ValueError("order is not a topological order of the graph")

    eviction: EvictionPolicy = make_policy(policy, seed=seed)
    out_degree = [graph.out_degree(v) for v in graph.vertices()]
    remaining_uses = list(out_degree)

    # Next-use positions per vertex for Belady: list of consumer time-steps.
    position = [0] * graph.num_vertices
    for t, v in enumerate(order):
        position[v] = t
    use_positions: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for u, v in graph.edges():
        use_positions[u].append(position[v])
    for v in use_positions:
        use_positions[v].sort(reverse=True)  # pop() yields the earliest next use

    resident: Set[int] = set()
    in_slow: Set[int] = set()
    reads = writes = 0
    trivial_reads = trivial_writes = 0
    max_resident = 0

    def next_use(v: int) -> int:
        uses = use_positions[v]
        return uses[-1] if uses else _NEVER

    def evict_until(space_needed: int, pinned: Set[int], time_step: int) -> None:
        nonlocal writes, trivial_writes
        while len(resident) + space_needed > M:
            # Free dead values first (no remaining uses): zero-cost eviction.
            dead = [u for u in resident if remaining_uses[u] == 0 and u not in pinned]
            if dead:
                victim = dead[0]
                resident.discard(victim)
                continue
            candidates = [u for u in resident if u not in pinned]
            if not candidates:
                raise ValueError(
                    f"fast memory of size {M} cannot hold the {len(pinned)} values "
                    f"pinned at step {time_step}; increase M"
                )
            victim = eviction.choose_victim(candidates, {u: next_use(u) for u in candidates})
            resident.discard(victim)
            if remaining_uses[victim] > 0:
                if victim not in in_slow:
                    writes += 1
                    in_slow.add(victim)
            else:  # pragma: no cover - dead values are handled above
                trivial_writes += 0

    for t, v in enumerate(order):
        parents = graph.predecessors(v)
        if len(parents) + 1 > M:
            raise ValueError(
                f"vertex {v} has in-degree {len(parents)} which does not fit in fast "
                f"memory of size {M} together with its result"
            )
        pinned = set(parents) | {v}
        # Bring missing parents into fast memory (each read is one I/O).
        missing = [p for p in parents if p not in resident]
        for p in missing:
            evict_until(1, pinned, t)
            resident.add(p)
            reads += 1
            eviction.on_access(p, t)
        for p in parents:
            if p in resident:
                eviction.on_access(p, t)
            # Consume one use of the parent.
            remaining_uses[p] -= 1
            uses = use_positions[p]
            if uses and uses[-1] == t:
                uses.pop()
        # Room for the result, then "evaluate" v.
        evict_until(1, pinned, t)
        resident.add(v)
        eviction.on_access(v, t)
        if not parents:
            trivial_reads += 1  # input materialised directly from the user
        if remaining_uses[v] == 0:
            trivial_writes += 1  # an output reported directly to the user
        max_resident = max(max_resident, len(resident))

    return SimulationResult(
        total_io=reads + writes,
        reads=reads,
        writes=writes,
        trivial_reads=trivial_reads,
        trivial_writes=trivial_writes,
        max_resident=max_resident,
        memory_size=M,
        policy=policy,
    )


def best_simulated_io(
    graph: ComputationGraph,
    M: int,
    schedulers: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    num_random_orders: int = 3,
    seed: SeedLike = 0,
) -> SimulationResult:
    """Best (lowest-I/O) simulation across several schedules and policies.

    A cheap constructive upper bound on ``J*_G``: it tries the deterministic
    schedule heuristics plus a few random topological orders, each under each
    requested eviction policy, and returns the best result.
    """
    check_memory_size(M)
    schedulers = list(schedulers) if schedulers is not None else ["natural", "dfs"]
    policies = list(policies) if policies is not None else ["belady"]
    orders = [make_schedule(graph, name) for name in schedulers]
    for i in range(num_random_orders):
        orders.append(make_schedule(graph, "random", seed=hash((seed, i)) % (2**31)))
    best: Optional[SimulationResult] = None
    for order in orders:
        for policy in policies:
            result = simulate_order(graph, order, M, policy=policy, validate_order=False)
            if best is None or result.total_io < best.total_io:
                best = result
    assert best is not None
    return best
