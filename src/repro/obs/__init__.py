"""Unified observability: tracing, metrics, and profiling hooks.

The three legs, all default-off or always-cheap:

* :mod:`repro.obs.tracing` — span-based tracer with cross-process
  propagation through the sweep pool; ``obs.span("eigensolve", ...)`` is
  the instrumentation idiom and is a shared no-op object when disabled.
* :mod:`repro.obs.metrics` — the process-global :class:`MetricsRegistry`
  (promoted from ``repro.server.metrics``, which re-exports it); hot
  seams record histograms/counters into :func:`global_registry`.
* :mod:`repro.obs.profiling` — per-task cProfile capture behind
  ``REPRO_PROFILE=1``, written next to the trace file.
* :mod:`repro.obs.perf` — the performance-regression sentinel over the
  ``BENCH_HISTORY.jsonl`` ledger (``python -m repro obs perf check``).

Tracing is production-safe: head-based sampling (``REPRO_TRACE_SAMPLE``)
decides once per trace root, unsampled requests buffer their spans and
keep them only if the request crosses ``REPRO_SLOW_QUERY_SECONDS``.

``python -m repro obs report trace.jsonl`` renders a collected trace
(:mod:`repro.obs.report`; ``--json`` for machine-readable output).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    global_registry,
    latency_quantiles,
    merge_expositions,
    process_labels,
    set_process_labels,
)
from .profiling import maybe_profile, profile_path, profiling_enabled
from .report import build_trees, render_report, report_as_json, self_times
from .tracing import (
    SpanRecord,
    TraceContext,
    Tracer,
    configure,
    current_context,
    current_trace_context,
    disable,
    enabled,
    get_tracer,
    load_spans,
    merge_shards,
    recent_spans,
    sample_rate_from_env,
    shard_path,
    span,
    worker_configure,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "latency_quantiles",
    "merge_expositions",
    "process_labels",
    "set_process_labels",
    # tracing
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "configure",
    "current_context",
    "current_trace_context",
    "disable",
    "enabled",
    "get_tracer",
    "load_spans",
    "merge_shards",
    "recent_spans",
    "sample_rate_from_env",
    "shard_path",
    "span",
    "worker_configure",
    # profiling
    "maybe_profile",
    "profile_path",
    "profiling_enabled",
    # report
    "build_trees",
    "render_report",
    "report_as_json",
    "self_times",
]
