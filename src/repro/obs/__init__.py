"""Unified observability: tracing, metrics, and profiling hooks.

The three legs, all default-off or always-cheap:

* :mod:`repro.obs.tracing` — span-based tracer with cross-process
  propagation through the sweep pool; ``obs.span("eigensolve", ...)`` is
  the instrumentation idiom and is a shared no-op object when disabled.
* :mod:`repro.obs.metrics` — the process-global :class:`MetricsRegistry`
  (promoted from ``repro.server.metrics``, which re-exports it); hot
  seams record histograms/counters into :func:`global_registry`.
* :mod:`repro.obs.profiling` — per-task cProfile capture behind
  ``REPRO_PROFILE=1``, written next to the trace file.

``python -m repro obs report trace.jsonl`` renders a collected trace
(:mod:`repro.obs.report`).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    global_registry,
    process_labels,
    set_process_labels,
)
from .profiling import maybe_profile, profile_path, profiling_enabled
from .report import build_trees, render_report, self_times
from .tracing import (
    SpanRecord,
    TraceContext,
    Tracer,
    configure,
    current_context,
    current_trace_context,
    disable,
    enabled,
    get_tracer,
    load_spans,
    merge_shards,
    recent_spans,
    shard_path,
    span,
    worker_configure,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "process_labels",
    "set_process_labels",
    # tracing
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "configure",
    "current_context",
    "current_trace_context",
    "disable",
    "enabled",
    "get_tracer",
    "load_spans",
    "merge_shards",
    "recent_spans",
    "shard_path",
    "span",
    "worker_configure",
    # profiling
    "maybe_profile",
    "profile_path",
    "profiling_enabled",
    # report
    "build_trees",
    "render_report",
    "self_times",
]
