"""Span-based tracing with cross-process propagation.

A *span* is one timed unit of work (an eigensolve, a max-flow call, a
sweep task, an HTTP request) carrying a ``trace_id`` shared by every span
of one logical operation, its own ``span_id``, and a ``parent_id`` link.
Spans nest through a thread-local stack, so instrumented seams do not
need to thread context objects through call signatures::

    with obs.span("eigensolve", fingerprint=fp, backend="lanczos"):
        ...

Tracing is **off by default** and zero-cost when off: :func:`span`
returns a shared no-op context manager without allocating, and
:func:`current_context` returns ``None``.  :func:`configure` turns it on
for the process; ``--trace out.jsonl`` on the CLI is the usual entry.

Finished spans go two places: appended as one JSON object per line to the
configured JSONL path (flushed per span, so a forked worker never
inherits buffered parent spans), and into a bounded in-memory ring buffer
(:func:`recent_spans`) for the server's slow-query log and for tests.

Cross-process propagation
-------------------------

A ``ProcessPoolExecutor`` worker cannot append to the parent's file
without interleaving, so each worker writes a private *shard*:

1. the parent snapshots :func:`current_trace_context` and ships it inside
   the pickled task payload together with a shard base path;
2. the worker calls :func:`worker_configure`, which replaces any tracer
   inherited over ``fork`` with one writing ``<base>.shard-<pid>.jsonl``
   and re-roots its span stack under the shipped context — worker spans
   carry the parent's ``trace_id`` and hang off the sweep span;
3. after the pool drains, the parent calls :func:`merge_shards` to fold
   every shard into the main JSONL file (append + delete; span records
   are self-contained, so ordering never affects the reconstructed tree).

Production-safe sampling
------------------------

Always-on tracing under real traffic needs head-based sampling: the
keep/drop decision is made **once, where a trace is rooted** (the first
span with no parent — one HTTP request, one sweep) by drawing against
``REPRO_TRACE_SAMPLE`` (a probability in ``[0, 1]``; unset means keep
everything, preserving the pre-sampling behaviour).  The decision rides
inside :class:`TraceContext`, so spans of one trace never disagree —
including across the process boundary into pool workers.

Spans of an *unsampled* trace are not discarded immediately: they
accumulate in a bounded per-trace buffer, and when the trace's root span
finishes the buffer is either dropped (the common case — no I/O was ever
paid) or, if the root's wall time crossed ``REPRO_SLOW_QUERY_SECONDS``,
flushed whole to the sink.  Slow queries therefore **always** keep their
traces, however aggressive the sample rate — exactly the requests worth
debugging.  Ids are allocated either way, so ``X-Repro-Trace-Id`` and the
``trace_id`` fields of answers stay meaningful even for dropped traces.

``REPRO_TRACE_SAMPLE_SEED`` seeds the sampler (tests pin it for
deterministic keep sets); unset, the sampler is seeded from the OS.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "TraceContext",
    "SpanRecord",
    "Tracer",
    "configure",
    "disable",
    "enabled",
    "get_tracer",
    "span",
    "current_context",
    "current_trace_context",
    "recent_spans",
    "worker_configure",
    "merge_shards",
    "sample_rate_from_env",
    "SAMPLE_ENV_VAR",
    "SAMPLE_SEED_ENV_VAR",
    "SLOW_KEEP_ENV_VAR",
]

#: Ring-buffer capacity for finished spans kept in memory.
RING_CAPACITY = 512

#: Per-trace capacity of the pending buffer holding an unsampled trace's
#: spans until its root decides their fate; beyond this the oldest spans
#: are dropped (a slow-query flush keeps the most recent window).
PENDING_CAPACITY = 256

#: Probability of keeping a trace, decided once at its root; unset or
#: unparsable means 1.0 (keep everything).
SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"

#: Optional integer seed for the sampler — tests pin it so the kept set
#: is deterministic.
SAMPLE_SEED_ENV_VAR = "REPRO_TRACE_SAMPLE_SEED"

#: Roots slower than this many seconds keep their trace even when the
#: sampler dropped it (shared with the server's slow-query log).
SLOW_KEEP_ENV_VAR = "REPRO_SLOW_QUERY_SECONDS"


def _new_id() -> str:
    return os.urandom(8).hex()


def sample_rate_from_env() -> float:
    """The head-sampling probability from ``$REPRO_TRACE_SAMPLE``.

    Clamped to ``[0, 1]``; unset or unparsable reads as 1.0 so plain
    ``--trace`` runs keep every span, exactly as before sampling existed.
    """
    raw = os.environ.get(SAMPLE_ENV_VAR)
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


def _slow_keep_from_env() -> Optional[float]:
    raw = os.environ.get(SLOW_KEEP_ENV_VAR)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, span_id) pair identifying a point in a trace.

    Picklable by design: this is what crosses the process boundary inside
    a task payload.  ``sampled`` carries the head-based sampling decision
    made at the trace root, so every process contributing spans to one
    trace keeps or drops them consistently.
    """

    trace_id: str
    span_id: str
    sampled: bool = True


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as written to the JSONL export."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    pid: int
    start_unix: float
    wall_seconds: float
    cpu_seconds: float
    status: str
    attrs: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "start_unix": self.start_unix,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    trace_id = None
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created by :meth:`Tracer.span`, finished on exit."""

    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id", "sampled",
        "is_root", "attrs", "_start_wall", "_start_cpu", "_start_unix",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
        sampled: bool = True,
        is_root: bool = False,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.sampled = sampled
        self.is_root = is_root
        self.attrs = attrs

    def set_attr(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._start_unix = time.time()
        self._start_wall = time.perf_counter()
        self._start_cpu = time.thread_time()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        wall = time.perf_counter() - self._start_wall
        cpu = time.thread_time() - self._start_cpu
        self._tracer._pop(self)
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            pid=os.getpid(),
            start_unix=self._start_unix,
            wall_seconds=wall,
            cpu_seconds=cpu,
            status="error" if exc_type is not None else "ok",
            attrs=self.attrs,
        )
        self._tracer._finish(record, self)


class Tracer:
    """Owns the output sink, ring buffer, sampler, and per-thread span stacks."""

    def __init__(
        self,
        path: Optional[str] = None,
        root_context: Optional[TraceContext] = None,
        sample_rate: Optional[float] = None,
        sample_seed: Optional[int] = None,
        slow_keep_seconds: Optional[float] = None,
    ) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._root_context = root_context
        self._local = threading.local()
        self._write_lock = threading.Lock()
        self._ring: List[SpanRecord] = []
        self._ring_lock = threading.Lock()
        self._file = open(self._path, "a", encoding="utf-8") if self._path else None
        if sample_rate is None:
            sample_rate = sample_rate_from_env()
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        if sample_seed is None:
            raw_seed = os.environ.get(SAMPLE_SEED_ENV_VAR)
            if raw_seed:
                try:
                    sample_seed = int(raw_seed)
                except ValueError:
                    sample_seed = None
        self._rng = random.Random(sample_seed)
        self._rng_lock = threading.Lock()
        if slow_keep_seconds is None:
            slow_keep_seconds = _slow_keep_from_env()
        self.slow_keep_seconds = slow_keep_seconds
        # Spans of unsampled traces, held until their root decides whether
        # the trace is dropped (fast) or kept (slow-query escape hatch).
        self._pending: Dict[str, List[SpanRecord]] = {}
        self._pending_lock = threading.Lock()
        self._sampling_stats = {
            "roots": 0, "sampled": 0, "unsampled": 0, "slow_kept": 0,
        }

    # -- span stack -------------------------------------------------------

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: _Span) -> None:
        self._stack().append(span)

    def _pop(self, span: _Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit; drop it and everything above
            del stack[stack.index(span):]

    def current(self) -> Optional[_Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> Optional[TraceContext]:
        active = self.current()
        if active is not None:
            return TraceContext(active.trace_id, active.span_id, active.sampled)
        return self._root_context

    # -- span creation ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        parent = self.current_context()
        if parent is not None:
            return _Span(
                self, name, parent.trace_id, parent.span_id, attrs,
                sampled=parent.sampled,
            )
        # A new trace roots here: make the head-sampling decision exactly
        # once and let every descendant (local or shipped to a worker)
        # inherit it through the context.
        sampled = self._sample()
        return _Span(
            self, name, _new_id(), None, attrs, sampled=sampled, is_root=True
        )

    def _sample(self) -> bool:
        stats = self._sampling_stats
        rate = self.sample_rate
        if rate >= 1.0:
            decision = True
        elif rate <= 0.0:
            decision = False
        else:
            with self._rng_lock:
                decision = self._rng.random() < rate
        with self._pending_lock:
            stats["roots"] += 1
            stats["sampled" if decision else "unsampled"] += 1
        return decision

    def sampling_stats(self) -> Dict[str, int]:
        """Sampler counters: roots seen, kept, dropped, slow-query keeps."""
        with self._pending_lock:
            return dict(self._sampling_stats)

    # -- output -----------------------------------------------------------

    def _finish(self, record: SpanRecord, span: Optional[_Span] = None) -> None:
        if span is not None and not span.sampled:
            self._finish_unsampled(record, span)
            return
        self._emit(record)

    def _finish_unsampled(self, record: SpanRecord, span: _Span) -> None:
        """Buffer an unsampled span; the trace root settles the buffer.

        Non-root spans append to the trace's bounded pending buffer (no
        I/O).  The root span then either flushes the whole buffer — the
        slow-query escape: its wall time crossed ``slow_keep_seconds`` —
        or drops it, which is the entire cost of an unsampled trace.
        """
        if not span.is_root:
            with self._pending_lock:
                buffer = self._pending.setdefault(record.trace_id, [])
                buffer.append(record)
                if len(buffer) > PENDING_CAPACITY:
                    del buffer[: len(buffer) - PENDING_CAPACITY]
            return
        with self._pending_lock:
            buffered = self._pending.pop(record.trace_id, [])
            keep = (
                self.slow_keep_seconds is not None
                and record.wall_seconds >= self.slow_keep_seconds
            )
            if keep:
                self._sampling_stats["slow_kept"] += 1
        if keep:
            for pending in buffered:
                self._emit(pending)
            self._emit(record)

    def _emit(self, record: SpanRecord) -> None:
        with self._ring_lock:
            self._ring.append(record)
            if len(self._ring) > RING_CAPACITY:
                del self._ring[: len(self._ring) - RING_CAPACITY]
        if self._file is not None:
            line = json.dumps(record.as_dict(), sort_keys=True)
            with self._write_lock:
                self._file.write(line + "\n")
                self._file.flush()

    def recent(self) -> List[SpanRecord]:
        with self._ring_lock:
            return list(self._ring)

    def close(self) -> None:
        if self._file is not None:
            with self._write_lock:
                self._file.close()
                self._file = None

    @property
    def path(self) -> Optional[str]:
        return self._path


_TRACER: Optional[Tracer] = None
_TRACER_LOCK = threading.Lock()


def configure(
    path: Optional[str] = None,
    root_context: Optional[TraceContext] = None,
    sample_rate: Optional[float] = None,
    sample_seed: Optional[int] = None,
    slow_keep_seconds: Optional[float] = None,
) -> Tracer:
    """Enable tracing for this process, replacing any previous tracer.

    ``sample_rate`` / ``sample_seed`` / ``slow_keep_seconds`` default to
    the ``REPRO_TRACE_SAMPLE`` / ``REPRO_TRACE_SAMPLE_SEED`` /
    ``REPRO_SLOW_QUERY_SECONDS`` environment variables, so a serving
    process enables production-safe sampling purely through env config.
    """
    global _TRACER
    with _TRACER_LOCK:
        if _TRACER is not None:
            _TRACER.close()
        _TRACER = Tracer(
            path,
            root_context,
            sample_rate=sample_rate,
            sample_seed=sample_seed,
            slow_keep_seconds=slow_keep_seconds,
        )
        return _TRACER


def disable() -> None:
    """Turn tracing off; :func:`span` reverts to the no-op path."""
    global _TRACER
    with _TRACER_LOCK:
        if _TRACER is not None:
            _TRACER.close()
        _TRACER = None


def enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, **attrs: Any):
    """A context manager timing one unit of work; no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def current_context() -> Optional[TraceContext]:
    """The active (trace_id, span_id), or ``None`` when disabled / idle."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_context()


# The name used by call sites that ship context across processes; kept as
# an alias so intent reads at the call site.
current_trace_context = current_context


def recent_spans() -> List[SpanRecord]:
    """Finished spans from the in-memory ring buffer (newest last)."""
    tracer = _TRACER
    if tracer is None:
        return []
    return tracer.recent()


# -- cross-process plumbing -----------------------------------------------

def shard_path(shard_base: str, pid: Optional[int] = None) -> str:
    """The shard file a worker with ``pid`` writes its spans to."""
    return f"{shard_base}.shard-{pid if pid is not None else os.getpid()}.jsonl"


def worker_configure(
    parent: Optional[TraceContext],
    shard_base: Optional[str],
) -> None:
    """(Re)configure tracing inside a pool worker.

    Always replaces whatever tracer the worker inherited (over ``fork``
    the parent's open file object would otherwise be shared), rooting new
    spans under ``parent``.  With ``parent is None`` the worker is fully
    silenced — the no-op guarantee holds across the pool too.

    The parent's sampling decision rides inside ``parent.sampled``: an
    unsampled sweep ships unsampled contexts, so worker spans buffer (no
    shard I/O) and are dropped when the worker's tracer closes.  The
    slow-query keep is per-process — only spans living in the process
    whose root crossed the threshold are retained.
    """
    if parent is None:
        disable()
        return
    path = shard_path(shard_base) if shard_base else None
    configure(path, root_context=parent)


def merge_shards(main_path: str, shard_base: str) -> int:
    """Fold every worker shard into the main JSONL file; returns span count.

    Shards are appended whole and deleted.  Records are self-contained
    (ids, parent links, timestamps), so append order does not matter for
    tree reconstruction.
    """
    directory = os.path.dirname(os.path.abspath(shard_base)) or "."
    prefix = os.path.basename(shard_base) + ".shard-"
    merged = 0
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return 0
    with open(main_path, "a", encoding="utf-8") as out:
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".jsonl")):
                continue
            shard = os.path.join(directory, name)
            with open(shard, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        out.write(line + "\n")
                        merged += 1
            os.remove(shard)
    return merged


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a trace JSONL file into a list of span dicts."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
