"""Thread-safe metrics registry with Prometheus text rendering.

Pure stdlib, deliberately small: counters, gauges and latency histograms,
each optionally labelled, rendered in the Prometheus text exposition
format (``GET /metrics``) and snapshot-able as JSON (``GET /v1/stats``).

This module is the process-wide home of the registry machinery.  It began
life as ``repro.server.metrics`` (which now re-exports it unchanged) and
was promoted here so every layer of the stack — engine, solvers, cache
tiers, pool, server — can record into one :func:`global_registry` without
importing the serving stack.

Two kinds of values coexist:

* **owned** metrics, mutated by the instrumented code itself (eigensolve
  latency histograms, cache-tier lookup counters, request counts);
* **passthrough** metrics, read at scrape time from a callback — this is
  how the service-level eigensolve / flow-call / cache-hit counters that
  live inside :class:`~repro.runtime.service.BoundService` become visible
  over the wire without double-counting, and what makes warm-store
  zero-solve behaviour observable (``repro_eigensolves_total`` staying at
  0 across a whole load run *is* the serving-layer cache contract).

Every mutation takes one lock held for a few dict operations; scrape-time
callbacks run outside it.

The process-global registry
---------------------------

:func:`global_registry` returns the singleton registry the in-tree
instrumentation seams record into:

=====================================  =========  ==========================
metric                                 kind       recorded by
=====================================  =========  ==========================
``repro_eigensolve_seconds``           histogram  :class:`~repro.solvers.
                                                  spectrum_cache.SpectrumCache`
                                                  per real eigensolve, by
                                                  ``backend``/``dtype``
``repro_spectrum_lookups_total``       counter    every spectrum fetch, by
                                                  ``tier`` (memory/store/solve)
``repro_backend_solves_total``         counter    :func:`~repro.solvers.
                                                  backends.solve_smallest`, by
                                                  ``backend``/``warm``
``repro_amg_cycles_total``             counter    one per AMG V-cycle applied
``repro_maxflow_seconds``              histogram  per max-flow call, by
                                                  ``backend``
``repro_cut_lookups_total``            counter    convex min-cut values, by
                                                  ``tier`` (memory/store/flow)
``repro_store_io_seconds``             histogram  persistent store I/O, by
                                                  ``store``/``op``
``repro_admission_wait_seconds``       histogram  queue wait of admitted
                                                  solve batches
``repro_coalesce_total``               counter    coalescer claims, by
                                                  ``role`` (leader/follower)
``repro_slow_queries_total``           counter    requests over the
                                                  ``REPRO_SLOW_QUERY_SECONDS``
                                                  threshold
=====================================  =========  ==========================

``GET /metrics`` renders the server's own registry *and* the global one,
so these appear on the wire automatically.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "process_labels",
    "set_process_labels",
    "merge_expositions",
    "latency_quantiles",
]

#: Histogram bucket upper bounds (seconds) spanning warm in-memory answers
#: (sub-millisecond) to cold paper-scale eigensolves.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


#: Constant labels stamped onto every rendered sample of this process —
#: how the pre-forked serving fleet keeps per-worker series apart (each
#: worker calls ``set_process_labels(worker="<id>")`` right after fork).
_PROCESS_LABELS: Dict[str, str] = {}


def set_process_labels(**labels: Optional[str]) -> None:
    """Attach constant labels to every metric this process renders.

    Affects the Prometheus text exposition only: ``value()`` / ``total()``
    / ``snapshot()`` are label-blind aggregates and stay unchanged, so
    in-process assertions and ``/v1/stats`` keep their meaning.  A value
    of ``None`` removes the label; the registry starts with none, making
    this a strict no-op for single-process use.
    """
    for name, value in labels.items():
        if value is None:
            _PROCESS_LABELS.pop(name, None)
        else:
            _PROCESS_LABELS[name] = str(value)


def process_labels() -> Dict[str, str]:
    """A copy of the process-wide constant labels (empty by default)."""
    return dict(_PROCESS_LABELS)


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    names = tuple(_PROCESS_LABELS) + tuple(labelnames)
    values = tuple(_PROCESS_LABELS.values()) + tuple(labelvalues)
    if not names:
        return ""
    escaped = (
        str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        for value in values
    )
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(names, escaped)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared bookkeeping: name, help text, label schema, value store."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def _label_key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels: str) -> float:
        """Current value of one label combination (0 if never touched)."""
        with self._lock:
            return self._values.get(self._label_key(labels), 0.0)

    def reset(self) -> None:
        """Forget every recorded sample (callback metrics are unaffected)."""
        with self._lock:
            self._values.clear()

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        entries = self.samples() or ([((), 0.0)] if not self.labelnames else [])
        for labelvalues, value in entries:
            labels = _format_labels(self.labelnames, labelvalues)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Counter(_Metric):
    """A monotonically increasing count, or a callback-backed passthrough."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        if callback is not None and labelnames:
            raise ValueError("callback counters cannot carry labels")
        super().__init__(name, help_text, labelnames)
        self._callback = callback

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._callback is not None:
            return [((), float(self._callback()))]
        return super().samples()

    def total(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return super().total()


class Gauge(_Metric):
    """A value that can go up and down, or a callback-backed passthrough."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        if callback is not None and labelnames:
            raise ValueError("callback gauges cannot carry labels")
        super().__init__(name, help_text, labelnames)
        self._callback = callback

    def set(self, value: float, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._callback is not None:
            return [((), float(self._callback()))]
        return super().samples()

    def total(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return super().total()


class Histogram(_Metric):
    """A latency distribution with cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        # Per label key: [per-bucket counts..., +Inf count], sum.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def count(self, **labels: str) -> int:
        """Number of observations for one label combination."""
        with self._lock:
            return sum(self._counts.get(self._label_key(labels), ()))

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        With labels, one label combination's distribution; without, the
        aggregate over every combination (how p95 eigensolve latency is
        reported across backends/dtypes).  Mirrors PromQL's
        ``histogram_quantile``: the target rank is located in a cumulative
        bucket and interpolated linearly between the bucket's bounds
        (lower bound 0 for the first).  A rank landing in the ``+Inf``
        bucket degrades to the highest finite bound.  ``None`` when there
        are no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if labels or self.labelnames:
                if labels:
                    counts = self._counts.get(self._label_key(labels))
                    merged = list(counts) if counts else None
                else:
                    merged = None
                    for counts in self._counts.values():
                        if merged is None:
                            merged = list(counts)
                        else:
                            merged = [a + b for a, b in zip(merged, counts)]
            else:
                counts = self._counts.get(())
                merged = list(counts) if counts else None
        if not merged or sum(merged) == 0:
            return None
        total = sum(merged)
        target = q * total
        cumulative = 0
        for index, count in enumerate(merged):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count > 0:
                if index >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (target - previous) / count
                return lower + (upper - lower) * fraction
        return self.buckets[-1]

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()

    def total(self) -> float:
        with self._lock:
            return float(sum(sum(counts) for counts in self._counts.values()))

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(
                (key, float(sum(counts))) for key, counts in self._counts.items()
            )

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
        for labelvalues, counts in items:
            cumulative = 0
            for upper, count in zip(self.buckets + (float("inf"),), counts):
                cumulative += count
                labels = _format_labels(
                    self.labelnames + ("le",),
                    labelvalues + (_format_value(upper),),
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(self.labelnames, labelvalues)
            lines.append(f"{self.name}_sum{labels} {repr(sums[labelvalues])}")
            lines.append(f"{self.name}_count{labels} {cumulative}")
        return lines


class MetricsRegistry:
    """All metrics of one scope, creatable once and rendered together."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labelnames != metric.labelnames
                ):
                    raise ValueError(
                        f"metric {metric.name!r} already registered with a "
                        f"different kind or label schema"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Counter:
        metric = self._register(Counter(name, help_text, labelnames, callback))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self._register(Gauge(name, help_text, labelnames, callback))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._register(Histogram(name, help_text, labelnames, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition (``GET /metrics``)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, float]:
        """Per-metric totals as JSON-friendly numbers (``GET /v1/stats``)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.total() for metric in metrics}

    def reset_values(self) -> None:
        """Zero every owned metric, keeping registrations and callbacks.

        For freshly forked worker processes: a child inherits the parent's
        accumulated counter state by copy-on-write, and without this its
        ``/metrics`` would report solves and waits that happened before it
        existed.  Callback-backed passthroughs are left alone — they read
        live state that is itself per-process.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


def merge_expositions(texts: Sequence[str]) -> str:
    """Merge several Prometheus text expositions into one valid exposition.

    This is the fleet's single pane of glass: each worker renders its own
    registry (samples already stamped with its ``worker=<id>`` process
    label), the scraper collects the texts, and this function regroups
    them so every metric family appears **once** — first ``# HELP`` /
    ``# TYPE`` wins, sample lines from every input are concatenated under
    it in input order.  Sample lines are preserved verbatim (labels,
    values, exemplars-free format), so per-worker series stay distinct
    and label-blind sums over the merged text equal the sum over the
    individual expositions.
    """
    family_order: List[str] = []
    headers: Dict[str, List[str]] = {}
    samples: Dict[str, List[str]] = {}

    def family_of(sample_name: str) -> str:
        # Histogram series share a family with their _bucket/_sum/_count
        # suffixes stripped, so all of a histogram renders contiguously.
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
        return sample_name

    def ensure(family: str) -> None:
        if family not in samples:
            family_order.append(family)
            headers[family] = []
            samples[family] = []

    for text in texts:
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                parts = stripped.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    family = family_of(parts[2])
                    ensure(family)
                    if not any(h.startswith(f"# {parts[1]} ") for h in headers[family]):
                        headers[family].append(stripped)
                continue
            name = stripped.split("{", 1)[0].split(None, 1)[0]
            family = family_of(name)
            ensure(family)
            samples[family].append(stripped)

    lines: List[str] = []
    for family in family_order:
        lines.extend(headers[family])
        lines.extend(samples[family])
    return "\n".join(lines) + "\n" if lines else ""


#: The latency histograms whose quantiles ``/v1/stats`` surfaces, and the
#: quantile points reported for each.
QUANTILE_METRICS = ("repro_eigensolve_seconds", "repro_admission_wait_seconds")
QUANTILE_POINTS = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def latency_quantiles(
    registry: Optional["MetricsRegistry"] = None,
    metrics: Sequence[str] = QUANTILE_METRICS,
) -> Dict[str, Dict[str, Optional[float]]]:
    """p50/p95/p99 estimates for the registry's key latency histograms.

    Values are ``None`` until the histogram has observations (e.g. a warm
    store never records an eigensolve), so the JSON shape is stable from
    the first scrape.
    """
    if registry is None:
        registry = global_registry()
    quantiles: Dict[str, Dict[str, Optional[float]]] = {}
    for name in metrics:
        metric = registry.get(name)
        if not isinstance(metric, Histogram):
            continue
        quantiles[name] = {
            label: metric.quantile(q) for label, q in QUANTILE_POINTS
        }
    return quantiles


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry the instrumentation seams record into.

    Owned (non-callback) metrics only: unlike the per-server registries of
    :class:`~repro.server.app.BoundsApp` (whose passthrough callbacks are
    bound to one service instance), everything here is cumulative over the
    process, so any number of engines, pools and servers can share it.
    """
    return _GLOBAL_REGISTRY
