"""Opt-in cProfile capture around traced units of work.

Setting ``REPRO_PROFILE=1`` makes :func:`maybe_profile` wrap its body in
a :class:`cProfile.Profile` and dump the stats next to the trace file as
``<base>.profile-<tag>-<pid>.pstats`` (readable with :mod:`pstats` or
``snakeviz``).  Any other value — including unset — keeps the wrapper a
no-op, so the hook can sit permanently on hot paths like the pool
worker's task execution.
"""

from __future__ import annotations

import cProfile
import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["profiling_enabled", "maybe_profile", "profile_path"]

ENV_VAR = "REPRO_PROFILE"


def profiling_enabled() -> bool:
    return os.environ.get(ENV_VAR, "") == "1"


def profile_path(base: str, tag: str) -> str:
    """Where the profile for one unit of work lands, unique per process."""
    return f"{base}.profile-{tag}-{os.getpid()}.pstats"


@contextmanager
def maybe_profile(base: Optional[str], tag: str) -> Iterator[None]:
    """Profile the body iff ``REPRO_PROFILE=1`` and a base path is known."""
    if base is None or not profiling_enabled():
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(profile_path(base, tag))
