"""Trace analysis: reconstruct span trees and render time breakdowns.

Backs ``python -m repro obs report trace.jsonl``.  Two views:

* a **top-down tree** — every root span with its children indented,
  showing wall time, CPU time, and each span's share of its root;
* a **self-time table** — per span *name*, total wall time minus the
  wall time of direct children, aggregated and sorted; this is where
  "the sweep was slow" turns into "87% of it was lanczos eigensolves".

Works on any trace the tracer writes, including multi-process sweeps
after shard merging (records are self-contained, so order and pid mixing
do not matter).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Sequence, Tuple

from .tracing import load_spans

__all__ = [
    "build_trees",
    "self_times",
    "render_report",
    "report_as_json",
    "load_spans",
]

#: Attributes worth echoing inline in the tree view, in display order.
_INLINE_ATTRS = ("fingerprint", "backend", "dtype", "method", "vertex", "status_code")


def build_trees(
    spans: Sequence[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, List[Dict[str, Any]]]]:
    """Return (roots, children-by-span-id) for a list of span dicts.

    A span is a root if it has no parent or its parent is absent from the
    file (e.g. a worker shard inspected on its own).  Children are sorted
    by start time.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children[parent].append(span)
        else:
            roots.append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span.get("start_unix", 0.0))
    roots.sort(key=lambda span: span.get("start_unix", 0.0))
    return roots, children


def self_times(
    spans: Sequence[Dict[str, Any]],
) -> List[Tuple[str, int, float, float]]:
    """Aggregate (name, count, self wall seconds, total wall seconds).

    Self time is a span's wall time minus its direct children's wall
    time, clamped at zero (children on other threads can overlap the
    parent).  Sorted by self time, largest first.
    """
    _, children = build_trees(spans)
    counts: Dict[str, int] = defaultdict(int)
    self_wall: Dict[str, float] = defaultdict(float)
    total_wall: Dict[str, float] = defaultdict(float)
    for span in spans:
        name = span["name"]
        wall = float(span.get("wall_seconds", 0.0))
        child_wall = sum(
            float(child.get("wall_seconds", 0.0))
            for child in children.get(span["span_id"], ())
        )
        counts[name] += 1
        total_wall[name] += wall
        self_wall[name] += max(0.0, wall - child_wall)
    table = [
        (name, counts[name], self_wall[name], total_wall[name])
        for name in counts
    ]
    table.sort(key=lambda row: row[2], reverse=True)
    return table


def _span_label(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    shown = []
    for key in _INLINE_ATTRS:
        if key in attrs:
            value = attrs[key]
            if key == "fingerprint" and isinstance(value, str) and len(value) > 12:
                value = value[:12]
            shown.append(f"{key}={value}")
    suffix = f" [{', '.join(shown)}]" if shown else ""
    marker = " !" if span.get("status") == "error" else ""
    return f"{span['name']}{suffix}{marker}"


def render_report(spans: Sequence[Dict[str, Any]]) -> str:
    """The full text report: header, top-down trees, self-time table."""
    if not spans:
        return "trace is empty\n"
    roots, children = build_trees(spans)
    trace_ids = {span["trace_id"] for span in spans}
    pids = {span.get("pid") for span in spans}
    lines = [
        f"{len(spans)} spans, {len(trace_ids)} trace(s), "
        f"{len(pids)} process(es)",
        "",
    ]

    def walk(span: Dict[str, Any], depth: int, root_wall: float) -> None:
        wall = float(span.get("wall_seconds", 0.0))
        cpu = float(span.get("cpu_seconds", 0.0))
        share = f" {100.0 * wall / root_wall:5.1f}%" if root_wall > 0 else ""
        lines.append(
            f"{'  ' * depth}{_span_label(span)}  "
            f"wall={wall:.4f}s cpu={cpu:.4f}s pid={span.get('pid')}{share}"
        )
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1, root_wall)

    for root in roots:
        walk(root, 0, float(root.get("wall_seconds", 0.0)))
    lines.append("")
    lines.append(f"{'name':<28}{'count':>7}{'self (s)':>12}{'total (s)':>12}")
    for name, count, self_wall, total_wall in self_times(spans):
        lines.append(f"{name:<28}{count:>7}{self_wall:>12.4f}{total_wall:>12.4f}")
    return "\n".join(lines) + "\n"


def report_as_json(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The report as data — ``obs report --json``.

    Same two views as :func:`render_report`: ``trees`` nests each root
    span's full record under ``children`` (recursively), ``self_times``
    is the aggregated table as objects.  Span records pass through
    unmodified, so any attribute the tracer recorded is reachable.
    """
    roots, children = build_trees(spans)

    def node(span: Dict[str, Any]) -> Dict[str, Any]:
        as_node = dict(span)
        as_node["children"] = [
            node(child) for child in children.get(span["span_id"], ())
        ]
        return as_node

    return {
        "num_spans": len(spans),
        "num_traces": len({span["trace_id"] for span in spans}),
        "num_processes": len({span.get("pid") for span in spans}),
        "trees": [node(root) for root in roots],
        "self_times": [
            {
                "name": name,
                "count": count,
                "self_seconds": round(self_wall, 6),
                "total_seconds": round(total_wall, 6),
            }
            for name, count, self_wall, total_wall in self_times(spans)
        ],
    }
