"""Performance-regression sentinel over the benchmark history.

Every benchmark run appends one JSON line to ``BENCH_HISTORY.jsonl`` (via
:func:`benchmarks.common.write_perf_record`): the bench's scalar metrics
plus an **environment fingerprint** — git sha, cpu count, python/numpy/
scipy versions, hostname.  The latest-only ``BENCH_*.json`` snapshots
show where performance *is*; the history shows where it is *going*, and
this module is the tripwire on that trajectory:

* :func:`check` compares each bench's newest record against a
  noise-tolerant baseline — the **median of the last k runs from the
  same environment** (same fingerprint modulo git sha), so a laptop run
  never gets judged against CI numbers and one noisy outlier never
  poisons the baseline;
* **counter metrics** (eigensolves, flow calls, lease leaders/followers)
  are compared exactly — the whole point of the caching/coalescing
  layers is that these are deterministic, so *any* increase is a
  regression and fails ``python -m repro obs perf check``;
* **wall-clock and throughput metrics** are threshold-gated (default
  ±25 %, tunable via ``REPRO_PERF_THRESHOLD``) and skipped entirely when
  ``REPRO_BENCH_TIMING_ASSERT=0`` — the same switch the in-bench
  wall-clock asserts honour on noisy shared runners;
* :func:`render_trajectory` renders the per-metric series for
  ``python -m repro obs perf report``.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "HISTORY_FILENAME",
    "WINDOW_ENV_VAR",
    "THRESHOLD_ENV_VAR",
    "TIMING_ASSERT_ENV_VAR",
    "DEFAULT_WINDOW",
    "DEFAULT_THRESHOLD",
    "environment_fingerprint",
    "fingerprint_key",
    "history_record",
    "append_history",
    "load_history",
    "classify_metric",
    "MetricVerdict",
    "PerfCheckResult",
    "check",
    "render_trajectory",
]

#: The benchmark history ledger at the repository root.
HISTORY_FILENAME = "BENCH_HISTORY.jsonl"

#: Baseline window: the median of the last this-many same-environment
#: runs (excluding the run under test) is the baseline.
WINDOW_ENV_VAR = "REPRO_PERF_WINDOW"
DEFAULT_WINDOW = 5

#: Relative tolerance for wall-clock/throughput metrics (0.25 = ±25%).
THRESHOLD_ENV_VAR = "REPRO_PERF_THRESHOLD"
DEFAULT_THRESHOLD = 0.25

#: Set to ``0`` to skip timing/throughput comparisons (shared runners);
#: counter metrics are always checked — they are deterministic.
TIMING_ASSERT_ENV_VAR = "REPRO_BENCH_TIMING_ASSERT"

#: Fingerprint fields that identify a *comparable* environment.  The git
#: sha is recorded but excluded — the whole point is comparing different
#: commits run on the same machine.
_KEY_FIELDS = ("hostname", "platform", "cpu_count", "python", "numpy", "scipy")

#: Metric-name suffixes whose values are deterministic work counters:
#: compared exactly, any increase is a regression.
_COUNTER_SUFFIXES = (
    "eigensolves",
    "flow_calls",
    "lease_leaders",
    "lease_followers",
    "coalesced",
)

#: Suffixes of throughput-style metrics — higher is better.
_THROUGHPUT_SUFFIXES = ("speedup", "rps", "qps")

#: Suffixes of wall-clock-style metrics — lower is better.
_TIMING_SUFFIXES = ("seconds", "ms", "latency")

Number = Union[int, float]


def window_from_env() -> int:
    raw = os.environ.get(WINDOW_ENV_VAR)
    try:
        return max(1, int(raw)) if raw else DEFAULT_WINDOW
    except ValueError:
        return DEFAULT_WINDOW


def threshold_from_env() -> float:
    raw = os.environ.get(THRESHOLD_ENV_VAR)
    try:
        value = float(raw) if raw else DEFAULT_THRESHOLD
    except ValueError:
        return DEFAULT_THRESHOLD
    return value if value > 0 else DEFAULT_THRESHOLD


def timing_asserts_enabled() -> bool:
    return os.environ.get(TIMING_ASSERT_ENV_VAR, "1") != "0"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _module_version(name: str) -> str:
    try:
        module = __import__(name)
    except ImportError:
        return "absent"
    return str(getattr(module, "__version__", "unknown"))


def environment_fingerprint() -> Dict[str, object]:
    """Where and on what a benchmark number was measured.

    ``cpu_count`` is the load-bearing field — a ``fleet_warm_speedup`` of
    0.95 measured on a 1-core host (where the parallelism asserts are
    gated off) must never be compared against a 16-core baseline.
    """
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": _module_version("numpy"),
        "scipy": _module_version("scipy"),
    }


def fingerprint_key(fingerprint: Mapping[str, object]) -> Tuple[str, ...]:
    """Environment identity for baseline grouping (git sha excluded)."""
    return tuple(str(fingerprint.get(name, "?")) for name in _KEY_FIELDS)


def history_record(
    bench: str,
    metrics: Mapping[str, object],
    fingerprint: Optional[Mapping[str, object]] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """One history line: scalar metrics + fingerprint, JSONL-ready.

    Non-scalar payload entries (level lists, nested per-pass dicts) are
    dropped — the sentinel compares numbers, the full payload lives in
    the bench's ``BENCH_*.json`` snapshot.
    """
    scalars = {
        name: value
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return {
        "bench": bench,
        "benchmark": str(metrics.get("benchmark", "")) or None,
        "timestamp": time.time() if timestamp is None else float(timestamp),
        "fingerprint": dict(
            environment_fingerprint() if fingerprint is None else fingerprint
        ),
        "metrics": scalars,
    }


def default_history_path() -> Path:
    return Path.cwd() / HISTORY_FILENAME


def append_history(
    record: Mapping[str, object], path: Optional[Union[str, Path]] = None
) -> Path:
    path = Path(path) if path is not None else default_history_path()
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
    return path


def load_history(path: Optional[Union[str, Path]] = None) -> List[Dict[str, object]]:
    """Parse the ledger, newest last; corrupt lines are skipped, not fatal.

    A benchmark process killed mid-append must not brick the sentinel for
    every later run.
    """
    path = Path(path) if path is not None else default_history_path()
    if not path.exists():
        return []
    records: List[Dict[str, object]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
            records.append(record)
    return records


def classify_metric(name: str) -> Optional[str]:
    """``"counter"`` | ``"timing"`` | ``"throughput"`` | ``None`` (ignored).

    Classification is by name suffix so every current and future bench
    payload participates without registration: ``*_eigensolves`` and
    ``*_flow_calls`` are deterministic counters, ``*_seconds``/``*_ms``
    are wall-clock, ``*_speedup``/``*_rps`` are throughput.  Config
    scalars (``num_eigenvalues``, ``herd_threads``...) match nothing and
    are ignored.
    """
    lowered = name.lower()
    for suffix in _COUNTER_SUFFIXES:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return "counter"
    for suffix in _THROUGHPUT_SUFFIXES:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return "throughput"
    for suffix in _TIMING_SUFFIXES:
        if lowered.endswith(suffix):
            return "timing"
    return None


@dataclass(frozen=True)
class MetricVerdict:
    """One compared metric: its baseline, its latest value, the verdict."""

    bench: str
    metric: str
    kind: str
    baseline: float
    latest: float
    status: str  # "ok" | "regression" | "improvement"
    window: int  # baseline sample count

    def describe(self) -> str:
        if self.kind == "counter":
            detail = f"{self.baseline:g} -> {self.latest:g} (exact)"
        else:
            ratio = self.latest / self.baseline if self.baseline else float("inf")
            detail = f"{self.baseline:g} -> {self.latest:g} ({ratio:.2f}x)"
        return (
            f"{self.bench}: {self.metric} [{self.kind}] {detail}, "
            f"baseline=median of {self.window} run(s)"
        )


@dataclass
class PerfCheckResult:
    """Everything :func:`check` decided, renderable and exit-code ready."""

    regressions: List[MetricVerdict] = field(default_factory=list)
    improvements: List[MetricVerdict] = field(default_factory=list)
    checked: int = 0
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        for verdict in self.regressions:
            lines.append(f"REGRESSION  {verdict.describe()}")
        for verdict in self.improvements:
            lines.append(f"improvement {verdict.describe()}")
        for reason in self.skipped:
            lines.append(f"skipped     {reason}")
        lines.append(
            f"{self.checked} metric(s) checked, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        return "\n".join(lines) + "\n"


def _numeric(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def check(
    history: Sequence[Mapping[str, object]],
    window: Optional[int] = None,
    threshold: Optional[float] = None,
    timing_asserts: Optional[bool] = None,
) -> PerfCheckResult:
    """Judge each bench's newest record against its same-environment past.

    For every bench name in the history, the last record is the run under
    test and the baseline is the **median over the up-to-``window``
    preceding records with the same environment fingerprint** (git sha
    excluded).  Counters regress on any increase; timing regresses above
    ``baseline * (1 + threshold)`` and throughput below
    ``baseline * (1 - threshold)``, both only when ``timing_asserts``
    (decreased counters and better timings are reported as improvements,
    never failures — optimizations must not trip the sentinel).
    """
    window = window_from_env() if window is None else max(1, int(window))
    threshold = threshold_from_env() if threshold is None else float(threshold)
    if timing_asserts is None:
        timing_asserts = timing_asserts_enabled()

    by_bench: Dict[str, List[Mapping[str, object]]] = {}
    for record in history:
        by_bench.setdefault(str(record.get("bench", "?")), []).append(record)

    result = PerfCheckResult()
    for bench, records in sorted(by_bench.items()):
        latest = records[-1]
        key = fingerprint_key(latest.get("fingerprint", {}) or {})
        baseline_records = [
            record
            for record in records[:-1]
            if fingerprint_key(record.get("fingerprint", {}) or {}) == key
        ][-window:]
        if not baseline_records:
            result.skipped.append(
                f"{bench}: no earlier same-environment run to compare against"
            )
            continue
        latest_metrics = latest.get("metrics", {}) or {}
        for name in sorted(latest_metrics):
            kind = classify_metric(name)
            value = _numeric(latest_metrics[name])
            if kind is None or value is None:
                continue
            samples = [
                sample
                for record in baseline_records
                for sample in [_numeric((record.get("metrics") or {}).get(name))]
                if sample is not None
            ]
            if not samples:
                continue
            if kind != "counter" and not timing_asserts:
                result.skipped.append(
                    f"{bench}: {name} [{kind}] "
                    f"({TIMING_ASSERT_ENV_VAR}=0 disables timing checks)"
                )
                continue
            baseline = float(median(samples))
            result.checked += 1
            if kind == "counter":
                status = (
                    "regression"
                    if value > baseline
                    else "improvement" if value < baseline else "ok"
                )
            elif kind == "timing":
                status = (
                    "regression"
                    if value > baseline * (1.0 + threshold)
                    else "improvement"
                    if value < baseline * (1.0 - threshold)
                    else "ok"
                )
            else:  # throughput
                status = (
                    "regression"
                    if value < baseline * (1.0 - threshold)
                    else "improvement"
                    if value > baseline * (1.0 + threshold)
                    else "ok"
                )
            verdict = MetricVerdict(
                bench=bench,
                metric=name,
                kind=kind,
                baseline=baseline,
                latest=value,
                status=status,
                window=len(samples),
            )
            if status == "regression":
                result.regressions.append(verdict)
            elif status == "improvement":
                result.improvements.append(verdict)
    return result


def render_trajectory(
    history: Sequence[Mapping[str, object]], last: int = 8
) -> str:
    """The per-bench, per-metric value series — ``obs perf report``.

    One block per bench: the environments seen, then every classified
    metric's last ``last`` values in run order (oldest first), annotated
    with the recording commits.
    """
    if not history:
        return "benchmark history is empty\n"
    by_bench: Dict[str, List[Mapping[str, object]]] = {}
    for record in history:
        by_bench.setdefault(str(record.get("bench", "?")), []).append(record)
    lines: List[str] = []
    for bench, records in sorted(by_bench.items()):
        tail = records[-last:]
        label = next(
            (r.get("benchmark") for r in reversed(tail) if r.get("benchmark")), None
        )
        title = f"== {bench}" + (f" ({label})" if label else "") + " =="
        lines.append(title)
        shas = [
            str((record.get("fingerprint") or {}).get("git_sha", "?"))[:12]
            for record in tail
        ]
        envs = {
            fingerprint_key(record.get("fingerprint") or {}) for record in tail
        }
        environments = "1 environment" if len(envs) == 1 else f"{len(envs)} environments"
        lines.append(
            f"  {len(records)} run(s), showing last {len(tail)} "
            f"({environments}): {' -> '.join(shas)}"
        )
        names = sorted(
            {
                name
                for record in tail
                for name in (record.get("metrics") or {})
                if classify_metric(name) is not None
            }
        )
        for name in names:
            series = []
            for record in tail:
                value = _numeric((record.get("metrics") or {}).get(name))
                series.append("-" if value is None else f"{value:g}")
            kind = classify_metric(name)
            lines.append(f"  {name:<28} [{kind:<10}] {' -> '.join(series)}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
