"""Versioned JSON protocol of the bounds-serving HTTP API.

This module is the single source of truth for the ``/v1`` wire schema:
both the server (:mod:`repro.server.app`) and the stdlib client
(:mod:`repro.server.client`) encode and decode through it, so the two can
never drift apart.  **Schema version 1** — the ``version`` field is part of
every request and response; a request carrying any other version is
rejected with a structured ``unsupported-version`` error, which is what
lets a future ``/v2`` coexist with clients pinned to ``/v1``.

Request (``POST /v1/bounds``)::

    {"version": 1,
     "queries": [{"graph": <graph-ref>,
                  "memory_size": 16,
                  "num_processors": 1,          # optional, default 1
                  "normalization": "normalized", # optional
                  "k": null,                     # optional truncation pin
                  "method": "spectral"}]}        # or "spectral-coarse" /
                                                 # "convex-min-cut"

Graph references come in three forms (server-side filesystem paths are
deliberately *not* one of them — path refs stay a local CLI affordance):

* ``{"family": "fft", "size": 4}`` — a named generator family, rebuilt
  server-side (the cheap, cacheable form the sweeps use);
* ``{"num_vertices": n, "edges": [[u, v], ...]}`` — an inline edge list
  for graphs the server has no generator for (e.g. traced programs);
* ``{"fingerprint": "ab12..."}`` — a graph the server has already seen
  inline, addressed by the structural fingerprint returned in every
  answer; clients upload an edge list once and re-query by handle.

Response::

    {"version": 1,
     "answers": [{... BoundAnswer fields ..., "fingerprint": "..."}]}

``spectral-coarse`` answers additionally populate ``bound_lo`` /
``bound_hi`` — the certified interval bracketing the exact bound — and
``bound`` equals the safe lower end ``bound_lo`` (``null`` on both fields
for every other method).

Errors are structured objects, never bare strings::

    {"version": 1,
     "error": {"code": "unknown-graph", "message": "...", "detail": {...}}}

with the HTTP status carried alongside (400 malformed/invalid, 404 unknown
fingerprint, 413 oversized batch/body/inline graph, 429 overload — see
:mod:`repro.server.runner` — and 500 for everything unexpected).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.runtime.families import FAMILY_BUILDERS, GraphSpec
from repro.runtime.service import (
    KNOWN_METHODS,
    KNOWN_NORMALIZATIONS,
    BoundAnswer,
    BoundQuery,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_QUERIES_PER_REQUEST",
    "MAX_INLINE_VERTICES",
    "ProtocolError",
    "GraphRegistry",
    "DecodedQuery",
    "decode_bounds_request",
    "encode_bounds_request",
    "encode_answers",
    "decode_answers",
    "encode_error",
]

PROTOCOL_VERSION = 1

#: Hard batch ceiling: admission control bounds concurrent *solves*, this
#: bounds how much work a single request can smuggle in.
MAX_QUERIES_PER_REQUEST = 1024

#: Inline-graph vertex ceiling: the body-size cap bounds the edge list but
#: not ``num_vertices``, and building a graph allocates O(num_vertices)
#: before anything else can validate it — an 80-byte request must not be
#: able to make the server allocate gigabytes.  Graphs beyond this belong
#: on disk next to the server (`.npz` + the local CLI), not in a request.
MAX_INLINE_VERTICES = 1_000_000

_QUERY_FIELDS = {"graph", "memory_size", "num_processors", "normalization", "k", "method"}
_GRAPH_REF_FORMS = ("family/size", "num_vertices/edges", "fingerprint")


class ProtocolError(Exception):
    """A structured protocol violation, mapped to one HTTP error response."""

    def __init__(
        self,
        message: str,
        code: str = "bad-request",
        status: int = 400,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.code = code
        self.status = int(status)
        self.detail = detail


class GraphRegistry:
    """LRU registry of inline-submitted graphs, keyed by fingerprint.

    Lets clients upload an edge list once and re-query it with a
    ``{"fingerprint": ...}`` reference.  Re-registering an identical graph
    returns the *same* :class:`ComputationGraph` object, so the service's
    identity-keyed engine LRU keeps serving the warm engine instead of
    rebuilding one per request.
    """

    def __init__(self, max_graphs: int = 128) -> None:
        if max_graphs < 1:
            raise ValueError(f"max_graphs must be positive, got {max_graphs}")
        self._max_graphs = int(max_graphs)
        self._graphs: "OrderedDict[str, ComputationGraph]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._graphs)

    def register(self, graph: ComputationGraph) -> Tuple[ComputationGraph, str]:
        """Record ``graph``; returns the canonical instance and fingerprint."""
        fingerprint = graph.fingerprint()
        with self._lock:
            existing = self._graphs.get(fingerprint)
            if existing is not None:
                graph = existing
            else:
                self._graphs[fingerprint] = graph
            self._graphs.move_to_end(fingerprint)
            while len(self._graphs) > self._max_graphs:
                self._graphs.popitem(last=False)
        return graph, fingerprint

    def get(self, fingerprint: str) -> Optional[ComputationGraph]:
        with self._lock:
            graph = self._graphs.get(fingerprint)
            if graph is not None:
                self._graphs.move_to_end(fingerprint)
            return graph


@dataclass(frozen=True)
class DecodedQuery:
    """One wire query, decoded: the service query plus serving metadata.

    ``key`` identifies the solve for in-flight coalescing — identical keys
    mean identical answers, so concurrent requests can share one solve.
    ``fingerprint`` is set for inline/fingerprint graph refs and echoed in
    the answer so clients learn the re-query handle.
    """

    query: BoundQuery
    key: Tuple
    fingerprint: Optional[str] = None

    @property
    def routing_key(self) -> str:
        """Stable string identifying the *graph* (not the full query).

        The fleet's consistent-hash shard routing hashes this, so every
        query about one graph — any ``memory_size``, ``k`` or method —
        lands on the same worker and shares its warm engine/spectrum.
        """
        if self.fingerprint is not None:
            return self.fingerprint
        return ":".join(str(part) for part in self.key[0])


def _require(condition: bool, message: str, **error_kwargs) -> None:
    if not condition:
        raise ProtocolError(message, **error_kwargs)


def _check_version(payload: Dict[str, object]) -> None:
    version = payload.get("version", PROTOCOL_VERSION)
    _require(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r}; this server speaks "
        f"version {PROTOCOL_VERSION}",
        code="unsupported-version",
    )


def _int_field(mapping: Dict[str, object], name: str, default=None):
    value = mapping.get(name, default)
    if value is default:
        return default
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"field {name!r} must be an integer, got {type(value).__name__}",
        code="invalid-query",
    )
    return int(value)


def _decode_graph_ref(
    ref: object, registry: Optional[GraphRegistry]
) -> Tuple[Union[GraphSpec, ComputationGraph], Tuple, Optional[str]]:
    """A wire graph reference -> (service graph ref, coalescing key, fingerprint)."""
    _require(
        isinstance(ref, dict),
        f"'graph' must be an object with one of {_GRAPH_REF_FORMS}",
        code="invalid-graph-ref",
    )
    if "family" in ref:
        _require(
            set(ref) == {"family", "size"},
            "a family graph ref carries exactly the fields 'family' and 'size'",
            code="invalid-graph-ref",
        )
        family = ref["family"]
        _require(
            isinstance(family, str) and family in FAMILY_BUILDERS,
            f"unknown graph family {family!r}",
            code="unknown-family",
            detail={"known_families": sorted(FAMILY_BUILDERS)},
        )
        size = _int_field(ref, "size")
        _require(size is not None, "a family graph ref needs an integer 'size'",
                 code="invalid-graph-ref")
        spec = GraphSpec(family=family, size_param=size)
        return spec, ("spec", family, size), None
    if "edges" in ref or "num_vertices" in ref:
        _require(
            set(ref) == {"num_vertices", "edges"},
            "an inline graph ref carries exactly the fields 'num_vertices' "
            "and 'edges'",
            code="invalid-graph-ref",
        )
        num_vertices = _int_field(ref, "num_vertices")
        edges = ref["edges"]
        _require(
            num_vertices is not None and num_vertices >= 0,
            "'num_vertices' must be a non-negative integer",
            code="invalid-graph-ref",
        )
        _require(
            num_vertices <= MAX_INLINE_VERTICES,
            f"inline graphs carry at most {MAX_INLINE_VERTICES} vertices, "
            f"got {num_vertices}; save the graph as .npz and query it "
            f"through the local CLI instead",
            code="graph-too-large",
            status=413,
        )
        _require(
            isinstance(edges, list)
            and all(
                isinstance(e, list) and len(e) == 2
                and all(isinstance(x, int) and not isinstance(x, bool) for x in e)
                for e in edges
            ),
            "'edges' must be a list of [tail, head] integer pairs",
            code="invalid-graph-ref",
        )
        graph = ComputationGraph(num_vertices)
        if edges:
            try:
                graph.add_edges_array(np.asarray(edges, dtype=np.int64).reshape(-1, 2))
            except (ValueError, OverflowError) as exc:
                # OverflowError: an edge id outside int64 is still a malformed
                # ref (400), not a server fault (500).
                raise ProtocolError(str(exc), code="invalid-graph-ref")
        if registry is not None:
            graph, fingerprint = registry.register(graph)
        else:
            fingerprint = graph.fingerprint()
        return graph, ("graph", fingerprint), fingerprint
    if "fingerprint" in ref:
        _require(
            set(ref) == {"fingerprint"} and isinstance(ref["fingerprint"], str),
            "a fingerprint graph ref carries exactly one string field "
            "'fingerprint'",
            code="invalid-graph-ref",
        )
        fingerprint = str(ref["fingerprint"])
        graph = registry.get(fingerprint) if registry is not None else None
        _require(
            graph is not None,
            f"no graph with fingerprint {fingerprint!r} is registered on this "
            f"server; submit it inline once first",
            code="unknown-graph",
            status=404,
        )
        return graph, ("graph", fingerprint), fingerprint
    raise ProtocolError(
        f"unrecognised graph ref {sorted(ref)}; expected one of {_GRAPH_REF_FORMS}",
        code="invalid-graph-ref",
    )


def _decode_query(
    payload: object, registry: Optional[GraphRegistry]
) -> DecodedQuery:
    _require(isinstance(payload, dict), "each query must be an object",
             code="invalid-query")
    unknown = set(payload) - _QUERY_FIELDS
    _require(
        not unknown,
        f"unknown query field(s) {sorted(unknown)}; known fields are "
        f"{sorted(_QUERY_FIELDS)}",
        code="invalid-query",
    )
    _require("graph" in payload, "each query needs a 'graph' reference",
             code="invalid-query")
    graph, graph_key, fingerprint = _decode_graph_ref(payload["graph"], registry)
    memory_size = _int_field(payload, "memory_size")
    _require(
        memory_size is not None and memory_size >= 0,
        "'memory_size' must be a non-negative integer",
        code="invalid-query",
    )
    num_processors = _int_field(payload, "num_processors", 1)
    _require(num_processors >= 1, "'num_processors' must be >= 1",
             code="invalid-query")
    k = _int_field(payload, "k", None)
    _require(k is None or k >= 1, "'k' must be >= 1 when given",
             code="invalid-query")
    # Closed vocabularies, rejected *here* rather than by the service: the
    # strings label the repro_queries_total metric, and unvalidated values
    # would let clients grow the label cardinality without bound.
    normalization = payload.get("normalization", "normalized")
    _require(
        isinstance(normalization, str) and normalization in KNOWN_NORMALIZATIONS,
        f"unknown normalization {normalization!r}; expected one of "
        f"{sorted(KNOWN_NORMALIZATIONS)}",
        code="invalid-query",
    )
    method = payload.get("method", "spectral")
    _require(
        isinstance(method, str) and method in KNOWN_METHODS,
        f"unknown method {method!r}; expected one of {sorted(KNOWN_METHODS)}",
        code="invalid-query",
    )
    query = BoundQuery(
        graph=graph,
        memory_size=memory_size,
        num_processors=num_processors,
        normalization=normalization,
        k=k,
        method=method,
    )
    key = (graph_key, memory_size, num_processors, normalization, k, method)
    return DecodedQuery(query=query, key=key, fingerprint=fingerprint)


def decode_bounds_request(
    payload: object, registry: Optional[GraphRegistry] = None
) -> List[DecodedQuery]:
    """Validate and decode a ``POST /v1/bounds`` body.

    Raises :class:`ProtocolError` (with a structured code and HTTP status)
    on any schema violation; on success every returned query is ready for
    :meth:`~repro.runtime.service.BoundService.submit`.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    _check_version(payload)
    unknown = set(payload) - {"version", "queries"}
    _require(not unknown, f"unknown request field(s) {sorted(unknown)}")
    queries = payload.get("queries")
    _require(
        isinstance(queries, list) and len(queries) > 0,
        "'queries' must be a non-empty list",
    )
    _require(
        len(queries) <= MAX_QUERIES_PER_REQUEST,
        f"a request carries at most {MAX_QUERIES_PER_REQUEST} queries, "
        f"got {len(queries)}",
        code="batch-too-large",
        status=413,
    )
    return [_decode_query(query, registry) for query in queries]


def _encode_graph_ref(graph) -> Dict[str, object]:
    if isinstance(graph, GraphSpec):
        if graph.path is not None:
            raise ProtocolError(
                "path graph refs are local-only; send the graph inline "
                "(num_vertices/edges) instead",
                code="invalid-graph-ref",
            )
        return {"family": graph.family, "size": int(graph.size_param)}
    if isinstance(graph, ComputationGraph):
        return {
            "num_vertices": graph.num_vertices,
            "edges": [[int(u), int(v)] for u, v in graph.edges()],
        }
    raise ProtocolError(
        f"cannot encode a graph ref of type {type(graph).__name__}",
        code="invalid-graph-ref",
    )


def encode_bounds_request(
    queries: Sequence[Union[BoundQuery, Dict[str, object]]]
) -> Dict[str, object]:
    """Encode queries as a ``POST /v1/bounds`` body (the client half).

    Accepts :class:`BoundQuery` objects (graphs as :class:`GraphSpec` or
    live :class:`ComputationGraph`, sent inline) and raw wire dicts (e.g.
    ``{"graph": {"fingerprint": ...}, ...}``) interchangeably.
    """
    encoded: List[Dict[str, object]] = []
    for query in queries:
        if isinstance(query, dict):
            encoded.append(query)
            continue
        item: Dict[str, object] = {
            "graph": _encode_graph_ref(query.graph),
            "memory_size": int(query.memory_size),
        }
        if query.num_processors != 1:
            item["num_processors"] = int(query.num_processors)
        if query.normalization != "normalized":
            item["normalization"] = query.normalization
        if query.k is not None:
            item["k"] = int(query.k)
        if query.method != "spectral":
            item["method"] = query.method
        encoded.append(item)
    return {"version": PROTOCOL_VERSION, "queries": encoded}


def encode_answers(
    answers: Sequence[BoundAnswer],
    fingerprints: Optional[Sequence[Optional[str]]] = None,
) -> Dict[str, object]:
    """Encode a batch of answers as the ``POST /v1/bounds`` response body."""
    if fingerprints is None:
        fingerprints = [None] * len(answers)
    payload = []
    for answer, fingerprint in zip(answers, fingerprints):
        item = answer.as_dict()
        if fingerprint is not None:
            item["fingerprint"] = fingerprint
        payload.append(item)
    return {"version": PROTOCOL_VERSION, "answers": payload}


def decode_answers(payload: object) -> List[BoundAnswer]:
    """Decode a ``POST /v1/bounds`` response body (the client half)."""
    _require(isinstance(payload, dict), "response body must be a JSON object",
             code="invalid-response")
    _check_version(payload)
    answers = payload.get("answers")
    _require(isinstance(answers, list), "response carries no 'answers' list",
             code="invalid-response")
    decoded = []
    for item in answers:
        _require(isinstance(item, dict), "each answer must be an object",
                 code="invalid-response")
        fields = {k: v for k, v in item.items() if k != "fingerprint"}
        try:
            decoded.append(BoundAnswer(**fields))
        except TypeError as exc:
            raise ProtocolError(str(exc), code="invalid-response")
    return decoded


def encode_error(
    message: str,
    code: str = "bad-request",
    detail: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The structured error body every non-2xx response carries."""
    error: Dict[str, object] = {"code": code, "message": message}
    if detail is not None:
        error["detail"] = detail
    return {"version": PROTOCOL_VERSION, "error": error}
