"""Server runners: one threaded process, or a pre-forked sharded fleet.

:class:`BoundServer` wraps the WSGI app of :mod:`repro.server.app` in a
stdlib threading HTTP server (``wsgiref`` + ``socketserver.ThreadingMixIn``
— one thread per connection, no third-party dependencies) and owns the two
concurrency policies the app itself stays agnostic of:

* **admission control** (:class:`AdmissionController`) — at most
  ``max_in_flight`` solve batches run concurrently and at most
  ``max_queue`` more may wait; beyond that the request is rejected
  *immediately* with HTTP 429 and a ``Retry-After`` hint, so an overloaded
  server degrades by shedding load instead of by stacking up threads until
  every client times out;
* **in-flight coalescing** (:class:`QueryCoalescer`) — identical
  ``(graph, M, p, normalization, k, method)`` queries that arrive while
  the first one is still solving wait for *that* solve instead of starting
  their own.  A thundering herd on one cold graph pays exactly one
  eigensolve; without this, concurrent misses race past the spectrum
  cache and solve redundantly.  This composes with (rather than replaces)
  the batch-level dedup inside
  :meth:`~repro.runtime.service.BoundService.submit` and the
  spectrum/cut cache tiers below it.

:class:`ServerFleet` (``python -m repro serve --workers N``) scales past
the GIL: a pre-forked fleet of shared-nothing worker processes, each a
full :class:`BoundServer`-style stack over the *same* on-disk stores.
The parent binds every socket before forking — one shared public socket
all workers accept on (classic pre-fork load balancing by the kernel)
plus one direct per-worker socket — then supervises and respawns dead
workers.  Requests are routed by consistent hashing on the graph
identity (:class:`ShardRing`): a worker that picks up a shared-socket
request wholly owned by a sibling answers ``307`` to that sibling's
direct port, so each worker's in-memory cache tier stays hot for its
shard.  Cross-process duplicate *solves* are collapsed one layer down by
the spectrum store's solve leases (see
:meth:`repro.runtime.store.SpectrumStore.acquire_lease`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import signal
import socket as socketlib
import threading
import time
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass
from socketserver import ThreadingMixIn
from typing import Dict, List, Optional, Sequence, Tuple
from wsgiref.simple_server import (
    ServerHandler,
    WSGIRequestHandler,
    WSGIServer,
    make_server,
)

from repro.obs.metrics import global_registry, set_process_labels
from repro.runtime.service import BoundService
from repro.server.app import BoundsApp, ServerOverloadedError
from repro.server.metrics import MetricsRegistry

__all__ = [
    "AdmissionController",
    "QueryCoalescer",
    "ServerOverloadedError",
    "SolveTicket",
    "BoundServer",
    "ShardRing",
    "ShardInfo",
    "FleetConfig",
    "ServerFleet",
    "SERVE_WORKERS_ENV_VAR",
]

DEFAULT_MAX_IN_FLIGHT = 4
DEFAULT_MAX_QUEUE = 16
DEFAULT_RETRY_AFTER_SECONDS = 1

#: Environment variable giving the default ``--workers`` count.
SERVE_WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"

_ADMISSION_WAIT_SECONDS = global_registry().histogram(
    "repro_admission_wait_seconds",
    "Time admitted solve batches spent waiting for an admission slot.",
)
_COALESCE_TOTAL = global_registry().counter(
    "repro_coalesce_total",
    "Coalescer claims by role: leaders run the solve, followers wait on it.",
    labelnames=("role",),
)


class AdmissionController:
    """Bounded-concurrency gate for solve batches.

    ``max_in_flight`` batches may run at once; up to ``max_queue`` more
    block waiting for a slot; any further arrival fails fast with
    :class:`ServerOverloadedError` (mapped to 429 + ``Retry-After``).
    """

    def __init__(
        self,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        self.max_in_flight = int(max_in_flight)
        self.max_queue = int(max_queue)
        self.retry_after_seconds = retry_after_seconds
        self._condition = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        # Slots being handed directly from a releaser to a queued waiter
        # (see release(): the slot never becomes visibly free, so fresh
        # arrivals cannot barge past the queue).
        self._handoffs = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def stats(self) -> Dict[str, int]:
        with self._condition:
            return {
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }

    def acquire(self) -> None:
        with self._condition:
            if (
                self._in_flight < self.max_in_flight
                and self._queued == 0
                and self._handoffs == 0
            ):
                self._in_flight += 1
                self._admitted += 1
                _ADMISSION_WAIT_SECONDS.observe(0.0)
                return
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise ServerOverloadedError(
                    f"{self._in_flight} solves in flight and {self._queued} "
                    f"queued; retry after {self.retry_after_seconds}s",
                    self.retry_after_seconds,
                )
            wait_start = time.perf_counter()
            self._queued += 1
            try:
                while self._handoffs == 0 and self._in_flight >= self.max_in_flight:
                    self._condition.wait()
            finally:
                self._queued -= 1
            if self._handoffs:
                self._handoffs -= 1  # slot transferred; in_flight unchanged
            else:
                self._in_flight += 1
            self._admitted += 1
            _ADMISSION_WAIT_SECONDS.observe(time.perf_counter() - wait_start)

    def release(self) -> None:
        with self._condition:
            if self._queued > 0:
                # Hand the slot straight to a queued waiter instead of
                # freeing it: the slot is never visibly free, so a fresh
                # arrival can never barge past threads already waiting.
                self._handoffs += 1
            else:
                self._in_flight -= 1
            self._condition.notify()

    @contextmanager
    def slot(self):
        """``with admission.slot():`` around one admitted solve batch."""
        self.acquire()
        try:
            yield
        finally:
            self.release()


class SolveTicket:
    """One in-flight solve: the leader resolves it, followers wait on it."""

    def __init__(self, key: Tuple) -> None:
        self.key = key
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"timed out after {timeout}s waiting for an in-flight solve"
            )
        if self._error is not None:
            raise self._error
        return self._value


class QueryCoalescer:
    """Share in-flight solves between requests asking the same question.

    :meth:`claim` either makes the caller the *leader* for a key (it must
    later :meth:`resolve`/:meth:`fail` the ticket, even on error) or hands
    back the existing in-flight ticket to wait on.  Once resolved, the key
    leaves the in-flight table — results are *not* cached here; the
    spectrum/cut stores below already answer warm repeats, this layer only
    collapses concurrent duplicates of one cold solve.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: Dict[Tuple, SolveTicket] = {}
        self._leaders = 0
        self._coalesced = 0

    @property
    def leaders(self) -> int:
        """Claims that had to run the solve themselves."""
        return self._leaders

    @property
    def coalesced(self) -> int:
        """Claims served by somebody else's in-flight solve."""
        return self._coalesced

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "leaders": self._leaders,
                "coalesced": self._coalesced,
                "in_flight": len(self._in_flight),
            }

    def claim(self, key: Tuple) -> Tuple[SolveTicket, bool]:
        """Returns ``(ticket, is_leader)`` for one query key."""
        with self._lock:
            ticket = self._in_flight.get(key)
            if ticket is not None:
                self._coalesced += 1
                _COALESCE_TOTAL.inc(role="follower")
                return ticket, False
            ticket = SolveTicket(key)
            self._in_flight[key] = ticket
            self._leaders += 1
            _COALESCE_TOTAL.inc(role="leader")
            return ticket, True

    def resolve(self, ticket: SolveTicket, value) -> None:
        with self._lock:
            self._in_flight.pop(ticket.key, None)
        ticket.resolve(value)

    def fail(self, ticket: SolveTicket, error: BaseException) -> None:
        with self._lock:
            self._in_flight.pop(ticket.key, None)
        ticket.fail(error)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    daemon_threads = True
    allow_reuse_address = True


class _CountingInput:
    """Wraps ``wsgi.input`` to count the bytes the app actually consumed.

    Keep-alive correctness depends on it: a request body the app never
    read (a POST answered 404/405 before the read) would otherwise be
    parsed as the start of the *next* request on the connection.
    """

    def __init__(self, raw) -> None:
        self._raw = raw
        self.consumed = 0

    def read(self, size: int = -1) -> bytes:
        data = self._raw.read(size)
        self.consumed += len(data)
        return data

    def readline(self, limit: int = -1) -> bytes:
        data = self._raw.readline(limit)
        self.consumed += len(data)
        return data

    def __getattr__(self, name):
        return getattr(self._raw, name)

    def __iter__(self):
        return iter(self._raw)


class _QuietRequestHandler(WSGIRequestHandler):
    """Quiet, keep-alive-capable request handler.

    Per-request access logging is off (``/metrics`` is the observability),
    and unlike upstream ``WSGIRequestHandler`` — which hangs up after every
    response — this handler speaks HTTP/1.1 and serves a connection's
    requests in a loop, so :class:`~repro.server.client.BoundsClient` and
    any keep-alive client pay the TCP handshake once per connection
    instead of once per request.  Safe with wsgiref because the app always
    sets ``Content-Length`` (responses are self-delimiting).
    """

    protocol_version = "HTTP/1.1"

    # Socket timeout (socketserver applies it in setup()): a client that
    # declares a Content-Length it never sends would otherwise park a
    # handler thread in wsgi.input.read() forever — with this, the read
    # raises TimeoutError, the app answers 503, and the thread is freed.
    # On an *idle* kept-alive connection the same timeout simply closes it.
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def handle(self) -> None:
        # Upstream's handle() serves exactly one request then returns
        # (closing the connection); loop handle_one_request the way
        # BaseHTTPRequestHandler does so keep-alive actually keeps alive.
        self.close_connection = True
        self.handle_one_request()
        while not self.close_connection:
            self.handle_one_request()

    def handle_one_request(self) -> None:
        try:
            self.raw_requestline = self.rfile.readline(65537)
        except (TimeoutError, OSError):
            self.close_connection = True
            return
        if len(self.raw_requestline) > 65536:
            self.requestline = ""
            self.request_version = ""
            self.command = ""
            self.send_error(414)
            self.close_connection = True
            return
        if not self.raw_requestline:
            self.close_connection = True
            return
        if not self.parse_request():
            return
        stdin = _CountingInput(self.rfile)
        handler = ServerHandler(
            stdin, self.wfile, self.get_stderr(), self.get_environ(),
            multithread=True,
        )
        handler.http_version = "1.1"
        handler.request_handler = self  # backpointer for logging
        handler.run(self.server.get_app())
        self._discard_unread_body(stdin)

    def _discard_unread_body(self, stdin: "_CountingInput") -> None:
        """Resynchronise the connection after an app that skipped the body.

        Routes that answer before reading ``wsgi.input`` (404, 405, 413)
        leave the declared body sitting in the socket; small remainders
        are drained so the connection stays usable, anything larger (or
        an unparsable declaration) just closes it.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return
        leftover = length - stdin.consumed
        if leftover <= 0:
            return
        if leftover > 65536:
            self.close_connection = True
            return
        try:
            self.rfile.read(leftover)
        except (TimeoutError, OSError):
            self.close_connection = True


class BoundServer:
    """A :class:`~repro.runtime.service.BoundService` bound to a TCP port.

    Parameters
    ----------
    service:
        The service to expose (owns every cache tier).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests do this).
    max_in_flight, max_queue, retry_after_seconds:
        Admission-control knobs (see :class:`AdmissionController`).
    metrics:
        Optional shared registry; by default the server owns a fresh one.
    coalesce:
        Set ``False`` to disable in-flight coalescing (benchmarks measure
        the difference; production keeps it on).

    Use either as a context manager around :meth:`start` (background
    thread, e.g. tests/benchmarks) or via :meth:`serve_forever` (the CLI).
    """

    def __init__(
        self,
        service: BoundService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
        metrics: Optional[MetricsRegistry] = None,
        coalesce: bool = True,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = AdmissionController(
            max_in_flight=max_in_flight,
            max_queue=max_queue,
            retry_after_seconds=retry_after_seconds,
        )
        self.coalescer = QueryCoalescer() if coalesce else None
        self.app = BoundsApp(
            service,
            metrics=self.metrics,
            admission=self.admission,
            coalescer=self.coalescer,
        )
        self._httpd = make_server(
            host,
            port,
            self.app,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietRequestHandler,
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BoundServer":
        """Serve from a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._httpd.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "BoundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# pre-forked sharded fleet
# ----------------------------------------------------------------------
class ShardRing:
    """Consistent-hash ring mapping graph routing keys to worker ids.

    ``replicas`` virtual points per worker (sha256-placed) keep the load
    split near-uniform, and — the property plain modulo hashing lacks —
    changing the worker count remaps only ``~1/N`` of the keys, so a
    resized fleet keeps most workers' memory tiers valid.
    """

    def __init__(self, num_workers: int, replicas: int = 64) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.num_workers = int(num_workers)
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for worker_id in range(self.num_workers):
            for replica in range(self.replicas):
                digest = hashlib.sha256(
                    f"worker-{worker_id}:{replica}".encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), worker_id))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, key: str) -> int:
        """The worker id owning a routing key (first point clockwise)."""
        digest = hashlib.sha256(str(key).encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect_right(self._hashes, point) % len(self._hashes)
        return self._owners[index]


@dataclass(frozen=True)
class ShardInfo:
    """One worker's view of the fleet, injected into its :class:`BoundsApp`.

    ``worker_urls[i]`` is worker ``i``'s *direct* base URL — where shard
    redirects point and where per-worker ``/metrics`` are scraped.
    ``restarts`` is this worker's incarnation number: 0 for the original
    process, incremented by the parent's supervisor for each respawn, so
    a worker's own telemetry reveals it is a replacement.
    """

    worker_id: int
    worker_urls: Tuple[str, ...]
    ring: ShardRing
    restarts: int = 0

    @property
    def num_workers(self) -> int:
        return len(self.worker_urls)

    def owner(self, key: str) -> int:
        return self.ring.owner(key)

    def url_for(self, worker_id: int) -> str:
        return self.worker_urls[worker_id]

    def describe(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "num_workers": self.num_workers,
            "worker_urls": list(self.worker_urls),
            "restarts": self.restarts,
        }


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker process needs to build its serving stack.

    Carried across ``fork()`` into :func:`_fleet_worker_main`; each worker
    builds its *own* :class:`BoundService` (shared-nothing memory tiers)
    over the common on-disk store root.
    """

    store_root: Optional[str] = None
    num_eigenvalues: int = 100
    eig_options: Optional[object] = None  # EigenSolverOptions (picklable)
    mincut_backend: Optional[str] = None
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT
    max_queue: int = DEFAULT_MAX_QUEUE
    retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS
    coalesce: bool = True
    lease_ttl: Optional[float] = None
    trace_path: Optional[str] = None

    def build_service(self) -> BoundService:
        store = None
        if self.store_root is not None:
            from repro.runtime.store import SpectrumStore

            store = SpectrumStore(self.store_root, lease_ttl=self.lease_ttl)
        return BoundService(
            store=store,
            num_eigenvalues=self.num_eigenvalues,
            eig_options=self.eig_options,
            mincut_backend=self.mincut_backend,
        )


class _FleetWSGIServer(ThreadingMixIn, WSGIServer):
    """Threading WSGI server over a socket inherited from the pre-fork parent.

    ``daemon_threads=False`` + ``block_on_close`` make ``server_close()``
    join in-flight request threads — the graceful-drain half of worker
    shutdown (SIGTERM stops accepting, then outstanding solves finish).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, sock: socketlib.socket, handler_class) -> None:
        # bind_and_activate=False: adopt the parent's already-listening
        # socket instead of binding a fresh one.
        super().__init__(
            sock.getsockname()[:2], handler_class, bind_and_activate=False
        )
        self.socket.close()  # the unbound one the base class created
        self.socket = sock
        host, port = sock.getsockname()[:2]
        self.server_name = socketlib.getfqdn(host)
        self.server_port = port
        self.setup_environ()  # normally done by server_bind()


def _tag_environ(app, **flags):
    """Wrap a WSGI app, stamping constant keys into every request environ.

    How a worker tells shared-socket arrivals (eligible for shard
    redirects) apart from direct-port arrivals (never redirected — that
    is what makes redirect loops impossible).
    """

    def tagged(environ, start_response):
        environ.update(flags)
        return app(environ, start_response)

    return tagged


def _fleet_worker_main(
    worker_id: int,
    shared_sock: socketlib.socket,
    direct_socks: Sequence[socketlib.socket],
    worker_urls: Tuple[str, ...],
    ring: ShardRing,
    config: FleetConfig,
    incarnation: int = 0,
) -> None:
    """One worker process: accept on the shared + own direct socket, drain on SIGTERM."""
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    # ^C goes to the whole foreground process group; the parent coordinates
    # shutdown and SIGTERMs us, so workers ignore the direct SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Close the siblings' direct sockets this fork inherited: holding them
    # open would make connections to a *dead* sibling's port sit unserved
    # in a queue nobody reads instead of failing over to the respawn.
    for index, sock in enumerate(direct_socks):
        if index != worker_id:
            sock.close()
    direct_sock = direct_socks[worker_id]

    set_process_labels(worker=str(worker_id))
    # The fork copied the parent's accumulated counters; this worker's
    # /metrics must only ever report work this worker did.
    global_registry().reset_values()
    global_registry().gauge(
        "repro_worker_up", "1 for each live serving worker process."
    ).set(1.0)
    # Incarnation as a gauge: the fleet rollup reads every worker's
    # respawn count off its own /metrics instead of asking the parent
    # (which serves no HTTP) — a respawned worker reports restarts >= 1.
    global_registry().gauge(
        "repro_worker_restarts",
        "Times this worker slot has been respawned (0 for the original).",
    ).set(float(incarnation))
    if config.trace_path is not None:
        from repro import obs

        obs.configure(f"{config.trace_path}.worker-{worker_id}.jsonl")

    service = config.build_service()
    admission = AdmissionController(
        max_in_flight=config.max_in_flight,
        max_queue=config.max_queue,
        retry_after_seconds=config.retry_after_seconds,
    )
    coalescer = QueryCoalescer() if config.coalesce else None
    app = BoundsApp(
        service,
        metrics=MetricsRegistry(),
        admission=admission,
        coalescer=coalescer,
        sharding=ShardInfo(worker_id, tuple(worker_urls), ring, restarts=incarnation),
    )
    shared_httpd = _FleetWSGIServer(shared_sock, _QuietRequestHandler)
    shared_httpd.set_app(_tag_environ(app, **{"repro.shard_redirect": True}))
    direct_httpd = _FleetWSGIServer(direct_sock, _QuietRequestHandler)
    direct_httpd.set_app(app)
    threads = [
        threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-worker-{worker_id}-{kind}",
        )
        for kind, httpd in (("shared", shared_httpd), ("direct", direct_httpd))
    ]
    for thread in threads:
        thread.start()
    try:
        stop.wait()
    finally:
        shared_httpd.shutdown()
        direct_httpd.shutdown()
        for thread in threads:
            thread.join(timeout=10.0)
        # Joins in-flight request handlers (graceful drain), then closes
        # this process's copies of the socket fds.
        shared_httpd.server_close()
        direct_httpd.server_close()


class ServerFleet:
    """A pre-forked fleet of shared-nothing bound-serving workers.

    The parent creates every listening socket *before* forking — the
    shared public one (``host:port``) all workers accept on, plus one
    ephemeral direct socket per worker — so the shard map is fixed and a
    respawned worker reclaims its predecessor's exact ports.  A monitor
    thread restarts dead workers (counted in :attr:`restarts`);
    :meth:`close` SIGTERMs the fleet and reaps it.

    Workers are shared-nothing above the disk: each owns its service,
    caches and admission control.  What makes the fleet *coherent* is the
    on-disk store (every solve published once, readable by all) and its
    solve leases (concurrent cold misses collapse to one eigensolve
    fleet-wide).
    """

    def __init__(
        self,
        config: FleetConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        replicas: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        # fork (not spawn): children inherit the listening fds and the
        # warm imports; raises on platforms without fork, which is the
        # honest answer — the fleet is a POSIX design.
        self._ctx = multiprocessing.get_context("fork")
        self.config = config
        self.host = host
        self.num_workers = int(workers)
        self._shared_sock = self._listen(host, port)
        # Non-blocking: N workers race accept() on this socket; with a
        # blocking fd the kernel may wake several and park the losers in
        # accept() forever.  socketserver tolerates the EAGAIN of losing.
        self._shared_sock.setblocking(False)
        self.port = int(self._shared_sock.getsockname()[1])
        self._direct_socks = [self._listen(host, 0) for _ in range(self.num_workers)]
        self.worker_urls: Tuple[str, ...] = tuple(
            f"http://{host}:{sock.getsockname()[1]}" for sock in self._direct_socks
        )
        self.ring = ShardRing(self.num_workers, replicas=replicas)
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * self.num_workers
        self._restarts = [0] * self.num_workers
        self._closing = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    @staticmethod
    def _listen(host: str, port: int) -> socketlib.socket:
        sock = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM)
        sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        return sock

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def restarts(self) -> List[int]:
        """Per-worker respawn counts (all zero in a healthy fleet)."""
        return list(self._restarts)

    def start(self) -> "ServerFleet":
        if self._monitor is not None:
            raise RuntimeError("fleet already started")
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._monitor = threading.Thread(
            target=self._supervise, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        proc = self._ctx.Process(
            target=_fleet_worker_main,
            args=(
                worker_id,
                self._shared_sock,
                tuple(self._direct_socks),
                self.worker_urls,
                self.ring,
                self.config,
                self._restarts[worker_id],
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def _supervise(self) -> None:
        """Respawn dead workers until the fleet is closing.

        The parent keeps every socket open, so a replacement accepts on
        the exact fds (shared and direct) its predecessor served.
        """
        while not self._closing.wait(0.2):
            for worker_id, proc in enumerate(self._procs):
                if self._closing.is_set():
                    return
                if proc is not None and not proc.is_alive():
                    proc.join()
                    self._restarts[worker_id] += 1
                    self._spawn(worker_id)

    def serve_forever(self) -> None:
        """Block the calling thread until interrupted (the CLI path)."""
        while not self._closing.is_set():
            time.sleep(0.5)

    def close(self) -> None:
        """SIGTERM every worker (graceful drain), reap, close the sockets."""
        self._closing.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        procs = [proc for proc in self._procs if proc is not None]
        for proc in procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: workers drain then exit
        deadline = time.monotonic() + 10.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._procs = [None] * self.num_workers
        self._shared_sock.close()
        for sock in self._direct_socks:
            sock.close()

    def __enter__(self) -> "ServerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
