"""Threaded server runner: admission control and in-flight coalescing.

:class:`BoundServer` wraps the WSGI app of :mod:`repro.server.app` in a
stdlib threading HTTP server (``wsgiref`` + ``socketserver.ThreadingMixIn``
— one thread per connection, no third-party dependencies) and owns the two
concurrency policies the app itself stays agnostic of:

* **admission control** (:class:`AdmissionController`) — at most
  ``max_in_flight`` solve batches run concurrently and at most
  ``max_queue`` more may wait; beyond that the request is rejected
  *immediately* with HTTP 429 and a ``Retry-After`` hint, so an overloaded
  server degrades by shedding load instead of by stacking up threads until
  every client times out;
* **in-flight coalescing** (:class:`QueryCoalescer`) — identical
  ``(graph, M, p, normalization, k, method)`` queries that arrive while
  the first one is still solving wait for *that* solve instead of starting
  their own.  A thundering herd on one cold graph pays exactly one
  eigensolve; without this, concurrent misses race past the spectrum
  cache and solve redundantly.  This composes with (rather than replaces)
  the batch-level dedup inside
  :meth:`~repro.runtime.service.BoundService.submit` and the
  spectrum/cut cache tiers below it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from socketserver import ThreadingMixIn
from typing import Dict, Optional, Tuple
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.obs.metrics import global_registry
from repro.runtime.service import BoundService
from repro.server.app import BoundsApp, ServerOverloadedError
from repro.server.metrics import MetricsRegistry

__all__ = [
    "AdmissionController",
    "QueryCoalescer",
    "ServerOverloadedError",
    "SolveTicket",
    "BoundServer",
]

DEFAULT_MAX_IN_FLIGHT = 4
DEFAULT_MAX_QUEUE = 16
DEFAULT_RETRY_AFTER_SECONDS = 1

_ADMISSION_WAIT_SECONDS = global_registry().histogram(
    "repro_admission_wait_seconds",
    "Time admitted solve batches spent waiting for an admission slot.",
)
_COALESCE_TOTAL = global_registry().counter(
    "repro_coalesce_total",
    "Coalescer claims by role: leaders run the solve, followers wait on it.",
    labelnames=("role",),
)


class AdmissionController:
    """Bounded-concurrency gate for solve batches.

    ``max_in_flight`` batches may run at once; up to ``max_queue`` more
    block waiting for a slot; any further arrival fails fast with
    :class:`ServerOverloadedError` (mapped to 429 + ``Retry-After``).
    """

    def __init__(
        self,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        self.max_in_flight = int(max_in_flight)
        self.max_queue = int(max_queue)
        self.retry_after_seconds = retry_after_seconds
        self._condition = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        # Slots being handed directly from a releaser to a queued waiter
        # (see release(): the slot never becomes visibly free, so fresh
        # arrivals cannot barge past the queue).
        self._handoffs = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def stats(self) -> Dict[str, int]:
        with self._condition:
            return {
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }

    def acquire(self) -> None:
        with self._condition:
            if (
                self._in_flight < self.max_in_flight
                and self._queued == 0
                and self._handoffs == 0
            ):
                self._in_flight += 1
                self._admitted += 1
                _ADMISSION_WAIT_SECONDS.observe(0.0)
                return
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise ServerOverloadedError(
                    f"{self._in_flight} solves in flight and {self._queued} "
                    f"queued; retry after {self.retry_after_seconds}s",
                    self.retry_after_seconds,
                )
            wait_start = time.perf_counter()
            self._queued += 1
            try:
                while self._handoffs == 0 and self._in_flight >= self.max_in_flight:
                    self._condition.wait()
            finally:
                self._queued -= 1
            if self._handoffs:
                self._handoffs -= 1  # slot transferred; in_flight unchanged
            else:
                self._in_flight += 1
            self._admitted += 1
            _ADMISSION_WAIT_SECONDS.observe(time.perf_counter() - wait_start)

    def release(self) -> None:
        with self._condition:
            if self._queued > 0:
                # Hand the slot straight to a queued waiter instead of
                # freeing it: the slot is never visibly free, so a fresh
                # arrival can never barge past threads already waiting.
                self._handoffs += 1
            else:
                self._in_flight -= 1
            self._condition.notify()

    @contextmanager
    def slot(self):
        """``with admission.slot():`` around one admitted solve batch."""
        self.acquire()
        try:
            yield
        finally:
            self.release()


class SolveTicket:
    """One in-flight solve: the leader resolves it, followers wait on it."""

    def __init__(self, key: Tuple) -> None:
        self.key = key
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"timed out after {timeout}s waiting for an in-flight solve"
            )
        if self._error is not None:
            raise self._error
        return self._value


class QueryCoalescer:
    """Share in-flight solves between requests asking the same question.

    :meth:`claim` either makes the caller the *leader* for a key (it must
    later :meth:`resolve`/:meth:`fail` the ticket, even on error) or hands
    back the existing in-flight ticket to wait on.  Once resolved, the key
    leaves the in-flight table — results are *not* cached here; the
    spectrum/cut stores below already answer warm repeats, this layer only
    collapses concurrent duplicates of one cold solve.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: Dict[Tuple, SolveTicket] = {}
        self._leaders = 0
        self._coalesced = 0

    @property
    def leaders(self) -> int:
        """Claims that had to run the solve themselves."""
        return self._leaders

    @property
    def coalesced(self) -> int:
        """Claims served by somebody else's in-flight solve."""
        return self._coalesced

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "leaders": self._leaders,
                "coalesced": self._coalesced,
                "in_flight": len(self._in_flight),
            }

    def claim(self, key: Tuple) -> Tuple[SolveTicket, bool]:
        """Returns ``(ticket, is_leader)`` for one query key."""
        with self._lock:
            ticket = self._in_flight.get(key)
            if ticket is not None:
                self._coalesced += 1
                _COALESCE_TOTAL.inc(role="follower")
                return ticket, False
            ticket = SolveTicket(key)
            self._in_flight[key] = ticket
            self._leaders += 1
            _COALESCE_TOTAL.inc(role="leader")
            return ticket, True

    def resolve(self, ticket: SolveTicket, value) -> None:
        with self._lock:
            self._in_flight.pop(ticket.key, None)
        ticket.resolve(value)

    def fail(self, ticket: SolveTicket, error: BaseException) -> None:
        with self._lock:
            self._in_flight.pop(ticket.key, None)
        ticket.fail(error)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    daemon_threads = True
    allow_reuse_address = True


class _QuietRequestHandler(WSGIRequestHandler):
    """Per-request access logging off: ``/metrics`` is the observability."""

    # Socket timeout (socketserver applies it in setup()): a client that
    # declares a Content-Length it never sends would otherwise park a
    # handler thread in wsgi.input.read() forever — with this, the read
    # raises TimeoutError, the app answers 503, and the thread is freed.
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


class BoundServer:
    """A :class:`~repro.runtime.service.BoundService` bound to a TCP port.

    Parameters
    ----------
    service:
        The service to expose (owns every cache tier).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests do this).
    max_in_flight, max_queue, retry_after_seconds:
        Admission-control knobs (see :class:`AdmissionController`).
    metrics:
        Optional shared registry; by default the server owns a fresh one.
    coalesce:
        Set ``False`` to disable in-flight coalescing (benchmarks measure
        the difference; production keeps it on).

    Use either as a context manager around :meth:`start` (background
    thread, e.g. tests/benchmarks) or via :meth:`serve_forever` (the CLI).
    """

    def __init__(
        self,
        service: BoundService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
        metrics: Optional[MetricsRegistry] = None,
        coalesce: bool = True,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = AdmissionController(
            max_in_flight=max_in_flight,
            max_queue=max_queue,
            retry_after_seconds=retry_after_seconds,
        )
        self.coalescer = QueryCoalescer() if coalesce else None
        self.app = BoundsApp(
            service,
            metrics=self.metrics,
            admission=self.admission,
            coalescer=self.coalescer,
        )
        self._httpd = make_server(
            host,
            port,
            self.app,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietRequestHandler,
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BoundServer":
        """Serve from a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._httpd.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "BoundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
