"""Stdlib WSGI application exposing :class:`BoundService` over HTTP.

Endpoints (see :mod:`repro.server.protocol` for the ``/v1`` wire schema):

=======  ===================  ===============================================
method   path                 what it serves
=======  ===================  ===============================================
POST     ``/v1/bounds``       a batch of bound queries -> a batch of answers
GET      ``/v1/stats``        service/cache/admission/coalescing counters
GET      ``/v1/fleet/stats``  per-worker rollup + fleet totals (fleet only)
GET      ``/healthz``         liveness: ``{"status": "ok", ...}``
GET      ``/metrics``         Prometheus text exposition; on a fleet's
                              *shared* port, the merged all-worker view
=======  ===================  ===============================================

The app is a plain WSGI callable with **no** third-party dependencies and
no opinion about threading: hand it to any WSGI container.  The two
serving policies — admission control and in-flight coalescing — are
injected as duck-typed collaborators (``admission`` with
``slot()``/``stats()``, ``coalescer`` with ``claim``/``resolve``/``fail``/
``stats``); :class:`repro.server.runner.BoundServer` wires the stdlib
implementations in.  Keeping the app policy-free is what lets the test
suite drive overload and coalescing deterministically with stub services.

Error contract: every non-2xx response body is the structured error object
of :func:`repro.server.protocol.encode_error` — protocol violations map to
their declared status, an admission rejection maps to 429 with a
``Retry-After`` header, service-level ``ValueError`` (unknown
normalization/method, over-large ``k``) maps to 400, and anything
unexpected to 500.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import urllib.request
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.obs.metrics import latency_quantiles, merge_expositions
from repro.runtime.service import BoundAnswer, BoundService
from repro.server.metrics import MetricsRegistry, global_registry
from repro.server.protocol import (
    PROTOCOL_VERSION,
    DecodedQuery,
    GraphRegistry,
    ProtocolError,
    decode_bounds_request,
    encode_answers,
    encode_error,
)
from repro.utils.logging import get_logger

__all__ = [
    "BoundsApp",
    "ServerOverloadedError",
    "MAX_BODY_BYTES",
    "SLOW_QUERY_ENV_VAR",
    "FLEET_SCRAPE_TIMEOUT_SECONDS",
]

#: Per-sibling timeout when an aggregating worker scrapes the fleet's
#: direct ports; an unreachable worker is reported down, never waited on.
FLEET_SCRAPE_TIMEOUT_SECONDS = 2.0

#: Requests slower than this many seconds are logged (and counted in
#: ``repro_slow_queries_total``); unset/unparsable disables the log.
SLOW_QUERY_ENV_VAR = "REPRO_SLOW_QUERY_SECONDS"

_SLOW_QUERIES = global_registry().counter(
    "repro_slow_queries_total",
    "HTTP requests slower than the REPRO_SLOW_QUERY_SECONDS threshold.",
)

_SHARD_REDIRECTS = global_registry().counter(
    "repro_shard_redirects_total",
    "Shared-socket batches redirected (307) to their owning worker.",
)


def _slow_query_threshold() -> Optional[float]:
    raw = os.environ.get(SLOW_QUERY_ENV_VAR)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None

def _scrape_metric_or_zero(text: str, name: str, **labels: str) -> float:
    """One summed metric from an exposition, 0 when absent.

    The fleet rollup reads each worker's scrape with this: a worker that
    has not registered a given metric yet (no admission controller, no
    lease activity) contributes zero rather than failing the rollup.
    Integral values come back as ``int`` for clean JSON.
    """
    from repro.server.client import parse_metric

    try:
        value = parse_metric(text, name, **labels)
    except KeyError:
        return 0
    return int(value) if float(value).is_integer() else value


#: Request bodies beyond this are rejected before JSON parsing (an inline
#: edge list at this size is ~4M edges — send an .npz to the operator
#: instead of a JSON document to the server).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Verbs allowed as metric label values; anything else (clients can send
#: arbitrary method tokens) is labelled "other" so request metrics cannot
#: grow one label series per invented verb.
_LABELLED_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"}
)


class ServerOverloadedError(RuntimeError):
    """Load shed by admission control; mapped to 429 + ``Retry-After``.

    Defined here (not in :mod:`repro.server.runner`, which raises it) so
    the app can translate it without importing the runner's policies.
    """

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class BoundsApp:
    """The WSGI callable serving one :class:`BoundService`.

    Parameters
    ----------
    service:
        The bound service every ``/v1/bounds`` batch is submitted to.
    metrics:
        Registry the request metrics (and the service-counter passthrough
        gauges) are registered in; defaults to a private one.
    graphs:
        Registry resolving ``{"fingerprint": ...}`` graph refs; defaults
        to a private LRU of inline-submitted graphs.
    admission:
        Optional admission controller; only ``POST /v1/bounds`` batches
        that must actually solve pass through it.
    coalescer:
        Optional in-flight coalescer for identical concurrent queries.
    sharding:
        Optional :class:`repro.server.runner.ShardInfo` (duck-typed:
        ``worker_id``, ``owner(key)``, ``url_for(id)``, ``describe()``).
        When set, this app is one worker of a fleet: it stamps
        ``X-Repro-Worker`` on every response, and shared-socket
        ``/v1/bounds`` batches wholly owned by a *different* worker are
        307-redirected to that worker's direct port so its memory tier
        stays hot for its shard.
    solve_timeout_seconds:
        Ceiling on waiting for another request's in-flight solve.
    """

    def __init__(
        self,
        service: BoundService,
        metrics: Optional[MetricsRegistry] = None,
        graphs: Optional[GraphRegistry] = None,
        admission=None,
        coalescer=None,
        sharding=None,
        solve_timeout_seconds: float = 300.0,
    ) -> None:
        self._service = service
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._graphs = graphs if graphs is not None else GraphRegistry()
        self._admission = admission
        self._coalescer = coalescer
        self._sharding = sharding
        self._solve_timeout = solve_timeout_seconds
        self._slow_query_seconds = _slow_query_threshold()
        self._slow_log = get_logger("server.slow")
        self._started = time.time()
        self._routes = {
            "/v1/bounds": ("bounds", self._handle_bounds, {"POST"}),
            "/v1/stats": ("stats", self._handle_stats, {"GET"}),
            "/v1/fleet/stats": ("fleet_stats", self._handle_fleet_stats, {"GET"}),
            "/healthz": ("healthz", self._handle_healthz, {"GET"}),
            "/metrics": ("metrics", self._handle_metrics, {"GET"}),
        }

        m = self._metrics
        self._requests_total = m.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint, method and status.",
            labelnames=("endpoint", "method", "status"),
        )
        self._request_seconds = m.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by endpoint.",
            labelnames=("endpoint",),
        )
        self._queries_total = m.counter(
            "repro_queries_total",
            "Bound queries received over HTTP, by method and normalization.",
            labelnames=("method", "normalization"),
        )
        counters: Callable[[], Dict[str, int]] = service.counters
        m.counter(
            "repro_eigensolves_total",
            "Eigensolves the service actually performed (cache misses); a "
            "warm store keeps this at 0.",
            callback=lambda: counters()["cache_misses"],
        )
        m.counter(
            "repro_flow_calls_total",
            "Max-flow solves the convex min-cut baseline actually "
            "performed; a warm cut store keeps this at 0.",
            callback=lambda: counters()["flow_calls"],
        )
        m.counter(
            "repro_cache_hits_total",
            "Spectrum lookups answered without an eigensolve.",
            callback=lambda: counters()["cache_hits"],
        )
        m.counter(
            "repro_store_hits_total",
            "Spectrum lookups answered from the persistent store tier.",
            callback=lambda: counters()["store_hits"],
        )
        m.counter(
            "repro_service_queries_total",
            "Queries answered by the underlying BoundService.",
            callback=lambda: counters()["queries_served"],
        )
        m.counter(
            "repro_batch_deduped_total",
            "Queries served for free by batch-level dedup in submit().",
            callback=lambda: counters()["deduped"],
        )
        if admission is not None:
            m.counter(
                "repro_admission_rejections_total",
                "Requests shed with 429 by admission control.",
                callback=lambda: admission.rejected,
            )
            m.gauge(
                "repro_in_flight_solves",
                "Solve batches currently admitted.",
                callback=lambda: admission.in_flight,
            )
            m.gauge(
                "repro_queued_solves",
                "Solve batches waiting for an admission slot.",
                callback=lambda: admission.queued,
            )
        if coalescer is not None:
            m.counter(
                "repro_coalesced_queries_total",
                "Queries served by waiting on another request's identical "
                "in-flight solve.",
                callback=lambda: coalescer.coalesced,
            )
            m.counter(
                "repro_coalesce_leader_solves_total",
                "Queries that led a coalesced in-flight solve.",
                callback=lambda: coalescer.leaders,
            )

    # ------------------------------------------------------------------
    # WSGI entry point
    # ------------------------------------------------------------------
    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        start = time.perf_counter()
        endpoint, handler, allowed = self._route(path)
        extra_headers: List[Tuple[str, str]] = []
        with obs.span("http_request", endpoint=endpoint, method=method) as request_span:
            if handler is None:
                status, body = 404, encode_error(f"no such endpoint: {path}", "not-found")
            elif method not in allowed:
                extra_headers.append(("Allow", ", ".join(sorted(allowed))))
                status, body = 405, encode_error(
                    f"{method} is not supported on {path}", "method-not-allowed"
                )
            else:
                try:
                    status, body, extra_headers = handler(environ)
                except ProtocolError as exc:
                    status, body = exc.status, encode_error(exc.message, exc.code, exc.detail)
                except ServerOverloadedError as exc:
                    retry_after = max(1, int(round(exc.retry_after_seconds)))
                    extra_headers = [("Retry-After", str(retry_after))]
                    status, body = 429, encode_error(str(exc), "overloaded")
                except TimeoutError as exc:
                    status, body = 503, encode_error(str(exc), "solve-timeout")
                except ValueError as exc:
                    status, body = 400, encode_error(str(exc), "invalid-query")
                except Exception as exc:  # noqa: BLE001 - the server must answer
                    status, body = 500, encode_error(
                        f"{type(exc).__name__}: {exc}", "internal-error"
                    )
            request_span.set_attr(status_code=status)
        if isinstance(body, (dict, list)):
            raw = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        else:
            raw = body if isinstance(body, bytes) else str(body).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elapsed = time.perf_counter() - start
        method_label = method if method in _LABELLED_METHODS else "other"
        self._requests_total.inc(
            endpoint=endpoint, method=method_label, status=str(status)
        )
        self._request_seconds.observe(elapsed, endpoint=endpoint)
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(raw))),
        ] + list(extra_headers)
        if self._sharding is not None:
            headers.append(("X-Repro-Worker", str(self._sharding.worker_id)))
        if request_span.trace_id is not None:
            headers.append(("X-Repro-Trace-Id", request_span.trace_id))
        if self._slow_query_seconds is not None and elapsed >= self._slow_query_seconds:
            _SLOW_QUERIES.inc()
            self._slow_log.warning(
                "slow query: %s %s -> %d in %.3fs (threshold %.3fs, trace_id=%s)",
                method,
                path,
                status,
                elapsed,
                self._slow_query_seconds,
                request_span.trace_id or "-",
            )
        start_response(f"{status} {_REASONS.get(status, 'Unknown')}", headers)
        return [raw]

    def _route(self, path: str):
        return self._routes.get(path, ("unknown", None, set()))

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _handle_healthz(self, environ):
        body = {
            "status": "ok",
            "protocol_version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
        }
        return 200, body, []

    def _handle_metrics(self, environ):
        # On a fleet's *shared* socket (tagged ``repro.shard_redirect``
        # like the bounds redirects), whichever worker wins the accept
        # answers for the whole fleet: its own exposition merged with a
        # scrape of every sibling's direct port.  Direct-port requests
        # always render locally — that is what the aggregation scrapes,
        # so recursion is structurally impossible.
        if self._sharding is not None and environ.get("repro.shard_redirect"):
            return 200, self._fleet_metrics_text(), []
        return 200, self._local_metrics_text(), []

    def _local_metrics_text(self) -> str:
        # Per-server metrics (request counters, callback gauges) plus the
        # process-global registry (eigensolve/cache/flow instrumentation
        # from repro.obs) in one exposition.
        text = self._metrics.render()
        shared = global_registry()
        if shared is not self._metrics:
            text += shared.render()
        return text

    def _handle_stats(self, environ):
        body: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
            "graphs_registered": len(self._graphs),
            "service": self._service.stats(),
            "metrics": self._metrics.snapshot(),
            "latency_quantiles": latency_quantiles(),
        }
        if self._admission is not None:
            body["admission"] = self._admission.stats()
        if self._coalescer is not None:
            body["coalescing"] = self._coalescer.stats()
        if self._sharding is not None:
            body["fleet"] = self._sharding.describe()
        return 200, body, []

    # ------------------------------------------------------------------
    # fleet aggregation
    # ------------------------------------------------------------------
    def _scrape_fleet(self) -> List[Dict[str, object]]:
        """Every worker's direct-port ``/metrics`` text (``None`` if down).

        The local worker renders in-process instead of scraping itself
        over HTTP; siblings get :data:`FLEET_SCRAPE_TIMEOUT_SECONDS` each.
        """
        scrapes: List[Dict[str, object]] = []
        for worker_id in range(self._sharding.num_workers):
            url = self._sharding.url_for(worker_id)
            if worker_id == self._sharding.worker_id:
                text: Optional[str] = self._local_metrics_text()
            else:
                try:
                    with urllib.request.urlopen(
                        f"{url}/metrics", timeout=FLEET_SCRAPE_TIMEOUT_SECONDS
                    ) as response:
                        text = response.read().decode("utf-8")
                except (OSError, ValueError):
                    text = None
            scrapes.append({"worker": worker_id, "url": url, "text": text})
        return scrapes

    def _fleet_metrics_text(self) -> str:
        """The merged all-worker exposition served on the shared port.

        Every sample keeps its ``worker=<id>`` process label, so label-
        blind sums over the aggregate equal hand-summing the direct
        ports.  A worker that cannot be scraped contributes a synthetic
        ``repro_worker_up{worker="<id>"} 0`` sample instead of silently
        vanishing from the exposition.
        """
        texts: List[str] = []
        for scrape in self._scrape_fleet():
            if scrape["text"] is not None:
                texts.append(scrape["text"])
            else:
                texts.append(
                    "# HELP repro_worker_up 1 for each live serving worker "
                    "process.\n"
                    "# TYPE repro_worker_up gauge\n"
                    f'repro_worker_up{{worker="{scrape["worker"]}"}} 0\n'
                )
        return merge_expositions(texts)

    def _handle_fleet_stats(self, environ):
        if self._sharding is None:
            raise ProtocolError(
                "this server is not part of a fleet; /v1/fleet/stats is "
                "only served by --workers N fleets",
                code="not-a-fleet",
                status=404,
            )
        rollup_fields = (
            ("up", "repro_worker_up", {}),
            ("restarts", "repro_worker_restarts", {}),
            ("in_flight", "repro_in_flight_solves", {}),
            ("queued", "repro_queued_solves", {}),
            ("admission_rejections", "repro_admission_rejections_total", {}),
            ("eigensolves", "repro_eigensolves_total", {}),
            ("cache_hits", "repro_cache_hits_total", {}),
            ("lease_leaders", "repro_lease_total", {"role": "leader"}),
            ("lease_followers", "repro_lease_total", {"role": "follower"}),
            ("http_requests", "repro_http_requests_total", {}),
            ("shard_redirects", "repro_shard_redirects_total", {}),
            ("slow_queries", "repro_slow_queries_total", {}),
        )
        workers: List[Dict[str, object]] = []
        totals = {field: 0 for field, _, _ in rollup_fields}
        for scrape in self._scrape_fleet():
            entry: Dict[str, object] = {
                "worker": scrape["worker"],
                "url": scrape["url"],
                "reachable": scrape["text"] is not None,
            }
            if scrape["text"] is not None:
                text = scrape["text"]
                for field, metric, labels in rollup_fields:
                    value = _scrape_metric_or_zero(text, metric, **labels)
                    entry[field] = value
                    totals[field] += value
            workers.append(entry)
        body = {
            "num_workers": self._sharding.num_workers,
            "aggregated_by": self._sharding.worker_id,
            "workers": workers,
            "totals": totals,
            "unreachable": [
                entry["worker"] for entry in workers if not entry["reachable"]
            ],
        }
        return 200, body, []

    def _handle_bounds(self, environ):
        payload = self._read_json_body(environ)
        decoded = decode_bounds_request(payload, self._graphs)
        redirect = self._shard_redirect(environ, decoded)
        if redirect is not None:
            return redirect
        for item in decoded:
            self._queries_total.inc(
                method=item.query.method, normalization=item.query.normalization
            )
        answers = self._solve(decoded)
        body = encode_answers(answers, [item.fingerprint for item in decoded])
        return 200, body, []

    def _shard_redirect(self, environ, decoded: List[DecodedQuery]):
        """307 to the owning worker, or ``None`` to serve locally.

        Only batches arriving on the fleet's *shared* socket (tagged
        ``repro.shard_redirect`` by the worker runner) are eligible —
        direct-port traffic is served where it lands, which is what makes
        redirect loops structurally impossible.  A batch is bounced only
        when every query in it is owned by one single *other* worker;
        mixed-owner batches are served locally rather than split.
        """
        if self._sharding is None or not environ.get("repro.shard_redirect"):
            return None
        owners = {self._sharding.owner(item.routing_key) for item in decoded}
        if len(owners) != 1:
            return None
        owner = owners.pop()
        if owner == self._sharding.worker_id:
            return None
        _SHARD_REDIRECTS.inc()
        location = f"{self._sharding.url_for(owner)}/v1/bounds"
        body = {
            "redirect": location,
            "owner_worker": owner,
            "worker": self._sharding.worker_id,
        }
        return 307, body, [("Location", location)]

    def _read_json_body(self, environ) -> object:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise ProtocolError("invalid Content-Length header")
        if length < 0:
            # read(-1) would block on the open socket until the client
            # hangs up, parking a handler thread per such request.
            raise ProtocolError("invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} "
                f"byte ceiling",
                code="body-too-large",
                status=413,
            )
        raw = environ["wsgi.input"].read(length) if length else b""
        if not raw:
            raise ProtocolError("request body is empty; send a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON body: {exc}", code="malformed-json")

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _solve(self, decoded: List[DecodedQuery]):
        """Answer a decoded batch through the coalescing + admission gates.

        Only *leader* solves (queries nobody else is currently computing)
        pass through admission control; followers just wait on the
        in-flight ticket, so a thundering herd of identical requests is
        served whole however small the admission window is.
        """
        if self._coalescer is None:
            with self._admission.slot() if self._admission else nullcontext():
                return self._service.submit([item.query for item in decoded])
        unique: Dict[Tuple, DecodedQuery] = {}
        for item in decoded:
            unique.setdefault(item.key, item)
        claims = {key: self._coalescer.claim(key) for key in unique}
        leader_keys = [key for key, (_, is_leader) in claims.items() if is_leader]
        if leader_keys:
            settled = set()
            try:
                with self._admission.slot() if self._admission else nullcontext():
                    for key in leader_keys:
                        ticket = claims[key][0]
                        # One submit per key (the keys are already unique,
                        # so a combined batch would dedupe nothing) and
                        # per-key error attribution: a bad query must fail
                        # only its own ticket, never a coalesced follower
                        # of a *different*, valid query in this request.
                        try:
                            [answer] = self._service.submit([unique[key].query])
                        except Exception as exc:
                            self._coalescer.fail(ticket, exc)
                        else:
                            self._coalescer.resolve(ticket, answer)
                        settled.add(key)
            except BaseException as exc:
                # Admission shed the request before (or between) solves, or
                # a system-exiting exception interrupted the loop: settle
                # every remaining ticket so followers see the failure
                # instead of hanging on an orphaned in-flight key.
                for key in leader_keys:
                    if key not in settled:
                        self._coalescer.fail(claims[key][0], exc)
                raise
        results = {}
        for key, (ticket, is_leader) in claims.items():
            answer = ticket.wait(self._solve_timeout)
            if not is_leader and isinstance(answer, BoundAnswer):
                # Followers rode the leader's in-flight solve: point at the
                # trace that actually did the work and zero the eigensolve
                # time so aggregating eig_elapsed_seconds over answers
                # counts each solve exactly once.
                answer = dataclasses.replace(
                    answer,
                    served_by_trace_id=answer.trace_id,
                    eig_elapsed_seconds=0.0,
                )
            results[key] = answer
        return [results[item.key] for item in decoded]
