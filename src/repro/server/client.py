"""Thin stdlib HTTP client for the bounds server and its fleets.

:class:`BoundsClient` speaks the versioned ``/v1`` protocol of
:mod:`repro.server.protocol` over :mod:`http.client` — no third-party
dependencies, which is the point: the test suite and the load-generating
benchmark exercise the server exactly the way an external service would.

Transport properties that matter for measuring the server honestly:

* **keep-alive** — one pooled :class:`http.client.HTTPConnection` per
  host:port, reused across requests, so a client thread pays the TCP
  handshake once per connection rather than once per request (the server
  side speaks HTTP/1.1 since :class:`repro.server.runner` grew persistent
  connections).  A connection that died while pooled (server restart,
  idle timeout) is retried once on a fresh connection — only ever for
  *reused* connections, so a genuinely failing request still fails.
* **redirects** — 307/308 are followed with method and body preserved
  (``urllib`` refuses to re-POST), which is how a fleet's shard routing
  reaches the client: the shared port answers 307 to the owning worker's
  direct port and the client transparently lands there.
* **typed errors** — any structured server error surfaces as
  :class:`ServerError` (``status``, ``code``, the 429 ``Retry-After``
  hint) instead of a bare exception.
"""

from __future__ import annotations

import json
import re
import threading
from http.client import (
    BadStatusLine,
    HTTPConnection,
    HTTPException,
    RemoteDisconnected,
)
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urljoin, urlsplit

from repro.runtime.service import BoundAnswer, BoundQuery
from repro.server.protocol import decode_answers, encode_bounds_request

__all__ = ["BoundsClient", "ServerError", "parse_metric"]

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)

_LABEL_PAIR = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')

#: Redirect-following ceiling; a shard redirect is exactly one hop, so
#: hitting this means the fleet is misconfigured, not that we need depth.
_MAX_REDIRECTS = 3


class ServerError(RuntimeError):
    """A non-2xx response, carrying the structured protocol error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_seconds = retry_after_seconds


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    if not raw:
        return {}
    return {m.group("key"): m.group("value") for m in _LABEL_PAIR.finditer(raw)}


def parse_metric(metrics_text: str, name: str, **labels: str) -> float:
    """Sum of every sample of ``name`` in a Prometheus text exposition.

    Keyword arguments filter by label: ``parse_metric(text,
    "repro_lease_total", role="leader")`` sums only samples whose label
    set contains ``role="leader"`` (extra labels on the sample — e.g. the
    fleet's ``worker`` process label — are ignored).  Histogram series
    must be addressed by their full sample name (``..._count``,
    ``..._sum``); plain counters and gauges by their metric name.  Raises
    ``KeyError`` when no sample matches — asking for a metric the server
    does not export should fail loudly in tests and CI.
    """
    total = 0.0
    found = False
    wanted = {key: str(value) for key, value in labels.items()}
    for line in metrics_text.splitlines():
        if line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line.strip())
        if not match or match.group("name") != name:
            continue
        if wanted:
            sample_labels = _parse_labels(match.group("labels"))
            if any(sample_labels.get(k) != v for k, v in wanted.items()):
                continue
        total += float(match.group("value"))
        found = True
    if not found:
        raise KeyError(f"metric {name!r} not found in exposition")
    return total


class BoundsClient:
    """Client for one bounds server, e.g. ``BoundsClient("http://host:port")``.

    Thread-safe; connections are pooled per ``host:port`` *and* per
    thread, so concurrent benchmark threads each keep their own persistent
    connection instead of serialising on one socket.  Use as a context
    manager (or call :meth:`close`) to drop the pooled connections.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._local = threading.local()
        self._lock = threading.Lock()
        self._all_connections: List[HTTPConnection] = []

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _pool(self) -> Dict[str, Tuple[HTTPConnection, bool]]:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        return pool

    def _connection(self, netloc: str) -> Tuple[HTTPConnection, bool]:
        """This thread's pooled connection for ``netloc`` + reused flag."""
        pool = self._pool()
        conn = pool.get(netloc)
        if conn is not None:
            return conn, True
        conn = HTTPConnection(netloc, timeout=self.timeout)
        pool[netloc] = conn
        with self._lock:
            self._all_connections.append(conn)
        return conn, False

    def _discard(self, netloc: str) -> None:
        conn = self._pool().pop(netloc, None)
        if conn is not None:
            conn.close()
            with self._lock:
                try:
                    self._all_connections.remove(conn)
                except ValueError:
                    pass

    def _request(self, path: str, payload: Optional[dict] = None) -> bytes:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        url = f"{self.base_url}{path}"
        for _ in range(_MAX_REDIRECTS + 1):
            status, headers, raw = self._round_trip(url, body)
            if status in (307, 308):
                location = headers.get("Location")
                if not location:
                    raise ServerError(status, "bad-redirect",
                                      f"{url}: redirect without a Location header")
                url = urljoin(url, location)
                continue
            if 200 <= status < 300:
                return raw
            raise self._server_error(status, headers, raw)
        raise ServerError(0, "redirect-loop",
                          f"{url}: more than {_MAX_REDIRECTS} redirects")

    def _round_trip(
        self, url: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        parts = urlsplit(url)
        netloc = parts.netloc
        target = parts.path or "/"
        if parts.query:
            target += f"?{parts.query}"
        method = "POST" if body is not None else "GET"
        request_headers = {"Content-Type": "application/json"} if body else {}
        conn, reused = self._connection(netloc)
        try:
            conn.request(method, target, body=body, headers=request_headers)
            response = conn.getresponse()
            raw = response.read()
        except (RemoteDisconnected, BadStatusLine, BrokenPipeError,
                ConnectionResetError) as exc:
            # A *reused* connection may have been closed server-side while
            # pooled (restart, keep-alive timeout); that is the one case a
            # transparent retry on a fresh connection is sound — the
            # request never reached a handler.  A fresh connection failing
            # the same way is a real error.
            self._discard(netloc)
            if not reused:
                raise ServerError(0, "unreachable", f"{url}: {exc}") from None
            conn, _ = self._connection(netloc)
            try:
                conn.request(method, target, body=body, headers=request_headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, HTTPException) as retry_exc:
                self._discard(netloc)
                raise ServerError(0, "unreachable", f"{url}: {retry_exc}") from None
        except (OSError, HTTPException) as exc:
            self._discard(netloc)
            raise ServerError(0, "unreachable", f"{url}: {exc}") from None
        headers = {key: value for key, value in response.getheaders()}
        if response.will_close:
            self._discard(netloc)
        return response.status, headers, raw

    @staticmethod
    def _server_error(status: int, headers: Dict[str, str], raw: bytes) -> ServerError:
        code, message = "unknown", f"HTTP {status}"
        try:
            error = json.loads(raw.decode("utf-8")).get("error", {})
            code = error.get("code", code)
            message = error.get("message", message)
        except (ValueError, AttributeError):
            pass
        retry_after = headers.get("Retry-After")
        try:
            # RFC 9110 also allows an HTTP-date here (a proxy may shed load
            # with one); anything non-numeric degrades to "no hint".
            retry_after_seconds = float(retry_after) if retry_after is not None else None
        except ValueError:
            retry_after_seconds = None
        return ServerError(status, code, message, retry_after_seconds)

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request(path).decode("utf-8"))

    def close(self) -> None:
        """Close every pooled connection (all threads)."""
        with self._lock:
            connections, self._all_connections = self._all_connections, []
        for conn in connections:
            conn.close()
        self._local = threading.local()

    def __enter__(self) -> "BoundsClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._get_json("/healthz")

    def stats(self) -> Dict[str, object]:
        """``GET /v1/stats``."""
        return self._get_json("/v1/stats")

    def fleet_worker_urls(self) -> List[str]:
        """Direct per-worker base URLs, or ``[]`` off a plain server.

        From ``/v1/stats``'s ``fleet`` block; per-worker ``/metrics`` are
        scraped at these (each worker is its own process — the shared
        port would answer for whichever worker won the accept).
        """
        fleet = self.stats().get("fleet")
        if not isinstance(fleet, dict):
            return []
        return [str(url) for url in fleet.get("worker_urls", [])]

    def fleet_stats(self) -> Dict[str, object]:
        """``GET /v1/fleet/stats`` — per-worker rollup plus fleet totals.

        Only fleets serve it: point the client at the *shared* port of a
        ``--workers N`` deployment (any worker aggregates by scraping its
        siblings' direct ports).  A plain single-process server answers
        404 (``not-a-fleet``), surfaced as :class:`ServerError`.
        """
        return self._get_json("/v1/fleet/stats")

    def fleet_metrics(self) -> str:
        """The merged all-worker Prometheus exposition, one scrape.

        Against a fleet's shared port, ``GET /metrics`` is answered with
        every worker's samples (``worker=<id>`` labels preserved), so
        ``parse_metric`` over this text equals hand-summing the direct
        ports.  Against a plain server it is that server's exposition.
        """
        return self._request("/metrics").decode("utf-8")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition."""
        return self._request("/metrics").decode("utf-8")

    def metric(self, name: str, **labels: str) -> float:
        """One metric's summed value, scraped from ``GET /metrics``."""
        return parse_metric(self.metrics_text(), name, **labels)

    def bounds(
        self, queries: Sequence[Union[BoundQuery, Dict[str, object]]]
    ) -> List[BoundAnswer]:
        """``POST /v1/bounds`` — answers in query order.

        Queries are :class:`BoundQuery` objects (family-spec or live-graph
        refs; live graphs are sent inline) or raw wire dicts (for
        fingerprint refs).  The returned answers are full
        :class:`BoundAnswer` instances, field-for-field what a direct
        :meth:`BoundService.submit` call would produce.
        """
        payload = encode_bounds_request(queries)
        raw = self._request("/v1/bounds", payload)
        return decode_answers(json.loads(raw.decode("utf-8")))

    def bounds_raw(self, payload: dict) -> dict:
        """``POST /v1/bounds`` with a caller-built body, returning raw JSON."""
        return json.loads(self._request("/v1/bounds", payload).decode("utf-8"))
