"""Thin stdlib HTTP client for the bounds server.

:class:`BoundsClient` speaks the versioned ``/v1`` protocol of
:mod:`repro.server.protocol` over :mod:`urllib` — no third-party
dependencies, which is the point: the test suite and the load-generating
benchmark exercise the server exactly the way an external service would,
and any structured server error surfaces as a typed :class:`ServerError`
(with ``status``, ``code`` and the 429 ``Retry-After`` hint) instead of a
bare ``HTTPError``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.runtime.service import BoundAnswer, BoundQuery
from repro.server.protocol import decode_answers, encode_bounds_request

__all__ = ["BoundsClient", "ServerError", "parse_metric"]

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


class ServerError(RuntimeError):
    """A non-2xx response, carrying the structured protocol error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_seconds = retry_after_seconds


def parse_metric(metrics_text: str, name: str) -> float:
    """Sum of every sample of ``name`` in a Prometheus text exposition.

    Histogram series must be addressed by their full sample name
    (``..._count``, ``..._sum``); plain counters and gauges by their metric
    name.  Raises ``KeyError`` when no sample matches — asking for a metric
    the server does not export should fail loudly in tests and CI.
    """
    total = 0.0
    found = False
    for line in metrics_text.splitlines():
        if line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line.strip())
        if match and match.group("name") == name:
            total += float(match.group("value"))
            found = True
    if not found:
        raise KeyError(f"metric {name!r} not found in exposition")
    return total


class BoundsClient:
    """Client for one bounds server, e.g. ``BoundsClient("http://host:port")``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, path: str, payload: Optional[dict] = None) -> bytes:
        url = f"{self.base_url}{path}"
        if payload is not None:
            request = Request(
                url,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        else:
            request = Request(url, method="GET")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            raise self._server_error(exc) from None
        except URLError as exc:
            raise ServerError(0, "unreachable", f"{url}: {exc.reason}") from None

    @staticmethod
    def _server_error(exc: HTTPError) -> ServerError:
        code, message = "unknown", exc.reason
        try:
            error = json.loads(exc.read().decode("utf-8")).get("error", {})
            code = error.get("code", code)
            message = error.get("message", message)
        except (ValueError, AttributeError):
            pass
        retry_after = exc.headers.get("Retry-After") if exc.headers else None
        try:
            # RFC 9110 also allows an HTTP-date here (a proxy may shed load
            # with one); anything non-numeric degrades to "no hint".
            retry_after_seconds = float(retry_after) if retry_after is not None else None
        except ValueError:
            retry_after_seconds = None
        return ServerError(exc.code, code, message, retry_after_seconds)

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request(path).decode("utf-8"))

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._get_json("/healthz")

    def stats(self) -> Dict[str, object]:
        """``GET /v1/stats``."""
        return self._get_json("/v1/stats")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition."""
        return self._request("/metrics").decode("utf-8")

    def metric(self, name: str) -> float:
        """One metric's summed value, scraped from ``GET /metrics``."""
        return parse_metric(self.metrics_text(), name)

    def bounds(
        self, queries: Sequence[Union[BoundQuery, Dict[str, object]]]
    ) -> List[BoundAnswer]:
        """``POST /v1/bounds`` — answers in query order.

        Queries are :class:`BoundQuery` objects (family-spec or live-graph
        refs; live graphs are sent inline) or raw wire dicts (for
        fingerprint refs).  The returned answers are full
        :class:`BoundAnswer` instances, field-for-field what a direct
        :meth:`BoundService.submit` call would produce.
        """
        payload = encode_bounds_request(queries)
        raw = self._request("/v1/bounds", payload)
        return decode_answers(json.loads(raw.decode("utf-8")))

    def bounds_raw(self, payload: dict) -> dict:
        """``POST /v1/bounds`` with a caller-built body, returning raw JSON."""
        return json.loads(self._request("/v1/bounds", payload).decode("utf-8"))
