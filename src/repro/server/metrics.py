"""Compatibility shim: the metrics machinery moved to :mod:`repro.obs.metrics`.

Everything that used to live here — :class:`Counter`, :class:`Gauge`,
:class:`Histogram`, :class:`MetricsRegistry`, the latency buckets — is
re-exported unchanged so existing imports keep working.  New code should
import from :mod:`repro.obs` and record process-wide metrics into
:func:`repro.obs.global_registry`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    global_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
]
