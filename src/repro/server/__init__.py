"""repro.server — the HTTP serving layer over :class:`BoundService`.

The runtime subsystem's promise — "an HTTP front-end only needs to
JSON-decode requests into :class:`BoundQuery` objects and call
:meth:`BoundService.submit`" — made real, stdlib-only:

* :mod:`repro.server.protocol` — the versioned ``/v1`` JSON wire schema
  (shared by server and client, structured errors, graph refs as family
  specs / inline edge lists / fingerprints);
* :mod:`repro.server.app` — the WSGI application (``POST /v1/bounds``,
  ``GET /v1/stats``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.server.metrics` — thread-safe counters/gauges/histograms
  with Prometheus text rendering and passthrough of the service-level
  eigensolve/flow-call/cache counters;
* :mod:`repro.server.runner` — the threaded stdlib server with admission
  control (bounded in-flight solves + queue, 429 on overload) and
  in-flight coalescing of identical queries, plus the pre-forked
  :class:`ServerFleet` (``--workers N``): shared-socket accept sharding,
  consistent-hash 307 routing to each graph's owning worker, and worker
  supervision/respawn;
* :mod:`repro.server.client` — a thin stdlib keep-alive client that
  follows shard redirects.

``python -m repro serve`` boots the whole stack from the CLI.
"""

from repro.server.app import BoundsApp, ServerOverloadedError
from repro.server.client import BoundsClient, ServerError
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import PROTOCOL_VERSION, GraphRegistry, ProtocolError
from repro.server.runner import (
    SERVE_WORKERS_ENV_VAR,
    AdmissionController,
    BoundServer,
    FleetConfig,
    QueryCoalescer,
    ServerFleet,
    ShardInfo,
    ShardRing,
)

__all__ = [
    "AdmissionController",
    "BoundServer",
    "BoundsApp",
    "BoundsClient",
    "FleetConfig",
    "GraphRegistry",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryCoalescer",
    "SERVE_WORKERS_ENV_VAR",
    "ServerError",
    "ServerFleet",
    "ServerOverloadedError",
    "ShardInfo",
    "ShardRing",
]
