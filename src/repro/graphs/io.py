"""Serialization of computation graphs.

Two formats are supported:

* **JSON** (:func:`save_graph` / :func:`load_graph`) — a small human-readable
  document (vertex count, edge list, optional labels/op names), intentionally
  trivial so traced graphs can be inspected with standard tools.
* **NPZ** (:func:`save_graph_npz` / :func:`load_graph_npz`) — the CSR-native
  binary format: the frozen ``(m, 2)`` edge array plus metadata arrays in one
  compressed ``.npz``.  This is the fast path the sweep orchestrator's pool
  workers use to rehydrate graphs that do not come from a named generator.

Both loaders rebuild the graph through
:meth:`~repro.graphs.compgraph.ComputationGraph.add_edges_array`, so loading
never iterates edges in Python.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.graphs.compgraph import ComputationGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "save_graph_npz",
    "load_graph_npz",
]

_FORMAT_VERSION = 1


def graph_to_dict(graph: ComputationGraph) -> dict:
    """Convert a graph to a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "num_vertices": graph.num_vertices,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
        "labels": {str(v): graph.label(v) for v in graph.vertices() if graph.label(v)},
        "ops": {str(v): graph.op(v) for v in graph.vertices() if graph.op(v)},
    }


def graph_from_dict(data: dict) -> ComputationGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    version = data.get("format_version", 1)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version}")
    graph = ComputationGraph(int(data["num_vertices"]))
    edges = data.get("edges", [])
    if len(edges):
        graph.add_edges_array(np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    graph.set_labels({int(v): label for v, label in data.get("labels", {}).items()})
    graph.set_ops({int(v): op for v, op in data.get("ops", {}).items()})
    return graph


def save_graph(graph: ComputationGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph)))


def load_graph(path: Union[str, Path]) -> ComputationGraph:
    """Read a graph previously written by :func:`save_graph`."""
    path = Path(path)
    return graph_from_dict(json.loads(path.read_text()))


def _metadata_arrays(mapping: Dict[int, str]) -> Tuple[np.ndarray, np.ndarray]:
    if not mapping:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype="<U1")
    ids = np.fromiter(mapping.keys(), dtype=np.int64, count=len(mapping))
    values = np.array([mapping[int(v)] for v in ids], dtype=str)
    return ids, values


def save_graph_npz(graph: ComputationGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as a compressed CSR-native ``.npz``.

    The archive holds the frozen edge array (lexicographically sorted, the
    same array :meth:`~repro.graphs.compgraph.ComputationGraph.freeze`
    exposes) plus labels/ops as parallel id/value arrays.  No Python objects
    are pickled, so the file loads with ``allow_pickle=False``.
    """
    labels = {v: graph.label(v) for v in graph.vertices() if graph.label(v)}
    ops = {v: graph.op(v) for v in graph.vertices() if graph.op(v)}
    label_ids, label_values = _metadata_arrays(labels)
    op_ids, op_values = _metadata_arrays(ops)
    with open(Path(path), "wb") as handle:
        np.savez_compressed(
            handle,
            format_version=np.int64(_FORMAT_VERSION),
            num_vertices=np.int64(graph.num_vertices),
            edges=graph.edge_array(),
            label_ids=label_ids,
            label_values=label_values,
            op_ids=op_ids,
            op_values=op_values,
        )


def load_graph_npz(path: Union[str, Path]) -> ComputationGraph:
    """Read a graph previously written by :func:`save_graph_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph format version {version}")
        graph = ComputationGraph(int(data["num_vertices"]))
        edges = data["edges"]
        if edges.size:
            graph.add_edges_array(edges)
        graph.set_labels(
            {int(v): str(s) for v, s in zip(data["label_ids"], data["label_values"])}
        )
        graph.set_ops(
            {int(v): str(s) for v, s in zip(data["op_ids"], data["op_values"])}
        )
    return graph
