"""Serialization of computation graphs.

Graphs are stored as a small JSON document (vertex count, edge list, optional
labels/op names).  The format is intentionally trivial so that traced graphs
can be produced once and re-analysed later or inspected with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.graphs.compgraph import ComputationGraph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: ComputationGraph) -> dict:
    """Convert a graph to a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "num_vertices": graph.num_vertices,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
        "labels": {str(v): graph.label(v) for v in graph.vertices() if graph.label(v)},
        "ops": {str(v): graph.op(v) for v in graph.vertices() if graph.op(v)},
    }


def graph_from_dict(data: dict) -> ComputationGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    version = data.get("format_version", 1)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version}")
    graph = ComputationGraph(int(data["num_vertices"]))
    for u, v in data.get("edges", []):
        graph.add_edge(int(u), int(v))
    for v, label in data.get("labels", {}).items():
        graph.set_label(int(v), label)
    for v, op in data.get("ops", {}).items():
        graph.set_op(int(v), op)
    return graph


def save_graph(graph: ComputationGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph)))


def load_graph(path: Union[str, Path]) -> ComputationGraph:
    """Read a graph previously written by :func:`save_graph`."""
    path = Path(path)
    return graph_from_dict(json.loads(path.read_text()))
