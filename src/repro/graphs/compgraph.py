"""Directed acyclic computation graphs.

A :class:`ComputationGraph` models a computation in the two-level memory model
of Section 3 of the paper: every vertex is a single operation whose result is
one memory element; an edge ``u -> v`` means the result of ``u`` is an operand
of ``v``.  Sources are the inputs of the computation and sinks are its
outputs.

The class is deliberately lightweight: vertices are dense integers
``0 .. n-1`` allocated sequentially, adjacency is stored as Python lists for
cheap incremental construction, and heavier linear-algebra views
(adjacency/Laplacian matrices) live in :mod:`repro.graphs.laplacian`.
Numerical passes never iterate edges in Python: :meth:`ComputationGraph.freeze`
produces a cached, immutable :class:`~repro.graphs.csr.CSRView` (edge array +
CSR structure + structural fingerprint) that all vectorized code shares, and
:meth:`ComputationGraph.add_edges_array` lets the generators construct graphs
from bulk NumPy edge arrays instead of per-edge calls.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphs.csr import CSRView, pack_edge_key, pack_edge_keys, unpack_edge_key
from repro.utils.validation import check_nonnegative_int

__all__ = ["ComputationGraph"]


class ComputationGraph:
    """A directed acyclic computation graph.

    Parameters
    ----------
    num_vertices:
        Optional number of vertices to pre-allocate (all unlabeled).  More
        vertices can always be added with :meth:`add_vertex`.

    Notes
    -----
    * Vertices are integers ``0 .. n-1`` in insertion order.
    * Parallel edges are rejected: in the memory model an operand is either
      needed or not, so a duplicate edge never changes the I/O cost.
    * Self loops are rejected: an operation cannot consume its own result.
    * Acyclicity is *not* enforced on every ``add_edge`` (that would make
      construction quadratic); call :meth:`validate` or
      :meth:`is_acyclic` after construction, or rely on
      :meth:`topological_order`, which raises on cyclic graphs.
    """

    __slots__ = ("_succ", "_pred", "_labels", "_ops", "_num_edges", "_edge_set", "_frozen")

    def __init__(self, num_vertices: int = 0) -> None:
        check_nonnegative_int(num_vertices, "num_vertices")
        self._succ: List[List[int]] = [[] for _ in range(num_vertices)]
        self._pred: List[List[int]] = [[] for _ in range(num_vertices)]
        self._labels: Dict[int, str] = {}
        self._ops: Dict[int, str] = {}
        self._num_edges: int = 0
        # Edges are stored as packed integer keys (see repro.graphs.csr) for
        # O(1) membership tests and cheap bulk updates from edge arrays.
        self._edge_set: Set[int] = set()
        self._frozen: Optional[CSRView] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Optional[str] = None, op: Optional[str] = None) -> int:
        """Add a vertex and return its integer id.

        Parameters
        ----------
        label:
            Optional human-readable label (e.g. ``"A[1,2]"``).
        op:
            Optional operation name (e.g. ``"mul"``, ``"input"``).
        """
        vid = len(self._succ)
        self._succ.append([])
        self._pred.append([])
        if label is not None:
            self._labels[vid] = label
        if op is not None:
            self._ops[vid] = op
        self._frozen = None
        return vid

    def add_vertices(self, count: int, op: Optional[str] = None) -> List[int]:
        """Add ``count`` vertices sharing the same optional op name."""
        check_nonnegative_int(count, "count")
        start = len(self._succ)
        self._succ.extend([] for _ in range(count))
        self._pred.extend([] for _ in range(count))
        ids = list(range(start, start + count))
        if op is not None:
            for vid in ids:
                self._ops[vid] = op
        self._frozen = None
        return ids

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``u -> v`` (``u`` is an operand of ``v``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not a valid computation edge")
        key = pack_edge_key(u, v)
        if key in self._edge_set:
            raise ValueError(f"duplicate edge ({u}, {v})")
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._edge_set.add(key)
        self._num_edges += 1
        self._frozen = None

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add many edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    def add_edges_array(self, edges: np.ndarray) -> None:
        """Bulk-add edges from an ``(m, 2)`` integer array.

        This is the fast path the generators use: validation (range checks,
        self loops, duplicates — both inside the batch and against existing
        edges) is vectorized, and the adjacency lists are extended per-vertex
        group rather than per edge.  Semantically equivalent to calling
        :meth:`add_edge` for every row, but orders of magnitude faster for
        large batches.
        """
        arr = np.asarray(edges)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                f"edges must be an (m, 2) array, got shape {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"edge array must be integer-typed, got dtype {arr.dtype}")
        arr = arr.astype(np.int64, copy=False)
        n = self.num_vertices
        u, v = arr[:, 0], arr[:, 1]
        if arr.min() < 0 or arr.max() >= n:
            bad = arr[(arr.min(axis=1) < 0) | (arr.max(axis=1) >= n)][0]
            raise ValueError(
                f"edge ({int(bad[0])}, {int(bad[1])}) out of range for graph "
                f"with {n} vertices"
            )
        loops = u == v
        if loops.any():
            vertex = int(u[np.argmax(loops)])
            raise ValueError(
                f"self loop on vertex {vertex} is not a valid computation edge"
            )
        keys = pack_edge_keys(u, v)
        unique_keys = np.unique(keys)
        if unique_keys.shape[0] != keys.shape[0]:
            counts = np.bincount(np.searchsorted(unique_keys, keys))
            dup = unpack_edge_key(unique_keys[np.argmax(counts > 1)])
            raise ValueError(f"duplicate edge {dup}")
        key_list = keys.tolist()
        if self._edge_set:
            clash = self._edge_set.intersection(key_list)
            if clash:
                raise ValueError(f"duplicate edge {unpack_edge_key(min(clash))}")

        # Extend adjacency lists grouped by endpoint (stable order preserves
        # the batch's relative edge order within each vertex's list).
        order = np.argsort(u, kind="stable")
        groups_u, starts_u = np.unique(u[order], return_index=True)
        for uu, chunk in zip(groups_u.tolist(), np.split(v[order], starts_u[1:])):
            self._succ[uu].extend(chunk.tolist())
        order = np.argsort(v, kind="stable")
        groups_v, starts_v = np.unique(v[order], return_index=True)
        for vv, chunk in zip(groups_v.tolist(), np.split(u[order], starts_v[1:])):
            self._pred[vv].extend(chunk.tolist())

        self._edge_set.update(key_list)
        self._num_edges += arr.shape[0]
        self._frozen = None

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int]]
    ) -> "ComputationGraph":
        """Build a graph from a vertex count and an edge iterable or array."""
        graph = cls(num_vertices)
        if isinstance(edges, np.ndarray):
            graph.add_edges_array(edges)
        else:
            graph.add_edges(edges)
        return graph

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n = |V|``."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return self.num_vertices

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges in vertex order."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the directed edge ``u -> v`` exists."""
        if u < 0 or v < 0:
            return False
        return pack_edge_key(u, v) in self._edge_set

    def successors(self, v: int) -> Sequence[int]:
        """Vertices that consume the result of ``v``."""
        self._check_vertex(v)
        return tuple(self._succ[v])

    def predecessors(self, v: int) -> Sequence[int]:
        """Operands of ``v``."""
        self._check_vertex(v)
        return tuple(self._pred[v])

    def out_degree(self, v: int) -> int:
        """Out-degree ``d_out(v)``."""
        self._check_vertex(v)
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        """In-degree ``d_in(v)``."""
        self._check_vertex(v)
        return len(self._pred[v])

    def degree(self, v: int) -> int:
        """Total (undirected) degree ``d(v) = d_in(v) + d_out(v)``."""
        return self.in_degree(v) + self.out_degree(v)

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees, indexed by vertex id."""
        return np.array([len(s) for s in self._succ], dtype=np.int64)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees, indexed by vertex id."""
        return np.array([len(p) for p in self._pred], dtype=np.int64)

    def degrees(self) -> np.ndarray:
        """Vector of total degrees, indexed by vertex id."""
        return self.out_degrees() + self.in_degrees()

    @property
    def max_out_degree(self) -> int:
        """Maximum out-degree over all vertices (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(len(s) for s in self._succ)

    @property
    def max_in_degree(self) -> int:
        """Maximum in-degree over all vertices (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(len(p) for p in self._pred)

    def sources(self) -> List[int]:
        """Vertices with no predecessors (the inputs of the computation)."""
        return [v for v in self.vertices() if not self._pred[v]]

    def sinks(self) -> List[int]:
        """Vertices with no successors (the outputs of the computation)."""
        return [v for v in self.vertices() if not self._succ[v]]

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def label(self, v: int) -> Optional[str]:
        """Label of ``v`` (``None`` if unlabeled)."""
        self._check_vertex(v)
        return self._labels.get(v)

    def set_label(self, v: int, label: str) -> None:
        """Attach/replace a label on ``v``."""
        self._check_vertex(v)
        self._labels[v] = label

    def op(self, v: int) -> Optional[str]:
        """Operation name of ``v`` (``None`` if not recorded)."""
        self._check_vertex(v)
        return self._ops.get(v)

    def set_op(self, v: int, op: str) -> None:
        """Attach/replace the operation name of ``v``."""
        self._check_vertex(v)
        self._ops[v] = op

    def vertices_with_op(self, op: str) -> List[int]:
        """All vertices whose op name equals ``op``."""
        return [v for v in self.vertices() if self._ops.get(v) == op]

    def set_labels(self, labels: Mapping[int, str]) -> None:
        """Attach/replace labels on many vertices at once."""
        for v in labels:
            self._check_vertex(v)
        self._labels.update(labels)

    def set_ops(self, ops: Mapping[int, str]) -> None:
        """Attach/replace operation names on many vertices at once."""
        for v in ops:
            self._check_vertex(v)
        self._ops.update(ops)

    # ------------------------------------------------------------------
    # frozen array views
    # ------------------------------------------------------------------
    def freeze(self) -> CSRView:
        """Return the cached :class:`~repro.graphs.csr.CSRView` of this graph.

        The view holds the immutable edge array, the successor CSR structure,
        degree vectors and the structural :meth:`fingerprint`.  It is built at
        most once per structural state: any mutation (``add_vertex``,
        ``add_edge``, ``add_edges_array``) invalidates the cache and the next
        ``freeze()`` rebuilds it.
        """
        if self._frozen is None:
            n = self.num_vertices
            m = self._num_edges
            counts = np.fromiter((len(s) for s in self._succ), dtype=np.int64, count=n)
            u = np.repeat(np.arange(n, dtype=np.int64), counts)
            v = np.fromiter(
                (w for succ in self._succ for w in succ), dtype=np.int64, count=m
            )
            self._frozen = CSRView(n, np.stack([u, v], axis=1) if m else np.empty((0, 2), dtype=np.int64))
        return self._frozen

    def csr(self) -> sp.csr_matrix:
        """Directed unweighted adjacency as a SciPy CSR matrix (cached)."""
        return self.freeze().scipy_csr

    def edge_array(self) -> np.ndarray:
        """Immutable ``(m, 2)`` edge array sorted lexicographically."""
        return self.freeze().edges

    def fingerprint(self) -> str:
        """Structural hash of ``(n, sorted edges)``; see :class:`CSRView`.

        Equal fingerprints mean equal vertex count and directed edge set
        (labels and ops excluded), which makes the fingerprint a safe cache
        key for spectra and bounds.
        """
        return self.freeze().fingerprint

    # ------------------------------------------------------------------
    # structure: traversal, acyclicity, reachability
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Return one topological order (Kahn's algorithm).

        Raises
        ------
        ValueError
            If the graph contains a directed cycle.
        """
        indeg = [len(p) for p in self._pred]
        ready = deque(v for v in self.vertices() if indeg[v] == 0)
        order: List[int] = []
        while ready:
            v = ready.popleft()
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != self.num_vertices:
            raise ValueError("graph contains a directed cycle; not a computation graph")
        return order

    def is_acyclic(self) -> bool:
        """Return ``True`` when the graph is a DAG."""
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    def validate(self) -> None:
        """Raise ``ValueError`` unless the graph is a valid computation graph.

        A valid computation graph is a DAG; emptiness is allowed (an empty
        computation incurs no I/O).
        """
        if not self.is_acyclic():
            raise ValueError("computation graph must be acyclic")

    def ancestors(self, v: int) -> Set[int]:
        """All vertices with a directed path to ``v`` (``v`` excluded)."""
        self._check_vertex(v)
        seen: Set[int] = set()
        stack = list(self._pred[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def descendants(self, v: int) -> Set[int]:
        """All vertices reachable from ``v`` (``v`` excluded)."""
        self._check_vertex(v)
        seen: Set[int] = set()
        stack = list(self._succ[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def is_weakly_connected(self) -> bool:
        """Return ``True`` if the underlying undirected graph is connected.

        The empty graph is considered connected (vacuously); a single vertex
        is connected.
        """
        n = self.num_vertices
        if n <= 1:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self._succ[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
            for w in self._pred[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def weakly_connected_components(self) -> List[List[int]]:
        """Vertex lists of the weakly connected components, in discovery order."""
        n = self.num_vertices
        seen = [False] * n
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            comp: List[int] = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                comp.append(v)
                for w in self._succ[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
                for w in self._pred[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(comp))
        return components

    def longest_path_length(self) -> int:
        """Length (in edges) of the longest directed path — the critical path."""
        if self.num_vertices == 0:
            return 0
        dist = [0] * self.num_vertices
        for v in self.topological_order():
            for w in self._succ[v]:
                if dist[v] + 1 > dist[w]:
                    dist[w] = dist[v] + 1
        return max(dist)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "ComputationGraph":
        """Deep copy of the graph (metadata included).

        The copy is traversal-identical: successor/predecessor list order is
        preserved exactly, so order-sensitive consumers (schedulers, pebbling
        simulations) behave the same on the copy as on the original.
        """
        other = ComputationGraph(0)
        other._succ = [list(s) for s in self._succ]
        other._pred = [list(p) for p in self._pred]
        other._edge_set = set(self._edge_set)
        other._num_edges = self._num_edges
        other._labels = dict(self._labels)
        other._ops = dict(self._ops)
        return other

    def subgraph(self, vertices: Iterable[int]) -> Tuple["ComputationGraph", Dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns
        -------
        (subgraph, mapping)
            ``mapping`` maps original vertex ids to the ids in the subgraph.
            Adjacency lists of the subgraph are in sorted (not original
            insertion) order.
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        mapping = {v: i for i, v in enumerate(keep)}
        sub = ComputationGraph(len(keep))
        if keep and self._num_edges:
            lookup = np.full(self.num_vertices, -1, dtype=np.int64)
            lookup[keep] = np.arange(len(keep), dtype=np.int64)
            edges = lookup[self.freeze().edges]
            sub.add_edges_array(edges[(edges >= 0).all(axis=1)])
        for v in keep:
            if v in self._labels:
                sub._labels[mapping[v]] = self._labels[v]
            if v in self._ops:
                sub._ops[mapping[v]] = self._ops[v]
        return sub, mapping

    def relabeled(self, permutation: Sequence[int]) -> "ComputationGraph":
        """Return a copy with vertex ``v`` renamed to ``permutation[v]``.

        ``permutation`` must be a permutation of ``0 .. n-1``.  Relabelling is
        used in tests to check that the spectral bounds are invariant under
        vertex renaming.  Adjacency lists of the result are in sorted order.
        """
        n = self.num_vertices
        perm = list(permutation)
        if sorted(perm) != list(range(n)):
            raise ValueError("permutation must be a permutation of range(n)")
        other = ComputationGraph(n)
        if self._num_edges:
            perm_arr = np.asarray(perm, dtype=np.int64)
            other.add_edges_array(perm_arr[self.freeze().edges])
        for v, lab in self._labels.items():
            other._labels[perm[v]] = lab
        for v, op in self._ops.items():
            other._ops[perm[v]] = op
        return other

    def reversed(self) -> "ComputationGraph":
        """Return the graph with every edge direction flipped.

        Successor lists of the result are the predecessor lists of the
        original (and vice versa), in their original order.
        """
        other = ComputationGraph(0)
        other._succ = [list(p) for p in self._pred]
        other._pred = [list(s) for s in self._succ]
        if self._num_edges:
            edges = self.freeze().edges
            other._edge_set = set(pack_edge_keys(edges[:, 1], edges[:, 0]).tolist())
        other._num_edges = self._num_edges
        other._labels = dict(self._labels)
        other._ops = dict(self._ops)
        return other

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (labels/ops as attributes)."""
        import networkx as nx

        g = nx.DiGraph()
        for v in self.vertices():
            g.add_node(v, label=self._labels.get(v), op=self._ops.get(v))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "ComputationGraph":
        """Build from a :class:`networkx.DiGraph` with arbitrary node names."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v in nx_graph.edges():
            graph.add_edge(index[u], index[v])
        for node, data in nx_graph.nodes(data=True):
            if data.get("label") is not None:
                graph._labels[index[node]] = str(data["label"])
            elif not isinstance(node, int):
                graph._labels[index[node]] = str(node)
            if data.get("op") is not None:
                graph._ops[index[node]] = str(data["op"])
        return graph

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputationGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"sources={len(self.sources())}, sinks={len(self.sinks())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def check_vertex(self, v: int) -> int:
        """Validate a vertex id against this graph and return it as ``int``.

        Raises ``TypeError`` for non-integer ids (booleans included) and
        ``ValueError`` for out-of-range ids.  This is the public entry point
        for code outside the graph layer (baselines, schedulers) that needs
        explicit validation before doing per-vertex work.
        """
        if not isinstance(v, (int, np.integer)) or isinstance(v, bool):
            raise TypeError(f"vertex id must be an integer, got {type(v).__name__}")
        if not 0 <= v < self.num_vertices:
            raise ValueError(
                f"vertex {v} out of range for graph with {self.num_vertices} vertices"
            )
        return int(v)

    def _check_vertex(self, v: int) -> None:
        self.check_vertex(v)
