"""Directed acyclic computation graphs.

A :class:`ComputationGraph` models a computation in the two-level memory model
of Section 3 of the paper: every vertex is a single operation whose result is
one memory element; an edge ``u -> v`` means the result of ``u`` is an operand
of ``v``.  Sources are the inputs of the computation and sinks are its
outputs.

The class is deliberately lightweight: vertices are dense integers
``0 .. n-1`` allocated sequentially, adjacency is stored as Python lists, and
heavier linear-algebra views (adjacency/Laplacian matrices) live in
:mod:`repro.graphs.laplacian`.  This keeps graph *construction* cheap — the
generators in :mod:`repro.graphs.generators` build graphs with hundreds of
thousands of vertices — while the numerical work is delegated to
NumPy/SciPy.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.utils.validation import check_nonnegative_int

__all__ = ["ComputationGraph"]


class ComputationGraph:
    """A directed acyclic computation graph.

    Parameters
    ----------
    num_vertices:
        Optional number of vertices to pre-allocate (all unlabeled).  More
        vertices can always be added with :meth:`add_vertex`.

    Notes
    -----
    * Vertices are integers ``0 .. n-1`` in insertion order.
    * Parallel edges are rejected: in the memory model an operand is either
      needed or not, so a duplicate edge never changes the I/O cost.
    * Self loops are rejected: an operation cannot consume its own result.
    * Acyclicity is *not* enforced on every ``add_edge`` (that would make
      construction quadratic); call :meth:`validate` or
      :meth:`is_acyclic` after construction, or rely on
      :meth:`topological_order`, which raises on cyclic graphs.
    """

    __slots__ = ("_succ", "_pred", "_labels", "_ops", "_num_edges", "_edge_set")

    def __init__(self, num_vertices: int = 0) -> None:
        check_nonnegative_int(num_vertices, "num_vertices")
        self._succ: List[List[int]] = [[] for _ in range(num_vertices)]
        self._pred: List[List[int]] = [[] for _ in range(num_vertices)]
        self._labels: Dict[int, str] = {}
        self._ops: Dict[int, str] = {}
        self._num_edges: int = 0
        self._edge_set: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Optional[str] = None, op: Optional[str] = None) -> int:
        """Add a vertex and return its integer id.

        Parameters
        ----------
        label:
            Optional human-readable label (e.g. ``"A[1,2]"``).
        op:
            Optional operation name (e.g. ``"mul"``, ``"input"``).
        """
        vid = len(self._succ)
        self._succ.append([])
        self._pred.append([])
        if label is not None:
            self._labels[vid] = label
        if op is not None:
            self._ops[vid] = op
        return vid

    def add_vertices(self, count: int, op: Optional[str] = None) -> List[int]:
        """Add ``count`` vertices sharing the same optional op name."""
        check_nonnegative_int(count, "count")
        return [self.add_vertex(op=op) for _ in range(count)]

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``u -> v`` (``u`` is an operand of ``v``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not a valid computation edge")
        if (u, v) in self._edge_set:
            raise ValueError(f"duplicate edge ({u}, {v})")
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._edge_set.add((u, v))
        self._num_edges += 1

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add many edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int]]
    ) -> "ComputationGraph":
        """Build a graph from a vertex count and an edge iterable."""
        graph = cls(num_vertices)
        graph.add_edges(edges)
        return graph

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n = |V|``."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return self.num_vertices

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges in vertex order."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the directed edge ``u -> v`` exists."""
        return (u, v) in self._edge_set

    def successors(self, v: int) -> Sequence[int]:
        """Vertices that consume the result of ``v``."""
        self._check_vertex(v)
        return tuple(self._succ[v])

    def predecessors(self, v: int) -> Sequence[int]:
        """Operands of ``v``."""
        self._check_vertex(v)
        return tuple(self._pred[v])

    def out_degree(self, v: int) -> int:
        """Out-degree ``d_out(v)``."""
        self._check_vertex(v)
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        """In-degree ``d_in(v)``."""
        self._check_vertex(v)
        return len(self._pred[v])

    def degree(self, v: int) -> int:
        """Total (undirected) degree ``d(v) = d_in(v) + d_out(v)``."""
        return self.in_degree(v) + self.out_degree(v)

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees, indexed by vertex id."""
        return np.array([len(s) for s in self._succ], dtype=np.int64)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees, indexed by vertex id."""
        return np.array([len(p) for p in self._pred], dtype=np.int64)

    def degrees(self) -> np.ndarray:
        """Vector of total degrees, indexed by vertex id."""
        return self.out_degrees() + self.in_degrees()

    @property
    def max_out_degree(self) -> int:
        """Maximum out-degree over all vertices (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(len(s) for s in self._succ)

    @property
    def max_in_degree(self) -> int:
        """Maximum in-degree over all vertices (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(len(p) for p in self._pred)

    def sources(self) -> List[int]:
        """Vertices with no predecessors (the inputs of the computation)."""
        return [v for v in self.vertices() if not self._pred[v]]

    def sinks(self) -> List[int]:
        """Vertices with no successors (the outputs of the computation)."""
        return [v for v in self.vertices() if not self._succ[v]]

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def label(self, v: int) -> Optional[str]:
        """Label of ``v`` (``None`` if unlabeled)."""
        self._check_vertex(v)
        return self._labels.get(v)

    def set_label(self, v: int, label: str) -> None:
        """Attach/replace a label on ``v``."""
        self._check_vertex(v)
        self._labels[v] = label

    def op(self, v: int) -> Optional[str]:
        """Operation name of ``v`` (``None`` if not recorded)."""
        self._check_vertex(v)
        return self._ops.get(v)

    def set_op(self, v: int, op: str) -> None:
        """Attach/replace the operation name of ``v``."""
        self._check_vertex(v)
        self._ops[v] = op

    def vertices_with_op(self, op: str) -> List[int]:
        """All vertices whose op name equals ``op``."""
        return [v for v in self.vertices() if self._ops.get(v) == op]

    # ------------------------------------------------------------------
    # structure: traversal, acyclicity, reachability
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Return one topological order (Kahn's algorithm).

        Raises
        ------
        ValueError
            If the graph contains a directed cycle.
        """
        indeg = [len(p) for p in self._pred]
        ready = deque(v for v in self.vertices() if indeg[v] == 0)
        order: List[int] = []
        while ready:
            v = ready.popleft()
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != self.num_vertices:
            raise ValueError("graph contains a directed cycle; not a computation graph")
        return order

    def is_acyclic(self) -> bool:
        """Return ``True`` when the graph is a DAG."""
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    def validate(self) -> None:
        """Raise ``ValueError`` unless the graph is a valid computation graph.

        A valid computation graph is a DAG; emptiness is allowed (an empty
        computation incurs no I/O).
        """
        if not self.is_acyclic():
            raise ValueError("computation graph must be acyclic")

    def ancestors(self, v: int) -> Set[int]:
        """All vertices with a directed path to ``v`` (``v`` excluded)."""
        self._check_vertex(v)
        seen: Set[int] = set()
        stack = list(self._pred[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def descendants(self, v: int) -> Set[int]:
        """All vertices reachable from ``v`` (``v`` excluded)."""
        self._check_vertex(v)
        seen: Set[int] = set()
        stack = list(self._succ[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def is_weakly_connected(self) -> bool:
        """Return ``True`` if the underlying undirected graph is connected.

        The empty graph is considered connected (vacuously); a single vertex
        is connected.
        """
        n = self.num_vertices
        if n <= 1:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self._succ[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
            for w in self._pred[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def weakly_connected_components(self) -> List[List[int]]:
        """Vertex lists of the weakly connected components, in discovery order."""
        n = self.num_vertices
        seen = [False] * n
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            comp: List[int] = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                comp.append(v)
                for w in self._succ[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
                for w in self._pred[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(comp))
        return components

    def longest_path_length(self) -> int:
        """Length (in edges) of the longest directed path — the critical path."""
        if self.num_vertices == 0:
            return 0
        dist = [0] * self.num_vertices
        for v in self.topological_order():
            for w in self._succ[v]:
                if dist[v] + 1 > dist[w]:
                    dist[w] = dist[v] + 1
        return max(dist)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "ComputationGraph":
        """Deep copy of the graph (metadata included)."""
        other = ComputationGraph(self.num_vertices)
        for u, v in self.edges():
            other.add_edge(u, v)
        other._labels = dict(self._labels)
        other._ops = dict(self._ops)
        return other

    def subgraph(self, vertices: Iterable[int]) -> Tuple["ComputationGraph", Dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns
        -------
        (subgraph, mapping)
            ``mapping`` maps original vertex ids to the ids in the subgraph.
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        mapping = {v: i for i, v in enumerate(keep)}
        sub = ComputationGraph(len(keep))
        for v in keep:
            for w in self._succ[v]:
                if w in mapping:
                    sub.add_edge(mapping[v], mapping[w])
        for v in keep:
            if v in self._labels:
                sub._labels[mapping[v]] = self._labels[v]
            if v in self._ops:
                sub._ops[mapping[v]] = self._ops[v]
        return sub, mapping

    def relabeled(self, permutation: Sequence[int]) -> "ComputationGraph":
        """Return a copy with vertex ``v`` renamed to ``permutation[v]``.

        ``permutation`` must be a permutation of ``0 .. n-1``.  Relabelling is
        used in tests to check that the spectral bounds are invariant under
        vertex renaming.
        """
        n = self.num_vertices
        perm = list(permutation)
        if sorted(perm) != list(range(n)):
            raise ValueError("permutation must be a permutation of range(n)")
        other = ComputationGraph(n)
        for u, v in self.edges():
            other.add_edge(perm[u], perm[v])
        for v, lab in self._labels.items():
            other._labels[perm[v]] = lab
        for v, op in self._ops.items():
            other._ops[perm[v]] = op
        return other

    def reversed(self) -> "ComputationGraph":
        """Return the graph with every edge direction flipped."""
        other = ComputationGraph(self.num_vertices)
        for u, v in self.edges():
            other.add_edge(v, u)
        other._labels = dict(self._labels)
        other._ops = dict(self._ops)
        return other

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (labels/ops as attributes)."""
        import networkx as nx

        g = nx.DiGraph()
        for v in self.vertices():
            g.add_node(v, label=self._labels.get(v), op=self._ops.get(v))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "ComputationGraph":
        """Build from a :class:`networkx.DiGraph` with arbitrary node names."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v in nx_graph.edges():
            graph.add_edge(index[u], index[v])
        for node, data in nx_graph.nodes(data=True):
            if data.get("label") is not None:
                graph._labels[index[node]] = str(data["label"])
            elif not isinstance(node, int):
                graph._labels[index[node]] = str(node)
            if data.get("op") is not None:
                graph._ops[index[node]] = str(data["op"])
        return graph

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputationGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"sources={len(self.sources())}, sinks={len(self.sinks())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, (int, np.integer)) or isinstance(v, bool):
            raise TypeError(f"vertex id must be an integer, got {type(v).__name__}")
        if not 0 <= v < self.num_vertices:
            raise ValueError(
                f"vertex {v} out of range for graph with {self.num_vertices} vertices"
            )
