"""Computation-graph data structures and Laplacian construction.

The central object is :class:`repro.graphs.compgraph.ComputationGraph`, a
directed acyclic graph in which every vertex is one operation (including the
inputs and outputs) and an edge ``u -> v`` records that ``u``'s result is an
operand of ``v`` (Section 3 of the paper).
"""

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.csr import CSRView, build_csr_view
from repro.graphs.laplacian import (
    adjacency_matrix,
    degree_vector,
    laplacian,
    normalized_laplacian,
    undirected_weights,
)
from repro.graphs.orders import (
    is_topological_order,
    natural_topological_order,
    random_topological_order,
    all_topological_orders,
    permutation_matrix,
)

__all__ = [
    "ComputationGraph",
    "CSRView",
    "build_csr_view",
    "adjacency_matrix",
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "undirected_weights",
    "is_topological_order",
    "natural_topological_order",
    "random_topological_order",
    "all_topological_orders",
    "permutation_matrix",
]
