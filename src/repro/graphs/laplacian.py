"""Laplacian and adjacency matrices of computation graphs.

Section 4.2 of the paper transforms the directed computation graph ``G`` into
a weighted undirected graph ``G~``: each directed edge ``(u, v)`` becomes an
undirected edge of weight ``1 / d_out(u)``.  The spectral bound of Theorem 4
uses the Laplacian ``L~ = D~ - A~`` of that weighted graph; the looser bound
of Theorem 5 uses the ordinary (unweighted, undirected) Laplacian
``L = D - A`` divided by the maximum out-degree.

This module builds both, in dense (:class:`numpy.ndarray`) or sparse
(:class:`scipy.sparse.csr_matrix`) form.  Dense matrices are convenient for
small graphs and exact tests; sparse matrices are required for the larger
benchmark graphs (e.g. a 12-level FFT has ~53k vertices).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.compgraph import ComputationGraph

__all__ = [
    "undirected_weights",
    "adjacency_matrix",
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "laplacian_quadratic_form",
]

MatrixLike = Union[np.ndarray, sp.csr_matrix]


def undirected_weights(
    graph: ComputationGraph, normalized: bool = True
) -> Dict[Tuple[int, int], float]:
    """Weights of the undirected graph ``G~`` derived from ``graph``.

    Each directed edge ``(u, v)`` contributes weight ``1 / d_out(u)`` (or 1 if
    ``normalized`` is False) to the undirected pair ``{u, v}``.  If both
    ``(u, v)`` and ``(v, u)`` existed the weights would accumulate, but a
    valid computation graph is acyclic so this cannot happen; the accumulation
    logic is kept for robustness.

    Returns
    -------
    dict
        Mapping from ordered pairs ``(min(u, v), max(u, v))`` to weights.
    """
    weights: Dict[Tuple[int, int], float] = {}
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        key = (u, v) if u < v else (v, u)
        weights[key] = weights.get(key, 0.0) + w
    return weights


def adjacency_matrix(
    graph: ComputationGraph,
    normalized: bool = False,
    sparse: bool = False,
    directed: bool = False,
) -> MatrixLike:
    """Adjacency matrix of ``graph``.

    Parameters
    ----------
    graph:
        The computation graph.
    normalized:
        If True, build the adjacency of the out-degree-normalised undirected
        graph ``G~`` (weight ``1/d_out(u)`` per directed edge); otherwise the
        unweighted adjacency.
    sparse:
        Return a CSR matrix instead of a dense array.
    directed:
        If True, return the directed adjacency ``A[u, v] = w(u -> v)``;
        otherwise symmetrise (each directed edge contributes to both ``(u, v)``
        and ``(v, u)``), which is the adjacency of ``G~`` used by the bounds.
    """
    n = graph.num_vertices
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        rows.append(u)
        cols.append(v)
        vals.append(w)
        if not directed:
            rows.append(v)
            cols.append(u)
            vals.append(w)
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
    # Duplicate entries (possible only in non-DAG inputs) are summed by COO->CSR.
    csr = mat.tocsr()
    if sparse:
        return csr
    return np.asarray(csr.todense())


def degree_vector(graph: ComputationGraph, normalized: bool = False) -> np.ndarray:
    """Weighted degree vector of the undirected graph ``G~`` (or of ``G``'s
    undirected version when ``normalized`` is False).

    For ``normalized=True`` the degree of vertex ``x`` is
    ``sum over incident directed edges (u, v) with x in {u, v} of 1/d_out(u)``.
    """
    n = graph.num_vertices
    deg = np.zeros(n, dtype=np.float64)
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        deg[u] += w
        deg[v] += w
    return deg


def laplacian(
    graph: ComputationGraph, normalized: bool = True, sparse: bool = False
) -> MatrixLike:
    """Graph Laplacian ``L = D - A`` of the undirected (optionally
    out-degree-normalised) version of ``graph``.

    ``normalized=True`` yields ``L~`` (Theorem 4); ``normalized=False`` yields
    the ordinary Laplacian ``L`` (Theorem 5).  The result is symmetric
    positive semi-definite with row sums equal to zero.
    """
    n = graph.num_vertices
    adj = adjacency_matrix(graph, normalized=normalized, sparse=True, directed=False)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg, format="csr") - adj
    lap = lap.tocsr()
    if sparse:
        return lap
    return np.asarray(lap.todense())


def normalized_laplacian(graph: ComputationGraph, sparse: bool = False) -> MatrixLike:
    """Convenience alias for the out-degree-normalised Laplacian ``L~``."""
    return laplacian(graph, normalized=True, sparse=sparse)


def laplacian_quadratic_form(lap: MatrixLike, x: np.ndarray) -> float:
    """Evaluate ``x^T L x`` for a dense or sparse Laplacian.

    For an indicator vector ``x`` of a vertex subset ``S`` this equals the
    weighted edge boundary of ``S`` (Equation 3 of the paper), which is what
    the partition bound counts.
    """
    x = np.asarray(x, dtype=np.float64)
    if sp.issparse(lap):
        return float(x @ (lap @ x))
    return float(x @ np.asarray(lap) @ x)
