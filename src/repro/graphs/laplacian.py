"""Laplacian and adjacency matrices of computation graphs.

Section 4.2 of the paper transforms the directed computation graph ``G`` into
a weighted undirected graph ``G~``: each directed edge ``(u, v)`` becomes an
undirected edge of weight ``1 / d_out(u)``.  The spectral bound of Theorem 4
uses the Laplacian ``L~ = D~ - A~`` of that weighted graph; the looser bound
of Theorem 5 uses the ordinary (unweighted, undirected) Laplacian
``L = D - A`` divided by the maximum out-degree.

This module builds both, in dense (:class:`numpy.ndarray`) or sparse
(:class:`scipy.sparse.csr_matrix`) form.  All constructions are fully
vectorized over the graph's frozen edge array
(:meth:`repro.graphs.compgraph.ComputationGraph.freeze`): there are no
per-edge Python loops, so assembling the Laplacian of a ~53k-vertex 12-level
FFT butterfly costs milliseconds, not seconds.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.csr import pack_edge_keys, unpack_edge_key

__all__ = [
    "undirected_weights",
    "adjacency_matrix",
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "laplacian_quadratic_form",
]

MatrixLike = Union[np.ndarray, sp.csr_matrix]


def _edge_weights(view, normalized: bool) -> np.ndarray:
    """Per-directed-edge weights: ``1/d_out(u)`` if normalized else 1."""
    if not normalized:
        return np.ones(view.num_edges, dtype=np.float64)
    # Every edge (u, v) implies d_out(u) >= 1, so the division is safe.
    return 1.0 / view.out_degrees[view.edges[:, 0]].astype(np.float64)


def undirected_weights(
    graph: ComputationGraph, normalized: bool = True
) -> Dict[Tuple[int, int], float]:
    """Weights of the undirected graph ``G~`` derived from ``graph``.

    Each directed edge ``(u, v)`` contributes weight ``1 / d_out(u)`` (or 1 if
    ``normalized`` is False) to the undirected pair ``{u, v}``.  If both
    ``(u, v)`` and ``(v, u)`` existed the weights would accumulate, but a
    valid computation graph is acyclic so this cannot happen; the accumulation
    logic is kept for robustness.

    Returns
    -------
    dict
        Mapping from ordered pairs ``(min(u, v), max(u, v))`` to weights.
    """
    view = graph.freeze()
    if view.num_edges == 0:
        return {}
    w = _edge_weights(view, normalized)
    u, v = view.edge_endpoints()
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = pack_edge_keys(lo, hi)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=w, minlength=unique_keys.shape[0])
    return {
        unpack_edge_key(key): weight
        for key, weight in zip(unique_keys.tolist(), sums.tolist())
    }


def adjacency_matrix(
    graph: ComputationGraph,
    normalized: bool = False,
    sparse: bool = False,
    directed: bool = False,
) -> MatrixLike:
    """Adjacency matrix of ``graph``.

    Parameters
    ----------
    graph:
        The computation graph.
    normalized:
        If True, build the adjacency of the out-degree-normalised undirected
        graph ``G~`` (weight ``1/d_out(u)`` per directed edge); otherwise the
        unweighted adjacency.
    sparse:
        Return a CSR matrix instead of a dense array.
    directed:
        If True, return the directed adjacency ``A[u, v] = w(u -> v)``;
        otherwise symmetrise (each directed edge contributes to both ``(u, v)``
        and ``(v, u)``), which is the adjacency of ``G~`` used by the bounds.
    """
    view = graph.freeze()
    n = view.num_vertices
    u, v = view.edge_endpoints()
    w = _edge_weights(view, normalized)
    if directed:
        rows, cols, vals = u, v, w
    else:
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        vals = np.concatenate([w, w])
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
    # Duplicate entries (possible only in non-DAG inputs) are summed by COO->CSR.
    csr = mat.tocsr()
    if sparse:
        return csr
    return np.asarray(csr.todense())


def degree_vector(graph: ComputationGraph, normalized: bool = False) -> np.ndarray:
    """Weighted degree vector of the undirected graph ``G~`` (or of ``G``'s
    undirected version when ``normalized`` is False).

    For ``normalized=True`` the degree of vertex ``x`` is
    ``sum over incident directed edges (u, v) with x in {u, v} of 1/d_out(u)``.
    """
    view = graph.freeze()
    n = view.num_vertices
    u, v = view.edge_endpoints()
    w = _edge_weights(view, normalized)
    return np.bincount(u, weights=w, minlength=n) + np.bincount(
        v, weights=w, minlength=n
    )


def laplacian(
    graph: ComputationGraph, normalized: bool = True, sparse: bool = False
) -> MatrixLike:
    """Graph Laplacian ``L = D - A`` of the undirected (optionally
    out-degree-normalised) version of ``graph``.

    ``normalized=True`` yields ``L~`` (Theorem 4); ``normalized=False`` yields
    the ordinary Laplacian ``L`` (Theorem 5).  The result is symmetric
    positive semi-definite with row sums equal to zero.
    """
    adj = adjacency_matrix(graph, normalized=normalized, sparse=True, directed=False)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg, format="csr") - adj
    lap = lap.tocsr()
    if sparse:
        return lap
    return np.asarray(lap.todense())


def normalized_laplacian(graph: ComputationGraph, sparse: bool = False) -> MatrixLike:
    """Convenience alias for the out-degree-normalised Laplacian ``L~``."""
    return laplacian(graph, normalized=True, sparse=sparse)


def laplacian_quadratic_form(lap: MatrixLike, x: np.ndarray) -> float:
    """Evaluate ``x^T L x`` for a dense or sparse Laplacian.

    For an indicator vector ``x`` of a vertex subset ``S`` this equals the
    weighted edge boundary of ``S`` (Equation 3 of the paper), which is what
    the partition bound counts.
    """
    x = np.asarray(x, dtype=np.float64)
    if sp.issparse(lap):
        return float(x @ (lap @ x))
    return float(x @ np.asarray(lap) @ x)
