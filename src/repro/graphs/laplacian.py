"""Laplacian and adjacency matrices of computation graphs.

Section 4.2 of the paper transforms the directed computation graph ``G`` into
a weighted undirected graph ``G~``: each directed edge ``(u, v)`` becomes an
undirected edge of weight ``1 / d_out(u)``.  The spectral bound of Theorem 4
uses the Laplacian ``L~ = D~ - A~`` of that weighted graph; the looser bound
of Theorem 5 uses the ordinary (unweighted, undirected) Laplacian
``L = D - A`` divided by the maximum out-degree.

This module builds both, in dense (:class:`numpy.ndarray`) or sparse
(:class:`scipy.sparse.csr_matrix`) form.  All constructions are fully
vectorized over the graph's frozen edge array
(:meth:`repro.graphs.compgraph.ComputationGraph.freeze`): there are no
per-edge Python loops, so assembling the Laplacian of a ~53k-vertex 12-level
FFT butterfly costs milliseconds, not seconds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.csr import pack_edge_keys, unpack_edge_key

__all__ = [
    "undirected_weights",
    "adjacency_matrix",
    "degree_vector",
    "laplacian",
    "LaplacianOperator",
    "laplacian_operator",
    "normalized_laplacian",
    "laplacian_quadratic_form",
]

MatrixLike = Union[np.ndarray, sp.csr_matrix]


def _edge_weights(view, normalized: bool) -> np.ndarray:
    """Per-directed-edge weights: ``1/d_out(u)`` if normalized else 1."""
    if not normalized:
        return np.ones(view.num_edges, dtype=np.float64)
    # Every edge (u, v) implies d_out(u) >= 1, so the division is safe.
    return 1.0 / view.out_degrees[view.edges[:, 0]].astype(np.float64)


def undirected_weights(
    graph: ComputationGraph, normalized: bool = True
) -> Dict[Tuple[int, int], float]:
    """Weights of the undirected graph ``G~`` derived from ``graph``.

    Each directed edge ``(u, v)`` contributes weight ``1 / d_out(u)`` (or 1 if
    ``normalized`` is False) to the undirected pair ``{u, v}``.  If both
    ``(u, v)`` and ``(v, u)`` existed the weights would accumulate, but a
    valid computation graph is acyclic so this cannot happen; the accumulation
    logic is kept for robustness.

    Returns
    -------
    dict
        Mapping from ordered pairs ``(min(u, v), max(u, v))`` to weights.
    """
    view = graph.freeze()
    if view.num_edges == 0:
        return {}
    w = _edge_weights(view, normalized)
    u, v = view.edge_endpoints()
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = pack_edge_keys(lo, hi)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=w, minlength=unique_keys.shape[0])
    return {
        unpack_edge_key(key): weight
        for key, weight in zip(unique_keys.tolist(), sums.tolist())
    }


def adjacency_matrix(
    graph: ComputationGraph,
    normalized: bool = False,
    sparse: bool = False,
    directed: bool = False,
) -> MatrixLike:
    """Adjacency matrix of ``graph``.

    Parameters
    ----------
    graph:
        The computation graph.
    normalized:
        If True, build the adjacency of the out-degree-normalised undirected
        graph ``G~`` (weight ``1/d_out(u)`` per directed edge); otherwise the
        unweighted adjacency.
    sparse:
        Return a CSR matrix instead of a dense array.
    directed:
        If True, return the directed adjacency ``A[u, v] = w(u -> v)``;
        otherwise symmetrise (each directed edge contributes to both ``(u, v)``
        and ``(v, u)``), which is the adjacency of ``G~`` used by the bounds.
    """
    view = graph.freeze()
    n = view.num_vertices
    u, v = view.edge_endpoints()
    w = _edge_weights(view, normalized)
    if directed:
        rows, cols, vals = u, v, w
    else:
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        vals = np.concatenate([w, w])
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
    # Duplicate entries (possible only in non-DAG inputs) are summed by COO->CSR.
    csr = mat.tocsr()
    if sparse:
        return csr
    return np.asarray(csr.todense())


def degree_vector(graph: ComputationGraph, normalized: bool = False) -> np.ndarray:
    """Weighted degree vector of the undirected graph ``G~`` (or of ``G``'s
    undirected version when ``normalized`` is False).

    For ``normalized=True`` the degree of vertex ``x`` is
    ``sum over incident directed edges (u, v) with x in {u, v} of 1/d_out(u)``.
    """
    view = graph.freeze()
    n = view.num_vertices
    u, v = view.edge_endpoints()
    w = _edge_weights(view, normalized)
    return np.bincount(u, weights=w, minlength=n) + np.bincount(
        v, weights=w, minlength=n
    )


def laplacian(
    graph: ComputationGraph, normalized: bool = True, sparse: bool = False
) -> MatrixLike:
    """Graph Laplacian ``L = D - A`` of the undirected (optionally
    out-degree-normalised) version of ``graph``.

    ``normalized=True`` yields ``L~`` (Theorem 4); ``normalized=False`` yields
    the ordinary Laplacian ``L`` (Theorem 5).  The result is symmetric
    positive semi-definite with row sums equal to zero.
    """
    adj = adjacency_matrix(graph, normalized=normalized, sparse=True, directed=False)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg, format="csr") - adj
    lap = lap.tocsr()
    if sparse:
        return lap
    return np.asarray(lap.todense())


class LaplacianOperator(spla.LinearOperator):
    """Matrix-free Laplacian ``L = D - A`` over the frozen CSR adjacency.

    Stores only the sparse symmetrised adjacency (O(m) memory) and the
    weighted degree vector; ``matvec``/``matmat`` compute ``deg * x - A @ x``
    without ever materialising the n-by-n Laplacian.  This is what lets the
    iterative backends run on graphs whose dense Laplacian would not fit in
    memory (n = 100k already means 80 GB dense).

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency of the undirected graph ``G~``.
    degrees:
        Weighted degree vector (the adjacency row sums); recomputed when
        omitted.
    block_rows:
        Optional row-block size: products are evaluated in row blocks of
        this many rows, bounding the transient output footprint when the
        right-hand side is a wide block (LOBPCG subspaces, Lanczos bases).
        ``None`` applies the whole operator at once.
    """

    def __init__(
        self,
        adjacency: sp.csr_matrix,
        degrees: Optional[np.ndarray] = None,
        block_rows: Optional[int] = None,
        dtype: np.dtype = np.float64,
    ) -> None:
        adj = adjacency.tocsr()
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adj.shape}")
        if block_rows is not None and block_rows < 1:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        dtype = np.dtype(dtype)
        if adj.dtype != dtype:
            adj = adj.astype(dtype)
        if degrees is None:
            degrees = np.asarray(adj.sum(axis=1)).ravel()
        super().__init__(dtype=dtype, shape=adj.shape)
        self.adjacency = adj
        self.degrees = np.ascontiguousarray(degrees, dtype=dtype)
        self.block_rows = int(block_rows) if block_rows is not None else None
        self._csr: Optional[sp.csr_matrix] = None

    @property
    def nnz(self) -> int:
        """Stored nonzeros (adjacency entries plus the diagonal)."""
        return self.adjacency.nnz + self.shape[0]

    def _apply(self, x: np.ndarray) -> np.ndarray:
        deg = self.degrees if x.ndim == 1 else self.degrees[:, None]
        if self.block_rows is None or self.shape[0] <= self.block_rows:
            return deg * x - self.adjacency @ x
        n = self.shape[0]
        out = np.empty(x.shape, dtype=np.result_type(self.dtype, x.dtype))
        for start in range(0, n, self.block_rows):
            stop = min(start + self.block_rows, n)
            block = self.adjacency[start:stop] @ x
            if x.ndim == 1:
                out[start:stop] = self.degrees[start:stop] * x[start:stop] - block
            else:
                out[start:stop] = (
                    self.degrees[start:stop, None] * x[start:stop] - block
                )
        return out

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        return self._apply(np.asarray(x).ravel())

    def _matmat(self, x: np.ndarray) -> np.ndarray:
        return self._apply(np.asarray(x))

    def _adjoint(self) -> "LaplacianOperator":
        return self  # symmetric by construction

    def diagonal(self) -> np.ndarray:
        """Laplacian diagonal (``G~`` is loop-free, so this is the degrees)."""
        return self.degrees

    def tocsr(self) -> sp.csr_matrix:
        """Materialise (and cache) the sparse Laplacian ``D - A``.

        Used by backends that need explicit entries (shift-invert
        factorisations, AMG hierarchy setup); still O(m) memory.
        """
        if self._csr is None:
            lap = sp.diags(self.degrees, format="csr") - self.adjacency
            self._csr = lap.tocsr()
        return self._csr

    def astype(self, dtype: np.dtype) -> "LaplacianOperator":
        """This operator with entries cast to ``dtype`` (self if unchanged)."""
        dtype = np.dtype(dtype)
        if dtype == self.dtype:
            return self
        return LaplacianOperator(
            self.adjacency, self.degrees, block_rows=self.block_rows, dtype=dtype
        )


def laplacian_operator(
    graph: ComputationGraph,
    normalized: bool = True,
    block_rows: Optional[int] = None,
) -> LaplacianOperator:
    """Matrix-free :class:`LaplacianOperator` for ``graph``.

    Semantically identical to ``laplacian(graph, normalized, sparse=True)``
    (same ``@`` results to rounding) but never forms ``D - A`` explicitly
    unless a consumer asks for :meth:`LaplacianOperator.tocsr`.  See
    :class:`LaplacianOperator` for ``block_rows``.
    """
    adj = adjacency_matrix(graph, normalized=normalized, sparse=True, directed=False)
    return LaplacianOperator(adj, block_rows=block_rows)


def normalized_laplacian(graph: ComputationGraph, sparse: bool = False) -> MatrixLike:
    """Convenience alias for the out-degree-normalised Laplacian ``L~``."""
    return laplacian(graph, normalized=True, sparse=sparse)


def laplacian_quadratic_form(lap: MatrixLike, x: np.ndarray) -> float:
    """Evaluate ``x^T L x`` for a dense or sparse Laplacian.

    For an indicator vector ``x`` of a vertex subset ``S`` this equals the
    weighted edge boundary of ``S`` (Equation 3 of the paper), which is what
    the partition bound counts.
    """
    x = np.asarray(x, dtype=np.float64)
    if sp.issparse(lap):
        return float(x @ (lap @ x))
    return float(x @ np.asarray(lap) @ x)
