"""Iterative stencil computation graphs.

Stencil sweeps (e.g. Jacobi iterations, 1D heat equations) are the classic
"I/O-friendly with tiling, I/O-hungry without" workloads of the HPC
literature.  They are not part of the paper's evaluation but are included as
additional workloads for the harness and as structurally different graphs for
property-based tests: their Laplacian spectra are close to those of grid
graphs, with a much smaller spectral gap than the butterfly or hypercube, so
the spectral bound is correspondingly weaker — a useful illustration of where
the method is and is not tight.
"""

from __future__ import annotations

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = ["stencil_1d_graph", "stencil_2d_graph"]


def stencil_1d_graph(width: int, timesteps: int, radius: int = 1) -> ComputationGraph:
    """Computation graph of ``timesteps`` sweeps of a 1D stencil of radius
    ``radius`` over ``width`` points.

    Vertex ``(t, i)`` (time ``t``, position ``i``) depends on
    ``(t-1, i-radius) .. (t-1, i+radius)`` clipped to the domain.  Time 0 holds
    the inputs.  The graph has ``(timesteps + 1) * width`` vertices.
    """
    check_positive_int(width, "width")
    check_positive_int(timesteps, "timesteps")
    check_positive_int(radius, "radius")
    graph = ComputationGraph((timesteps + 1) * width)

    def vid(t: int, i: int) -> int:
        return t * width + i

    for i in range(width):
        graph.set_op(vid(0, i), "input")
    for t in range(1, timesteps + 1):
        for i in range(width):
            v = vid(t, i)
            graph.set_op(v, "stencil")
            for off in range(-radius, radius + 1):
                j = i + off
                if 0 <= j < width:
                    graph.add_edge(vid(t - 1, j), v)
    return graph


def stencil_2d_graph(width: int, height: int, timesteps: int) -> ComputationGraph:
    """Computation graph of a 5-point 2D stencil over a ``width x height``
    grid for ``timesteps`` sweeps.

    Vertex ``(t, i, j)`` depends on the von Neumann neighbourhood of
    ``(i, j)`` at time ``t - 1``.  The graph has
    ``(timesteps + 1) * width * height`` vertices.
    """
    check_positive_int(width, "width")
    check_positive_int(height, "height")
    check_positive_int(timesteps, "timesteps")
    graph = ComputationGraph((timesteps + 1) * width * height)

    def vid(t: int, i: int, j: int) -> int:
        return t * width * height + i * height + j

    for i in range(width):
        for j in range(height):
            graph.set_op(vid(0, i, j), "input")
    offsets = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)]
    for t in range(1, timesteps + 1):
        for i in range(width):
            for j in range(height):
                v = vid(t, i, j)
                graph.set_op(v, "stencil")
                for di, dj in offsets:
                    a, b = i + di, j + dj
                    if 0 <= a < width and 0 <= b < height:
                        graph.add_edge(vid(t - 1, a, b), v)
    return graph
