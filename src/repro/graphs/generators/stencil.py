"""Iterative stencil computation graphs.

Stencil sweeps (e.g. Jacobi iterations, 1D heat equations) are the classic
"I/O-friendly with tiling, I/O-hungry without" workloads of the HPC
literature.  They are not part of the paper's evaluation but are included as
additional workloads for the harness and as structurally different graphs for
property-based tests: their Laplacian spectra are close to those of grid
graphs, with a much smaller spectral gap than the butterfly or hypercube, so
the spectral bound is correspondingly weaker — a useful illustration of where
the method is and is not tight.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = ["stencil_1d_graph", "stencil_2d_graph"]


def stencil_1d_graph(width: int, timesteps: int, radius: int = 1) -> ComputationGraph:
    """Computation graph of ``timesteps`` sweeps of a 1D stencil of radius
    ``radius`` over ``width`` points.

    Vertex ``(t, i)`` (time ``t``, position ``i``) depends on
    ``(t-1, i-radius) .. (t-1, i+radius)`` clipped to the domain.  Time 0 holds
    the inputs.  The graph has ``(timesteps + 1) * width`` vertices.
    """
    check_positive_int(width, "width")
    check_positive_int(timesteps, "timesteps")
    check_positive_int(radius, "radius")
    graph = ComputationGraph((timesteps + 1) * width)
    graph.set_ops({i: "input" for i in range(width)})
    graph.set_ops(
        {v: "stencil" for v in range(width, (timesteps + 1) * width)}
    )
    # Bulk edges per timestep: position i at time t consumes positions
    # i - radius .. i + radius at time t - 1, clipped to the domain.  The
    # batch is ordered position-major / offset-minor, matching the
    # historical per-edge insertion order exactly.
    ii, oo = np.meshgrid(
        np.arange(width, dtype=np.int64),
        np.arange(-radius, radius + 1, dtype=np.int64),
        indexing="ij",
    )
    ii, jj = ii.ravel(), (ii + oo).ravel()
    valid = (jj >= 0) & (jj < width)
    ii, jj = ii[valid], jj[valid]
    blocks = []
    for t in range(1, timesteps + 1):
        blocks.append(np.stack([(t - 1) * width + jj, t * width + ii], axis=1))
    graph.add_edges_array(np.concatenate(blocks))
    return graph


def stencil_2d_graph(width: int, height: int, timesteps: int) -> ComputationGraph:
    """Computation graph of a 5-point 2D stencil over a ``width x height``
    grid for ``timesteps`` sweeps.

    Vertex ``(t, i, j)`` depends on the von Neumann neighbourhood of
    ``(i, j)`` at time ``t - 1``.  The graph has
    ``(timesteps + 1) * width * height`` vertices.
    """
    check_positive_int(width, "width")
    check_positive_int(height, "height")
    check_positive_int(timesteps, "timesteps")
    plane = width * height
    graph = ComputationGraph((timesteps + 1) * plane)
    graph.set_ops({v: "input" for v in range(plane)})
    graph.set_ops({v: "stencil" for v in range(plane, (timesteps + 1) * plane)})
    # Bulk edges per timestep over the flattened grid, ordered cell-major /
    # offset-minor like the historical per-edge build.
    offsets = np.array(
        [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)], dtype=np.int64
    )
    ii, jj, kk = np.meshgrid(
        np.arange(width, dtype=np.int64),
        np.arange(height, dtype=np.int64),
        np.arange(offsets.shape[0], dtype=np.int64),
        indexing="ij",
    )
    ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()
    aa, bb = ii + offsets[kk, 0], jj + offsets[kk, 1]
    valid = (aa >= 0) & (aa < width) & (bb >= 0) & (bb < height)
    ii, jj, aa, bb = ii[valid], jj[valid], aa[valid], bb[valid]
    blocks = []
    for t in range(1, timesteps + 1):
        blocks.append(
            np.stack(
                [(t - 1) * plane + aa * height + bb, t * plane + ii * height + jj],
                axis=1,
            )
        )
    graph.add_edges_array(np.concatenate(blocks))
    return graph
