"""Computation graph of Strassen's matrix multiplication.

Strassen's algorithm multiplies two ``n x n`` matrices (``n`` a power of two)
with seven recursive multiplications of half-size matrices plus a constant
number of half-size matrix additions/subtractions:

    M1 = (A11 + A22)(B11 + B22)      C11 = M1 + M4 - M5 + M7
    M2 = (A21 + A22) B11             C12 = M3 + M5
    M3 = A11 (B12 - B22)             C21 = M2 + M4
    M4 = A22 (B21 - B11)             C22 = M1 - M2 + M3 + M6
    M5 = (A11 + A12) B22
    M6 = (A21 - A11)(B12 + B22)
    M7 = (A12 - A22)(B21 + B11)

The computation graph is built at scalar granularity: one vertex per input
element, one vertex per elementwise addition/subtraction performed by the
recursion, and one vertex per scalar multiplication at the recursion leaves.
The resulting graph is the recursive graph analysed by Ballard et al. (the
``Ω((n/√M)^{log2 7} · M)`` bound referenced in §6.2).

Two granularities for the output-quadrant combinations are supported:

* ``combine="fused"`` (default): each element of ``C11``/``C22`` is a single
  vertex consuming its four ``M_i`` operands (in-degree 4) and each element of
  ``C12``/``C21`` a single vertex of in-degree 2 — the granularity of the
  paper's traced graphs ("max in-degree 4" in the Figure 9 caption);
* ``combine="binary"``: every combination is decomposed into two-operand
  additions/subtractions (maximum in-degree 2 throughout).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_power_of_two

__all__ = ["strassen_graph", "strassen_num_multiplications"]

Matrix = Dict[Tuple[int, int], int]


def strassen_num_multiplications(n: int) -> int:
    """Number of scalar multiplications performed: ``7^{log2 n}``."""
    check_power_of_two(n, "n")
    return 7 ** (n.bit_length() - 1)


def strassen_graph(n: int, combine: str = "fused") -> ComputationGraph:
    """Computation graph of Strassen's algorithm on two ``n x n`` matrices.

    Parameters
    ----------
    n:
        Matrix side length; must be a power of two (Strassen's recursion
        splits matrices into quadrants, cf. §6.2 of the paper).
    combine:
        ``"fused"`` (default) — quadrant combinations are single vertices of
        in-degree up to 4, matching the paper's Figure 9 granularity;
        ``"binary"`` — combinations are decomposed into two-operand vertices.
    """
    check_power_of_two(n, "n")
    if combine not in ("fused", "binary"):
        raise ValueError(f"combine must be 'fused' or 'binary', got {combine!r}")
    graph = ComputationGraph()
    a: Matrix = {
        (i, j): graph.add_vertex(label=f"A[{i},{j}]", op="input")
        for i in range(n)
        for j in range(n)
    }
    b: Matrix = {
        (i, j): graph.add_vertex(label=f"B[{i},{j}]", op="input")
        for i in range(n)
        for j in range(n)
    }
    c = _strassen_multiply(graph, a, b, n, combine)
    for (i, j), v in c.items():
        graph.set_label(v, f"C[{i},{j}]")
    return graph


def _submatrix(m: Matrix, size: int, quadrant_row: int, quadrant_col: int) -> Matrix:
    """View of one quadrant of ``m`` re-indexed to ``0 .. size/2 - 1``."""
    half = size // 2
    return {
        (i, j): m[(i + quadrant_row * half, j + quadrant_col * half)]
        for i in range(half)
        for j in range(half)
    }


def _elementwise(graph: ComputationGraph, x: Matrix, y: Matrix, op: str) -> Matrix:
    """Elementwise add/sub of two equally indexed matrices; one vertex each.

    Vertices and edges are emitted in bulk: one ``add_vertices`` call and one
    edge-array batch per elementwise operation instead of per element.
    """
    return _fused_combination(graph, [x, y], op)


def _fused_combination(graph: ComputationGraph, operands: List[Matrix], op: str) -> Matrix:
    """Elementwise combination of several matrices as single bulk vertices."""
    keys = list(operands[0])
    ids = graph.add_vertices(len(keys), op=op)
    targets = np.asarray(ids, dtype=np.int64)
    blocks = [
        np.stack(
            [np.fromiter((matrix[key] for key in keys), dtype=np.int64, count=len(keys)), targets],
            axis=1,
        )
        for matrix in operands
    ]
    graph.add_edges_array(np.concatenate(blocks))
    return dict(zip(keys, ids))


def _combine(graph: ComputationGraph, size: int, c11: Matrix, c12: Matrix, c21: Matrix, c22: Matrix) -> Matrix:
    """Assemble quadrants back into a ``size x size`` index map."""
    half = size // 2
    out: Matrix = {}
    for i in range(half):
        for j in range(half):
            out[(i, j)] = c11[(i, j)]
            out[(i, j + half)] = c12[(i, j)]
            out[(i + half, j)] = c21[(i, j)]
            out[(i + half, j + half)] = c22[(i, j)]
    return out


def _strassen_multiply(
    graph: ComputationGraph, a: Matrix, b: Matrix, size: int, combine: str
) -> Matrix:
    if size == 1:
        v = graph.add_vertex(op="mul")
        graph.add_edge(a[(0, 0)], v)
        graph.add_edge(b[(0, 0)], v)
        return {(0, 0): v}

    a11 = _submatrix(a, size, 0, 0)
    a12 = _submatrix(a, size, 0, 1)
    a21 = _submatrix(a, size, 1, 0)
    a22 = _submatrix(a, size, 1, 1)
    b11 = _submatrix(b, size, 0, 0)
    b12 = _submatrix(b, size, 0, 1)
    b21 = _submatrix(b, size, 1, 0)
    b22 = _submatrix(b, size, 1, 1)
    half = size // 2

    m1 = _strassen_multiply(
        graph,
        _elementwise(graph, a11, a22, "add"),
        _elementwise(graph, b11, b22, "add"),
        half,
        combine,
    )
    m2 = _strassen_multiply(graph, _elementwise(graph, a21, a22, "add"), b11, half, combine)
    m3 = _strassen_multiply(graph, a11, _elementwise(graph, b12, b22, "sub"), half, combine)
    m4 = _strassen_multiply(graph, a22, _elementwise(graph, b21, b11, "sub"), half, combine)
    m5 = _strassen_multiply(graph, _elementwise(graph, a11, a12, "add"), b22, half, combine)
    m6 = _strassen_multiply(
        graph,
        _elementwise(graph, a21, a11, "sub"),
        _elementwise(graph, b12, b22, "add"),
        half,
        combine,
    )
    m7 = _strassen_multiply(
        graph,
        _elementwise(graph, a12, a22, "sub"),
        _elementwise(graph, b21, b11, "add"),
        half,
        combine,
    )

    if combine == "fused":
        c11 = _fused_combination(graph, [m1, m4, m5, m7], "combine")
        c12 = _fused_combination(graph, [m3, m5], "combine")
        c21 = _fused_combination(graph, [m2, m4], "combine")
        c22 = _fused_combination(graph, [m1, m2, m3, m6], "combine")
    else:
        c11 = _elementwise(
            graph, _elementwise(graph, _elementwise(graph, m1, m4, "add"), m5, "sub"), m7, "add"
        )
        c12 = _elementwise(graph, m3, m5, "add")
        c21 = _elementwise(graph, m2, m4, "add")
        c22 = _elementwise(
            graph, _elementwise(graph, _elementwise(graph, m1, m2, "sub"), m3, "add"), m6, "add"
        )
    return _combine(graph, size, c11, c12, c21, c22)
