"""Small and didactic computation graphs.

These graphs appear in the paper's expository figures (the inner product of
Figure 1, the seven-vertex partition example of Figure 2) and serve as
fixtures for the test-suite: they are small enough to reason about by hand,
yet exercise every code path of the bound machinery (sources, sinks, fan-in,
fan-out, reductions).
"""

from __future__ import annotations

from typing import List

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = [
    "inner_product_graph",
    "chain_graph",
    "binary_tree_reduction_graph",
    "diamond_graph",
    "independent_ops_graph",
    "prefix_sum_graph",
    "figure2_example_graph",
]


def inner_product_graph(n: int) -> ComputationGraph:
    """Computation graph of the inner product of two length-``n`` vectors.

    ``2n`` input vertices, ``n`` product vertices and ``n - 1`` addition
    vertices (sequential accumulation).  For ``n = 2`` this is exactly the
    seven-vertex graph of Figure 1 in the paper.
    """
    check_positive_int(n, "n")
    graph = ComputationGraph()
    xs = [graph.add_vertex(label=f"x[{i}]", op="input") for i in range(n)]
    ys = [graph.add_vertex(label=f"y[{i}]", op="input") for i in range(n)]
    products: List[int] = []
    for i in range(n):
        p = graph.add_vertex(label=f"x[{i}]*y[{i}]", op="mul")
        graph.add_edge(xs[i], p)
        graph.add_edge(ys[i], p)
        products.append(p)
    acc = products[0]
    for i in range(1, n):
        s = graph.add_vertex(op="add")
        graph.add_edge(acc, s)
        graph.add_edge(products[i], s)
        acc = s
    graph.set_label(acc, "dot(x, y)")
    return graph


def chain_graph(length: int) -> ComputationGraph:
    """A directed path of ``length`` vertices (a purely sequential computation).

    A chain never needs more than two live values, so its optimal I/O is zero
    for any ``M >= 2``; the spectral bound must therefore be ≤ 0 (clamped to
    zero), which makes the chain a useful negative control in tests.
    """
    check_positive_int(length, "length")
    graph = ComputationGraph(length)
    graph.set_op(0, "input")
    for v in range(length - 1):
        graph.add_edge(v, v + 1)
    return graph


def binary_tree_reduction_graph(num_leaves: int) -> ComputationGraph:
    """Balanced binary reduction of ``num_leaves`` inputs (e.g. a sum).

    ``num_leaves`` input vertices plus ``num_leaves - 1`` internal additions.
    """
    check_positive_int(num_leaves, "num_leaves")
    graph = ComputationGraph()
    frontier = [graph.add_vertex(label=f"x[{i}]", op="input") for i in range(num_leaves)]
    while len(frontier) > 1:
        nxt: List[int] = []
        for i in range(0, len(frontier) - 1, 2):
            s = graph.add_vertex(op="add")
            graph.add_edge(frontier[i], s)
            graph.add_edge(frontier[i + 1], s)
            nxt.append(s)
        if len(frontier) % 2 == 1:
            nxt.append(frontier[-1])
        frontier = nxt
    return graph


def diamond_graph(width: int) -> ComputationGraph:
    """A fan-out/fan-in diamond: one source feeding ``width`` independent
    vertices that all feed one sink.

    The source's value is live across the whole middle layer, so for
    ``M < width + 1`` some I/O is unavoidable — a minimal example of
    fan-out-induced I/O used in unit tests.
    """
    check_positive_int(width, "width")
    graph = ComputationGraph()
    src = graph.add_vertex(label="source", op="input")
    middle = [graph.add_vertex(op="f") for _ in range(width)]
    sink = graph.add_vertex(label="sink", op="reduce")
    for v in middle:
        graph.add_edge(src, v)
        graph.add_edge(v, sink)
    return graph


def independent_ops_graph(count: int) -> ComputationGraph:
    """``count`` disconnected single-vertex computations.

    The graph is edgeless; every bound must be trivial (zero).  Used to check
    that the machinery degrades gracefully on disconnected inputs.
    """
    check_positive_int(count, "count")
    graph = ComputationGraph(count)
    for v in range(count):
        graph.set_op(v, "input")
    return graph


def prefix_sum_graph(n: int) -> ComputationGraph:
    """Sequential (serial) prefix sum of ``n`` inputs.

    ``n`` inputs and ``n - 1`` additions where addition ``i`` consumes input
    ``i + 1`` and the previous partial sum.  All partial sums are outputs, so
    unlike the chain every internal value has fan-out 1 but the inputs arrive
    over time; a compact low-I/O workload used in examples.
    """
    check_positive_int(n, "n")
    graph = ComputationGraph()
    xs = [graph.add_vertex(label=f"x[{i}]", op="input") for i in range(n)]
    acc = xs[0]
    for i in range(1, n):
        s = graph.add_vertex(label=f"s[{i}]", op="add")
        graph.add_edge(acc, s)
        graph.add_edge(xs[i], s)
        acc = s
    return graph


def figure2_example_graph() -> ComputationGraph:
    """The seven-vertex example of Figure 2 in the paper.

    The figure shows an evaluation order 1..7 and a three-segment partition;
    the exact edge set is not fully specified by the figure, so we reproduce a
    representative seven-vertex DAG with the same shape (two source pairs
    feeding intermediate vertices that merge into one sink).  It is used in
    documentation and partition unit tests only.
    """
    graph = ComputationGraph(7)
    edges = [(0, 2), (1, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)]
    graph.add_edges(edges)
    return graph
