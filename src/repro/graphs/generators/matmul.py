"""Computation graph of naive (classical) matrix multiplication.

``C = A @ B`` for two ``n x n`` matrices computed "by definition": every entry
``C[i, j]`` is the dot product of row ``i`` of ``A`` and column ``j`` of ``B``.
The graph contains one vertex per input element, one vertex per elementary
product ``A[i, k] * B[k, j]``, and one vertex per addition of the reduction
that accumulates the ``n`` products into ``C[i, j]``.

Three reduction shapes are supported:

* ``"chain"`` (default, what a textbook triple loop produces): the products
  are accumulated sequentially, giving ``n - 1`` additions of in-degree 2.
* ``"tree"``: a balanced binary reduction tree, also ``n - 1`` additions but
  logarithmic depth.
* ``"flat"``: the whole dot-product summation is a single vertex of
  in-degree ``n`` consuming all ``n`` products.  This is the granularity the
  paper's traced graphs use for Figure 8 — its caption reports "max in-degree
  ``n``" — and is therefore the shape the Figure 8 benchmark reproduces.

``chain`` and ``tree`` have identical vertex/edge counts; ``flat`` has
``n^2 (n - 1)`` fewer addition vertices.  The maximum out-degree is ``n`` for
every shape (each input element feeds ``n`` products).
"""

from __future__ import annotations

from typing import List

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = ["naive_matmul_graph", "naive_matmul_num_vertices", "dot_product_formulation_graph"]


def naive_matmul_num_vertices(n: int, reduction: str = "chain") -> int:
    """Vertex count of :func:`naive_matmul_graph`.

    ``2 n^2 + n^3 + n^2 (n - 1)`` for the binary reductions (``chain`` and
    ``tree``); ``2 n^2 + n^3 + n^2`` for ``flat`` (one summation vertex per
    output entry, except ``n = 1`` where the product is the output).
    """
    check_positive_int(n, "n")
    _check_reduction(reduction)
    if reduction == "flat":
        return 2 * n * n + n * n * n + (n * n if n > 1 else 0)
    return 2 * n * n + n * n * n + n * n * (n - 1)


def naive_matmul_graph(n: int, reduction: str = "chain") -> ComputationGraph:
    """Computation graph of naive ``n x n`` matrix multiplication.

    Parameters
    ----------
    n:
        Matrix side length.
    reduction:
        ``"chain"`` for sequential accumulation of each dot product,
        ``"tree"`` for a balanced binary reduction, ``"flat"`` for a single
        ``n``-ary summation vertex per output entry (the paper's Figure 8
        granularity).

    Returns
    -------
    ComputationGraph
        Graph with ``2n^2`` input vertices, ``n^3`` product vertices and
        ``n^2 (n - 1)`` (binary reductions) or ``n^2`` (flat) addition
        vertices.
    """
    check_positive_int(n, "n")
    _check_reduction(reduction)
    graph = ComputationGraph()

    a = [[graph.add_vertex(label=f"A[{i},{k}]", op="input") for k in range(n)] for i in range(n)]
    b = [[graph.add_vertex(label=f"B[{k},{j}]", op="input") for j in range(n)] for k in range(n)]

    for i in range(n):
        for j in range(n):
            products: List[int] = []
            for k in range(n):
                p = graph.add_vertex(label=f"P[{i},{j},{k}]", op="mul")
                graph.add_edge(a[i][k], p)
                graph.add_edge(b[k][j], p)
                products.append(p)
            _reduce(graph, products, reduction, label=f"C[{i},{j}]")
    return graph


def dot_product_formulation_graph(n: int) -> ComputationGraph:
    """Coarse-grained formulation: one vertex per output entry ``C[i, j]``.

    Each ``C[i, j]`` vertex consumes the whole row ``i`` of ``A`` and column
    ``j`` of ``B`` (in-degree ``2n``); there are no explicit product/addition
    vertices.  This is the formulation whose maximum in-degree is ``n``-scale,
    matching the "max in-degree n" annotation of Figure 8, and it is useful as
    an ablation of operation granularity.
    """
    check_positive_int(n, "n")
    graph = ComputationGraph()
    a = [[graph.add_vertex(label=f"A[{i},{k}]", op="input") for k in range(n)] for i in range(n)]
    b = [[graph.add_vertex(label=f"B[{k},{j}]", op="input") for j in range(n)] for k in range(n)]
    for i in range(n):
        for j in range(n):
            c = graph.add_vertex(label=f"C[{i},{j}]", op="dot")
            for k in range(n):
                graph.add_edge(a[i][k], c)
                graph.add_edge(b[k][j], c)
    return graph


def _reduce(graph: ComputationGraph, values: List[int], reduction: str, label: str) -> int:
    """Accumulate ``values`` into one result vertex; returns the result id."""
    if len(values) == 1:
        # A 1x1 multiplication: the single product *is* the output entry.
        graph.set_label(values[0], label)
        return values[0]
    if reduction == "flat":
        s = graph.add_vertex(op="sum")
        for v in values:
            graph.add_edge(v, s)
        graph.set_label(s, label)
        return s
    if reduction == "chain":
        acc = values[0]
        for v in values[1:]:
            nxt = graph.add_vertex(op="add")
            graph.add_edge(acc, nxt)
            graph.add_edge(v, nxt)
            acc = nxt
        graph.set_label(acc, label)
        return acc
    # Balanced binary tree reduction.
    frontier = list(values)
    while len(frontier) > 1:
        nxt_frontier: List[int] = []
        for idx in range(0, len(frontier) - 1, 2):
            s = graph.add_vertex(op="add")
            graph.add_edge(frontier[idx], s)
            graph.add_edge(frontier[idx + 1], s)
            nxt_frontier.append(s)
        if len(frontier) % 2 == 1:
            nxt_frontier.append(frontier[-1])
        frontier = nxt_frontier
    graph.set_label(frontier[0], label)
    return frontier[0]


def _check_reduction(reduction: str) -> None:
    if reduction not in ("chain", "tree", "flat"):
        raise ValueError(f"reduction must be 'chain', 'tree' or 'flat', got {reduction!r}")
