"""Computation graph of naive (classical) matrix multiplication.

``C = A @ B`` for two ``n x n`` matrices computed "by definition": every entry
``C[i, j]`` is the dot product of row ``i`` of ``A`` and column ``j`` of ``B``.
The graph contains one vertex per input element, one vertex per elementary
product ``A[i, k] * B[k, j]``, and one vertex per addition of the reduction
that accumulates the ``n`` products into ``C[i, j]``.

Three reduction shapes are supported:

* ``"chain"`` (default, what a textbook triple loop produces): the products
  are accumulated sequentially, giving ``n - 1`` additions of in-degree 2.
* ``"tree"``: a balanced binary reduction tree, also ``n - 1`` additions but
  logarithmic depth.
* ``"flat"``: the whole dot-product summation is a single vertex of
  in-degree ``n`` consuming all ``n`` products.  This is the granularity the
  paper's traced graphs use for Figure 8 — its caption reports "max in-degree
  ``n``" — and is therefore the shape the Figure 8 benchmark reproduces.

``chain`` and ``tree`` have identical vertex/edge counts; ``flat`` has
``n^2 (n - 1)`` fewer addition vertices.  The maximum out-degree is ``n`` for
every shape (each input element feeds ``n`` products).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = ["naive_matmul_graph", "naive_matmul_num_vertices", "dot_product_formulation_graph"]


def naive_matmul_num_vertices(n: int, reduction: str = "chain") -> int:
    """Vertex count of :func:`naive_matmul_graph`.

    ``2 n^2 + n^3 + n^2 (n - 1)`` for the binary reductions (``chain`` and
    ``tree``); ``2 n^2 + n^3 + n^2`` for ``flat`` (one summation vertex per
    output entry, except ``n = 1`` where the product is the output).
    """
    check_positive_int(n, "n")
    _check_reduction(reduction)
    if reduction == "flat":
        return 2 * n * n + n * n * n + (n * n if n > 1 else 0)
    return 2 * n * n + n * n * n + n * n * (n - 1)


def naive_matmul_graph(n: int, reduction: str = "chain") -> ComputationGraph:
    """Computation graph of naive ``n x n`` matrix multiplication.

    Parameters
    ----------
    n:
        Matrix side length.
    reduction:
        ``"chain"`` for sequential accumulation of each dot product,
        ``"tree"`` for a balanced binary reduction, ``"flat"`` for a single
        ``n``-ary summation vertex per output entry (the paper's Figure 8
        granularity).

    Returns
    -------
    ComputationGraph
        Graph with ``2n^2`` input vertices, ``n^3`` product vertices and
        ``n^2 (n - 1)`` (binary reductions) or ``n^2`` (flat) addition
        vertices.
    """
    check_positive_int(n, "n")
    _check_reduction(reduction)
    # Vertex ids are allocated arithmetically (matching the historical
    # per-vertex construction order) so all edges can be emitted as bulk
    # arrays: inputs A then B, then per output entry (i, j) a contiguous
    # block of n product vertices followed by its reduction vertices.
    if n == 1:
        block = 1
    elif reduction == "flat":
        block = n + 1
    else:
        block = 2 * n - 1
    base = 2 * n * n
    graph = ComputationGraph(naive_matmul_num_vertices(n, reduction))

    graph.set_labels(
        {i * n + k: f"A[{i},{k}]" for i in range(n) for k in range(n)}
    )
    graph.set_labels(
        {n * n + k * n + j: f"B[{k},{j}]" for k in range(n) for j in range(n)}
    )
    graph.set_ops({v: "input" for v in range(2 * n * n)})

    # Product vertices: P[i, j, k] = base + (i*n + j)*block + k, consuming
    # A[i, k] and B[k, j] (operand order A then B, as in the per-edge build).
    ii, jj, kk = np.meshgrid(
        np.arange(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        indexing="ij",
    )
    ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()
    pid = base + (ii * n + jj) * block + kk
    a_edges = np.stack([ii * n + kk, pid], axis=1)
    b_edges = np.stack([n * n + kk * n + jj, pid], axis=1)
    blocks = [a_edges, b_edges]
    graph.set_labels(
        {
            int(p): f"P[{i},{j},{k}]"
            for p, i, j, k in zip(pid.tolist(), ii.tolist(), jj.tolist(), kk.tolist())
        }
    )
    graph.set_ops({int(p): "mul" for p in pid.tolist()})

    cells = (
        np.arange(n, dtype=np.int64)[:, None] * n + np.arange(n, dtype=np.int64)[None, :]
    ).ravel()
    cell_base = base + cells * block
    if n > 1:
        blocks.extend(_reduction_edge_blocks(graph, cell_base, n, reduction))
    graph.add_edges_array(np.concatenate(blocks))
    graph.set_labels(
        {
            int(cell_base[i * n + j] + block - 1): f"C[{i},{j}]"
            for i in range(n)
            for j in range(n)
        }
    )
    return graph


def _reduction_edge_blocks(
    graph: ComputationGraph, cell_base: np.ndarray, n: int, reduction: str
) -> List[np.ndarray]:
    """Edge blocks of the dot-product reductions for every output entry.

    ``cell_base`` holds the first product id of every ``(i, j)`` block; the
    reduction vertices occupy offsets ``n .. block - 1`` inside each block.
    The offset pattern is identical across blocks, so each reduction shape is
    expressed once in offsets and broadcast over all ``n^2`` entries.
    """
    blocks: List[np.ndarray] = []

    def offset_edges(source_offsets: np.ndarray, target_offsets: np.ndarray) -> np.ndarray:
        sources = (cell_base[:, None] + source_offsets[None, :]).ravel()
        targets = (cell_base[:, None] + target_offsets[None, :]).ravel()
        return np.stack([sources, targets], axis=1)

    if reduction == "flat":
        ops = {int(v): "sum" for v in (cell_base + n).tolist()}
        graph.set_ops(ops)
        blocks.append(
            offset_edges(np.arange(n, dtype=np.int64), np.full(n, n, dtype=np.int64))
        )
        return blocks

    add_ids = (cell_base[:, None] + np.arange(n, 2 * n - 1, dtype=np.int64)[None, :]).ravel()
    graph.set_ops({int(v): "add" for v in add_ids.tolist()})

    if reduction == "chain":
        # s_t consumes the running accumulator (p_0 for t = 0, s_{t-1} after)
        # and product p_{t+1}; accumulator operand first.
        t = np.arange(n - 1, dtype=np.int64)
        acc_offsets = np.where(t == 0, 0, n + t - 1)
        add_offsets = n + t
        blocks.append(offset_edges(acc_offsets, add_offsets))
        blocks.append(offset_edges(t + 1, add_offsets))
        return blocks

    # Balanced binary tree: pair up the frontier level by level; the leftover
    # odd element is carried to the end of the next level's frontier.
    frontier = np.arange(n, dtype=np.int64)
    next_offset = np.int64(n)
    while frontier.shape[0] > 1:
        pairs = frontier.shape[0] // 2
        new_offsets = next_offset + np.arange(pairs, dtype=np.int64)
        blocks.append(offset_edges(frontier[0 : 2 * pairs : 2], new_offsets))
        blocks.append(offset_edges(frontier[1 : 2 * pairs : 2], new_offsets))
        leftover = frontier[2 * pairs :]
        frontier = np.concatenate([new_offsets, leftover])
        next_offset += pairs
    return blocks


def dot_product_formulation_graph(n: int) -> ComputationGraph:
    """Coarse-grained formulation: one vertex per output entry ``C[i, j]``.

    Each ``C[i, j]`` vertex consumes the whole row ``i`` of ``A`` and column
    ``j`` of ``B`` (in-degree ``2n``); there are no explicit product/addition
    vertices.  This is the formulation whose maximum in-degree is ``n``-scale,
    matching the "max in-degree n" annotation of Figure 8, and it is useful as
    an ablation of operation granularity.
    """
    check_positive_int(n, "n")
    graph = ComputationGraph(2 * n * n + n * n)
    graph.set_labels(
        {i * n + k: f"A[{i},{k}]" for i in range(n) for k in range(n)}
    )
    graph.set_labels(
        {n * n + k * n + j: f"B[{k},{j}]" for k in range(n) for j in range(n)}
    )
    graph.set_ops({v: "input" for v in range(2 * n * n)})
    ii, jj = np.meshgrid(
        np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64), indexing="ij"
    )
    ii, jj = ii.ravel(), jj.ravel()
    cid = 2 * n * n + ii * n + jj
    graph.set_labels(
        {int(c): f"C[{i},{j}]" for c, i, j in zip(cid.tolist(), ii.tolist(), jj.tolist())}
    )
    graph.set_ops({int(c): "dot" for c in cid.tolist()})
    # Operand order per output entry alternates A[i, k], B[k, j] over k, as in
    # the per-edge build: emit one (A-block, B-block) pair per k.
    blocks: List[np.ndarray] = []
    for k in range(n):
        blocks.append(np.stack([ii * n + k, cid], axis=1))
        blocks.append(np.stack([n * n + k * n + jj, cid], axis=1))
    graph.add_edges_array(np.concatenate(blocks))
    return graph


def _check_reduction(reduction: str) -> None:
    if reduction not in ("chain", "tree", "flat"):
        raise ValueError(f"reduction must be 'chain', 'tree' or 'flat', got {reduction!r}")
