"""Computation-graph generators.

Each generator builds the computation DAG of a concrete algorithm at the
granularity of the paper's memory model (one vertex per scalar operation, one
element of fast memory per vertex result):

* :mod:`fft` — the (l+1)-column butterfly graph of a 2^l-point FFT (§5.2, §6.2).
* :mod:`matmul` — naive n×n matrix multiplication (§6.2).
* :mod:`strassen` — Strassen's recursive matrix multiplication (§6.2).
* :mod:`hypercube` — the boolean-hypercube graph of the Bellman-Held-Karp
  dynamic program for TSP (§5.1, §6.2).
* :mod:`basic` — small/didactic graphs (inner product, chains, reductions,
  diamonds) used throughout the paper's figures and in the test-suite.
* :mod:`stencil` — iterative stencil / prefix-sum style graphs used as extra
  workloads for the harness.
* :mod:`random_graphs` — Erdős–Rényi graphs (§5.3) and random layered DAGs.
"""

from repro.graphs.generators.fft import fft_graph, butterfly_graph
from repro.graphs.generators.matmul import naive_matmul_graph
from repro.graphs.generators.strassen import strassen_graph
from repro.graphs.generators.hypercube import bellman_held_karp_graph, hypercube_graph
from repro.graphs.generators.basic import (
    inner_product_graph,
    chain_graph,
    binary_tree_reduction_graph,
    diamond_graph,
    independent_ops_graph,
    prefix_sum_graph,
)
from repro.graphs.generators.linalg import lu_factorization_graph, triangular_solve_graph
from repro.graphs.generators.stencil import stencil_1d_graph, stencil_2d_graph
from repro.graphs.generators.random_graphs import (
    erdos_renyi_dag,
    erdos_renyi_undirected_laplacian,
    layered_random_dag,
    random_dag,
)

__all__ = [
    "fft_graph",
    "butterfly_graph",
    "naive_matmul_graph",
    "strassen_graph",
    "bellman_held_karp_graph",
    "hypercube_graph",
    "inner_product_graph",
    "chain_graph",
    "binary_tree_reduction_graph",
    "diamond_graph",
    "independent_ops_graph",
    "prefix_sum_graph",
    "lu_factorization_graph",
    "triangular_solve_graph",
    "stencil_1d_graph",
    "stencil_2d_graph",
    "erdos_renyi_dag",
    "erdos_renyi_undirected_laplacian",
    "layered_random_dag",
    "random_dag",
]
