"""Boolean-hypercube computation graphs (Bellman-Held-Karp dynamic program).

The Bellman-Held-Karp algorithm for the travelling-salesman problem on ``l``
cities computes, for every subset of cities, a table of optimal sub-paths from
the tables of subsets with one fewer city (§5.1 of the paper).  At the
granularity of one vertex per subset, the computation graph is the directed
boolean hypercube ``Q_l``: vertices are the ``2^l`` subsets (bitmasks) and
there is an edge from ``k1`` to ``k2`` whenever ``k2`` adds exactly one city
to ``k1``.

The out-degree of a subset is the number of missing cities (so the maximum
in/out-degree is ``l``), and the underlying undirected graph is the standard
``l``-dimensional hypercube whose Laplacian spectrum is ``{2i}`` with
multiplicity ``C(l, i)`` — which is what makes the closed-form bound of §5.1
possible.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_nonnegative_int

__all__ = ["bellman_held_karp_graph", "hypercube_graph"]


def hypercube_graph(dimension: int) -> ComputationGraph:
    """Directed boolean hypercube ``Q_d``.

    Vertices are bitmasks ``0 .. 2^d - 1`` and edges point from each mask to
    every mask obtained by setting one additional bit (i.e. edges are oriented
    by increasing popcount, which is a valid computation-graph orientation).
    """
    check_nonnegative_int(dimension, "dimension")
    n = 1 << dimension
    graph = ComputationGraph(n)
    width = max(dimension, 1)
    graph.set_labels({mask: format(mask, f"0{width}b") for mask in range(n)})
    graph.set_ops({mask: "input" if mask == 0 else "dp-update" for mask in range(n)})
    if dimension == 0:
        return graph
    # Bulk edges: for each bit, every mask with that bit clear points to the
    # mask with the bit set (orientation by increasing popcount).  The batch
    # is sorted by (target, source) so each vertex's successor/predecessor
    # order matches the historical per-edge build (masks outer, bits inner),
    # keeping order-sensitive consumers (pebbling schedules) unchanged.
    masks = np.arange(n, dtype=np.int64)
    blocks = []
    for bit in range(dimension):
        flag = np.int64(1 << bit)
        sources = masks[(masks & flag) == 0]
        blocks.append(np.stack([sources, sources | flag], axis=1))
    edges = np.concatenate(blocks)
    graph.add_edges_array(edges[np.lexsort((edges[:, 0], edges[:, 1]))])
    return graph


def bellman_held_karp_graph(num_cities: int) -> ComputationGraph:
    """Computation graph of the Bellman-Held-Karp TSP dynamic program.

    Parameters
    ----------
    num_cities:
        Number of cities ``l``.  The graph is the ``l``-dimensional directed
        hypercube with ``2^l`` vertices (Figure 4 of the paper uses ``l = 3``).

    Notes
    -----
    The paper's formulation stores the whole solution set ``Y[k]`` of a subset
    ``k`` in a single vertex, so the graph is exactly ``Q_l``; a finer-grained
    formulation (one vertex per ``(subset, end city)`` pair) would scale every
    closed-form quantity by ``l`` without changing the structure of the bound.
    """
    check_nonnegative_int(num_cities, "num_cities")
    return hypercube_graph(num_cities)
