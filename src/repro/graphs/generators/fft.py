"""Butterfly computation graphs of the Fast Fourier Transform.

A 2^l-point radix-2 FFT performs l stages of butterflies.  Its computation
graph is the *unwrapped butterfly graph* ``B_l`` with ``(l + 1) * 2^l``
vertices arranged in ``l + 1`` columns of ``2^l`` vertices (Figure 5 of the
paper): column 0 holds the inputs and column ``c`` (for ``c >= 1``) holds the
results of stage ``c``.  Vertex ``(c, r)`` has two parents, ``(c-1, r)`` and
``(c-1, r XOR 2^{c-1})`` — the pair of values combined by its butterfly.

Every internal vertex therefore has in-degree 2 and out-degree 2, the inputs
have out-degree 2 and the outputs in-degree 2, matching the published bound
setting ("max in-degree 2" in Figure 7).
"""

from __future__ import annotations

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_nonnegative_int

__all__ = ["fft_graph", "butterfly_graph", "fft_vertex_id", "fft_num_vertices"]


def fft_num_vertices(levels: int) -> int:
    """Number of vertices of the ``levels``-level butterfly: ``(l+1) 2^l``."""
    check_nonnegative_int(levels, "levels")
    return (levels + 1) * (1 << levels)


def fft_vertex_id(levels: int, column: int, row: int) -> int:
    """Vertex id of butterfly position ``(column, row)``.

    Columns are numbered ``0 .. levels`` (column 0 = inputs) and rows
    ``0 .. 2^levels - 1``.
    """
    check_nonnegative_int(levels, "levels")
    size = 1 << levels
    if not 0 <= column <= levels:
        raise ValueError(f"column must be in [0, {levels}], got {column}")
    if not 0 <= row < size:
        raise ValueError(f"row must be in [0, {size - 1}], got {row}")
    return column * size + row


def fft_graph(levels: int) -> ComputationGraph:
    """Computation graph of a ``2**levels``-point FFT.

    Parameters
    ----------
    levels:
        Number of FFT stages ``l`` (the transform size is ``2**levels``).
        ``levels = 0`` yields a single isolated vertex (a 1-point FFT is the
        identity).

    Returns
    -------
    ComputationGraph
        The unwrapped butterfly graph ``B_l`` with ``(l+1) 2^l`` vertices and
        ``l 2^{l+1}`` edges.
    """
    check_nonnegative_int(levels, "levels")
    size = 1 << levels
    graph = ComputationGraph(fft_num_vertices(levels))
    for row in range(size):
        graph.set_op(fft_vertex_id(levels, 0, row), "input")
        graph.set_label(fft_vertex_id(levels, 0, row), f"x[{row}]")
    for column in range(1, levels + 1):
        stride = 1 << (column - 1)
        for row in range(size):
            v = fft_vertex_id(levels, column, row)
            graph.set_op(v, "butterfly")
            graph.add_edge(fft_vertex_id(levels, column - 1, row), v)
            graph.add_edge(fft_vertex_id(levels, column - 1, row ^ stride), v)
    return graph


def butterfly_graph(levels: int) -> ComputationGraph:
    """Alias for :func:`fft_graph`; named after the graph rather than the
    algorithm (the paper uses ``B_l`` for the same object)."""
    return fft_graph(levels)
