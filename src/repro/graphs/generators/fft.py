"""Butterfly computation graphs of the Fast Fourier Transform.

A 2^l-point radix-2 FFT performs l stages of butterflies.  Its computation
graph is the *unwrapped butterfly graph* ``B_l`` with ``(l + 1) * 2^l``
vertices arranged in ``l + 1`` columns of ``2^l`` vertices (Figure 5 of the
paper): column 0 holds the inputs and column ``c`` (for ``c >= 1``) holds the
results of stage ``c``.  Vertex ``(c, r)`` has two parents, ``(c-1, r)`` and
``(c-1, r XOR 2^{c-1})`` — the pair of values combined by its butterfly.

Every internal vertex therefore has in-degree 2 and out-degree 2, the inputs
have out-degree 2 and the outputs in-degree 2, matching the published bound
setting ("max in-degree 2" in Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_nonnegative_int

__all__ = ["fft_graph", "butterfly_graph", "fft_vertex_id", "fft_num_vertices"]


def fft_num_vertices(levels: int) -> int:
    """Number of vertices of the ``levels``-level butterfly: ``(l+1) 2^l``."""
    check_nonnegative_int(levels, "levels")
    return (levels + 1) * (1 << levels)


def fft_vertex_id(levels: int, column: int, row: int) -> int:
    """Vertex id of butterfly position ``(column, row)``.

    Columns are numbered ``0 .. levels`` (column 0 = inputs) and rows
    ``0 .. 2^levels - 1``.
    """
    check_nonnegative_int(levels, "levels")
    size = 1 << levels
    if not 0 <= column <= levels:
        raise ValueError(f"column must be in [0, {levels}], got {column}")
    if not 0 <= row < size:
        raise ValueError(f"row must be in [0, {size - 1}], got {row}")
    return column * size + row


def fft_graph(levels: int) -> ComputationGraph:
    """Computation graph of a ``2**levels``-point FFT.

    Parameters
    ----------
    levels:
        Number of FFT stages ``l`` (the transform size is ``2**levels``).
        ``levels = 0`` yields a single isolated vertex (a 1-point FFT is the
        identity).

    Returns
    -------
    ComputationGraph
        The unwrapped butterfly graph ``B_l`` with ``(l+1) 2^l`` vertices and
        ``l 2^{l+1}`` edges.
    """
    check_nonnegative_int(levels, "levels")
    size = 1 << levels
    graph = ComputationGraph(fft_num_vertices(levels))
    graph.set_ops({row: "input" for row in range(size)})
    graph.set_labels({row: f"x[{row}]" for row in range(size)})
    if levels == 0:
        return graph
    # One bulk edge batch: per column, vertex (c, r) consumes (c-1, r) and
    # (c-1, r XOR 2^{c-1}).  The straight and crossing edges of each row are
    # interleaved (straight first) so the batch reproduces the historical
    # per-edge insertion sequence exactly — successor *and* predecessor
    # order match the per-edge build, keeping seeded schedules and pebbling
    # results reproducible across releases.
    rows = np.arange(size, dtype=np.int64)
    blocks = []
    for column in range(1, levels + 1):
        stride = 1 << (column - 1)
        targets = column * size + rows
        straight = np.stack([(column - 1) * size + rows, targets], axis=1)
        crossing = np.stack([(column - 1) * size + (rows ^ stride), targets], axis=1)
        blocks.append(np.stack([straight, crossing], axis=1).reshape(-1, 2))
    graph.add_edges_array(np.concatenate(blocks))
    graph.set_ops(
        {int(v): "butterfly" for v in range(size, fft_num_vertices(levels))}
    )
    return graph


def butterfly_graph(levels: int) -> ComputationGraph:
    """Alias for :func:`fft_graph`; named after the graph rather than the
    algorithm (the paper uses ``B_l`` for the same object)."""
    return fft_graph(levels)
