"""Dense linear-algebra computation graphs beyond matrix multiplication.

Two additional workloads frequently analysed in the I/O-complexity literature
(and natural future-work targets for the spectral method): LU factorisation
without pivoting and triangular solves.  They are not part of the paper's
evaluation but round out the workload suite for the harness and tests —
Gaussian elimination has a published ``Ω(n^3/√M)`` I/O bound, so its graphs
make a good stress case for automatic methods.

Granularity follows the paper's traced style: one vertex per statement, so an
elimination update ``A[i,j] -= L[i,k] * A[k,j]`` is a single vertex with three
operands.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_positive_int

__all__ = ["lu_factorization_graph", "triangular_solve_graph"]


def lu_factorization_graph(n: int) -> ComputationGraph:
    """Computation graph of LU factorisation (no pivoting) of an ``n x n`` matrix.

    Vertices: ``n^2`` inputs, one division vertex per multiplier ``L[i,k]``
    (``n(n-1)/2`` of them), and one fused update vertex per Schur-complement
    entry touched at each elimination step (``sum_k (n-1-k)^2`` of them, each
    with three operands).
    """
    check_positive_int(n, "n")
    graph = ComputationGraph()
    # current[(i, j)] is the vertex holding the live value of entry (i, j).
    current: Dict[Tuple[int, int], int] = {
        (i, j): graph.add_vertex(label=f"A[{i},{j}]", op="input")
        for i in range(n)
        for j in range(n)
    }
    for k in range(n):
        pivot = current[(k, k)]
        for i in range(k + 1, n):
            multiplier = graph.add_vertex(label=f"L[{i},{k}]", op="div")
            graph.add_edge(current[(i, k)], multiplier)
            graph.add_edge(pivot, multiplier)
            current[(i, k)] = multiplier
            for j in range(k + 1, n):
                update = graph.add_vertex(op="update")
                graph.add_edge(current[(i, j)], update)
                graph.add_edge(multiplier, update)
                graph.add_edge(current[(k, j)], update)
                current[(i, j)] = update
    return graph


def triangular_solve_graph(n: int) -> ComputationGraph:
    """Computation graph of a forward substitution ``L x = b`` (unit-stride).

    ``x[i] = (b[i] - sum_{j<i} L[i,j] * x[j]) / L[i,i]``: one multiply vertex
    per ``L[i,j] * x[j]`` product, a chain of subtractions, and one division
    per unknown.  The graph has ``n(n+1)/2 + n`` inputs and ``O(n^2)``
    operation vertices; its strong sequential dependence keeps the spectral
    bound small, making it a useful low-I/O contrast case.
    """
    check_positive_int(n, "n")
    graph = ComputationGraph()
    lower: Dict[Tuple[int, int], int] = {
        (i, j): graph.add_vertex(label=f"L[{i},{j}]", op="input")
        for i in range(n)
        for j in range(i + 1)
    }
    b: List[int] = [graph.add_vertex(label=f"b[{i}]", op="input") for i in range(n)]
    x: List[int] = []
    for i in range(n):
        acc = b[i]
        for j in range(i):
            product = graph.add_vertex(op="mul")
            graph.add_edge(lower[(i, j)], product)
            graph.add_edge(x[j], product)
            minus = graph.add_vertex(op="sub")
            graph.add_edge(acc, minus)
            graph.add_edge(product, minus)
            acc = minus
        xi = graph.add_vertex(label=f"x[{i}]", op="div")
        graph.add_edge(acc, xi)
        graph.add_edge(lower[(i, i)], xi)
        x.append(xi)
    return graph
