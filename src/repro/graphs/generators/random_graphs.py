"""Random graphs: Erdős–Rényi models and random layered DAGs.

Section 5.3 of the paper analyses the spectral bound on Erdős–Rényi graphs
``G(n, p)``; because the bound only consumes the undirected Laplacian and the
maximum out-degree, any acyclic orientation of ``G(n, p)`` realises the same
analysis.  :func:`erdos_renyi_dag` orients every sampled edge from the lower
to the higher vertex index, which is always acyclic and gives the natural
"computation graph" reading of the random graph.

Random layered DAGs are a separate, more computation-graph-shaped family used
for property-based testing: they have designated input and output layers and
bounded in-degree, resembling traced numerical programs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "erdos_renyi_dag",
    "erdos_renyi_undirected_laplacian",
    "layered_random_dag",
    "random_dag",
]


def erdos_renyi_dag(n: int, p: float, seed: SeedLike = None) -> ComputationGraph:
    """Erdős–Rényi graph ``G(n, p)`` oriented from low to high vertex index.

    Every unordered pair ``{i, j}`` with ``i < j`` independently becomes the
    directed edge ``(i, j)`` with probability ``p``.  The undirected support
    of the result is distributed exactly as ``G(n, p)``.
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    rng = as_rng(seed)
    graph = ComputationGraph(n)
    if p == 0.0 or n == 1:
        return graph
    # Vectorised sampling of the upper triangle, added as one edge batch.
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    graph.add_edges_array(np.stack([iu[mask], ju[mask]], axis=1))
    return graph


def erdos_renyi_undirected_laplacian(
    n: int, p: float, seed: SeedLike = None
) -> np.ndarray:
    """Dense Laplacian of an undirected ``G(n, p)`` sample.

    Provided for direct experimentation with §5.3 (algebraic connectivity of
    random graphs) without constructing a computation graph first.
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    rng = as_rng(seed)
    upper = rng.random((n, n)) < p
    adj = np.triu(upper, k=1)
    adj = (adj | adj.T).astype(np.float64)
    deg = adj.sum(axis=1)
    return np.diag(deg) - adj


def layered_random_dag(
    num_layers: int,
    layer_width: int,
    in_degree: int = 2,
    seed: SeedLike = None,
) -> ComputationGraph:
    """Random layered DAG with ``num_layers`` layers of ``layer_width``
    vertices each.

    Every vertex in layer ``t >= 1`` picks ``min(in_degree, layer_width)``
    distinct parents uniformly from layer ``t - 1``.  Layer 0 vertices are
    inputs.  The result is always acyclic and weakly connected with high
    probability, resembling the shape of traced numerical programs.
    """
    check_positive_int(num_layers, "num_layers")
    check_positive_int(layer_width, "layer_width")
    check_positive_int(in_degree, "in_degree")
    rng = as_rng(seed)
    graph = ComputationGraph(num_layers * layer_width)
    k = min(in_degree, layer_width)
    graph.set_ops({v: "input" for v in range(layer_width)})
    graph.set_ops(
        {v: "op" for v in range(layer_width, num_layers * layer_width)}
    )
    # Parents are drawn exactly as the historical per-edge build did (one
    # rng.choice per vertex), so seeded graphs are byte-identical across
    # releases; only the graph mutation is batched.
    sources: list = []
    targets: list = []
    for layer in range(1, num_layers):
        for i in range(layer_width):
            v = layer * layer_width + i
            parents = rng.choice(layer_width, size=k, replace=False)
            sources.extend(((layer - 1) * layer_width + parents).tolist())
            targets.extend([v] * k)
    if sources:
        graph.add_edges_array(
            np.stack(
                [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
                axis=1,
            )
        )
    return graph


def random_dag(
    n: int,
    edge_probability: float = 0.3,
    max_in_degree: Optional[int] = None,
    seed: SeedLike = None,
) -> ComputationGraph:
    """General random DAG on ``n`` vertices.

    Each potential edge ``(i, j)`` with ``i < j`` is included with probability
    ``edge_probability``; if ``max_in_degree`` is given, parents beyond the
    cap are dropped uniformly at random.  The family is used by the
    hypothesis-based property tests, which need many structurally diverse but
    always-valid computation graphs.
    """
    check_positive_int(n, "n")
    check_probability(edge_probability, "edge_probability")
    if max_in_degree is not None:
        check_positive_int(max_in_degree, "max_in_degree")
    rng = as_rng(seed)
    graph = ComputationGraph(n)
    blocks = []
    for v in range(1, n):
        candidates = np.nonzero(rng.random(v) < edge_probability)[0]
        if max_in_degree is not None and candidates.shape[0] > max_in_degree:
            candidates = rng.choice(candidates, size=max_in_degree, replace=False)
        if candidates.shape[0]:
            blocks.append(
                np.stack(
                    [candidates.astype(np.int64), np.full(candidates.shape[0], v, dtype=np.int64)],
                    axis=1,
                )
            )
    if blocks:
        graph.add_edges_array(np.concatenate(blocks))
    return graph
