"""Descriptive statistics of computation graphs.

The reporting harness prints a short structural summary next to every bound so
that experiment logs are self-describing (the paper reports, for example, the
maximum in-degree of each evaluation graph in the figure captions).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict

import numpy as np

from repro.graphs.compgraph import ComputationGraph

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a computation graph."""

    num_vertices: int
    num_edges: int
    num_inputs: int
    num_outputs: int
    max_in_degree: int
    max_out_degree: int
    mean_in_degree: float
    mean_out_degree: float
    critical_path_length: int
    weakly_connected: bool

    def as_dict(self) -> Dict[str, object]:
        """Dictionary view (useful for CSV/JSON reporting)."""
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"n={self.num_vertices} m={self.num_edges} "
            f"inputs={self.num_inputs} outputs={self.num_outputs} "
            f"max_in={self.max_in_degree} max_out={self.max_out_degree} "
            f"depth={self.critical_path_length}"
        )


def graph_stats(graph: ComputationGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``."""
    n = graph.num_vertices
    in_deg = graph.in_degrees() if n else np.zeros(0, dtype=np.int64)
    out_deg = graph.out_degrees() if n else np.zeros(0, dtype=np.int64)
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_inputs=len(graph.sources()),
        num_outputs=len(graph.sinks()),
        max_in_degree=int(in_deg.max()) if n else 0,
        max_out_degree=int(out_deg.max()) if n else 0,
        mean_in_degree=float(in_deg.mean()) if n else 0.0,
        mean_out_degree=float(out_deg.mean()) if n else 0.0,
        critical_path_length=graph.longest_path_length(),
        weakly_connected=graph.is_weakly_connected(),
    )
