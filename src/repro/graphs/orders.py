"""Evaluation orders on computation graphs.

An evaluation order is a permutation of the vertices that is topological with
respect to the DAG: a vertex may only be evaluated after all of its operands
(Section 3.1).  The paper encodes an order as a permutation matrix
``X ∈ R^{n×n}`` with ``X[i, j] = 1`` when vertex ``j`` is evaluated at
time-step ``i``; :func:`permutation_matrix` produces exactly that encoding so
the quadratic-program identities of Theorem 3 can be checked numerically.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "is_topological_order",
    "natural_topological_order",
    "dfs_topological_order",
    "priority_topological_order",
    "random_topological_order",
    "all_topological_orders",
    "count_topological_orders",
    "permutation_matrix",
    "order_to_schedule_positions",
]


def is_topological_order(graph: ComputationGraph, order: Sequence[int]) -> bool:
    """Return True if ``order`` is a valid evaluation order for ``graph``.

    ``order[t]`` is the vertex evaluated at time-step ``t``.  The order must be
    a permutation of all vertices in which every vertex appears after all of
    its predecessors.
    """
    n = graph.num_vertices
    if len(order) != n or sorted(order) != list(range(n)):
        return False
    position = {v: t for t, v in enumerate(order)}
    for u, v in graph.edges():
        if position[u] >= position[v]:
            return False
    return True


def natural_topological_order(graph: ComputationGraph) -> List[int]:
    """Kahn topological order breaking ties by smallest vertex id.

    Deterministic, and for generator-built graphs (which allocate vertices in
    a natural evaluation order) usually close to the order a straightforward
    implementation of the underlying algorithm would use.
    """
    return priority_topological_order(graph, priority=lambda v: v)


def dfs_topological_order(graph: ComputationGraph) -> List[int]:
    """Depth-first (reverse postorder) topological order.

    DFS orders tend to keep producer/consumer pairs close together, which
    makes them a reasonable locality-aware schedule for the pebbling
    simulator.
    """
    n = graph.num_vertices
    visited = [False] * n
    postorder: List[int] = []
    for root in range(n):
        if visited[root]:
            continue
        # Iterative DFS on the reversed edges: we visit predecessors first so
        # that appending on exit yields a valid topological order.
        stack: List[tuple[int, int]] = [(root, 0)]
        visited[root] = True
        while stack:
            v, idx = stack[-1]
            preds = graph.predecessors(v)
            if idx < len(preds):
                stack[-1] = (v, idx + 1)
                p = preds[idx]
                if not visited[p]:
                    visited[p] = True
                    stack.append((p, 0))
            else:
                stack.pop()
                postorder.append(v)
    # postorder already lists every vertex after its predecessors.
    assert len(postorder) == n
    return postorder


def priority_topological_order(graph: ComputationGraph, priority) -> List[int]:
    """Topological order choosing, among ready vertices, the one minimising
    ``priority(v)``.

    This is the building block for schedule heuristics: ``priority=lambda v:
    v`` is the natural order, ``priority=lambda v: -graph.out_degree(v)``
    prefers high-fanout vertices, etc.
    """
    n = graph.num_vertices
    indeg = [graph.in_degree(v) for v in range(n)]
    heap = [(priority(v), v) for v in range(n) if indeg[v] == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        _, v = heapq.heappop(heap)
        order.append(v)
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, (priority(w), w))
    if len(order) != n:
        raise ValueError("graph contains a directed cycle")
    return order


def random_topological_order(
    graph: ComputationGraph, seed: SeedLike = None
) -> List[int]:
    """Sample a random topological order (uniform over ready-vertex choices).

    Note that this is *not* uniform over all topological orders (that requires
    expensive counting); it is a cheap randomised schedule used for
    property-based tests and for generating diverse upper bounds with the
    pebbling simulator.
    """
    rng = as_rng(seed)
    n = graph.num_vertices
    indeg = [graph.in_degree(v) for v in range(n)]
    ready = [v for v in range(n) if indeg[v] == 0]
    order: List[int] = []
    while ready:
        idx = int(rng.integers(len(ready)))
        v = ready.pop(idx)
        order.append(v)
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(order) != n:
        raise ValueError("graph contains a directed cycle")
    return order


def all_topological_orders(
    graph: ComputationGraph, limit: Optional[int] = None
) -> Iterator[List[int]]:
    """Enumerate all topological orders (backtracking).

    Exponential in general — intended only for tiny graphs (≲ 10 vertices) in
    tests and in the exact baseline.  ``limit`` caps the number of orders
    yielded.
    """
    n = graph.num_vertices
    indeg = [graph.in_degree(v) for v in range(n)]
    order: List[int] = []
    yielded = 0

    def backtrack() -> Iterator[List[int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(order) == n:
            yielded += 1
            yield list(order)
            return
        for v in range(n):
            if indeg[v] == 0:
                indeg[v] = -1  # mark as used
                for w in graph.successors(v):
                    indeg[w] -= 1
                order.append(v)
                yield from backtrack()
                order.pop()
                for w in graph.successors(v):
                    indeg[w] += 1
                indeg[v] = 0
                if limit is not None and yielded >= limit:
                    return

    yield from backtrack()


def count_topological_orders(graph: ComputationGraph, limit: int = 1_000_000) -> int:
    """Count topological orders by enumeration, stopping at ``limit``.

    Returns ``limit`` if the count is at least ``limit``.  Only sensible for
    tiny graphs.
    """
    count = 0
    for _ in all_topological_orders(graph, limit=limit):
        count += 1
    return count


def permutation_matrix(order: Sequence[int]) -> np.ndarray:
    """Permutation-matrix encoding of an evaluation order.

    ``X[i, j] = 1`` when vertex ``j`` is evaluated at time-step ``i`` — the
    convention of Section 3.1.  Consequently ``X @ y`` reorders a
    vertex-indexed vector ``y`` into schedule order.
    """
    order = list(order)
    n = len(order)
    if sorted(order) != list(range(n)):
        raise ValueError("order must be a permutation of range(n)")
    X = np.zeros((n, n), dtype=np.float64)
    for t, v in enumerate(order):
        X[t, v] = 1.0
    return X


def order_to_schedule_positions(order: Sequence[int]) -> np.ndarray:
    """Inverse view of an order: ``positions[v]`` is the time-step of ``v``."""
    order = list(order)
    n = len(order)
    positions = np.empty(n, dtype=np.int64)
    for t, v in enumerate(order):
        positions[v] = t
    return positions
