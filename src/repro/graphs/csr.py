"""Frozen, array-backed views of computation graphs.

The generators build :class:`~repro.graphs.compgraph.ComputationGraph`
objects incrementally (Python adjacency lists are the right structure for
construction), but every *numerical* pass — Laplacian assembly, degree
vectors, spectral bounds — wants the whole edge set at once as NumPy arrays.
:class:`CSRView` is that representation: an immutable ``(m, 2)`` edge array
sorted lexicographically, the successor structure in compressed-sparse-row
(CSR) form, cached degree vectors, and a structural :attr:`fingerprint` that
identifies the graph up to vertex *identity* (two graphs share a fingerprint
iff they have the same vertex count and the same directed edge set).

``ComputationGraph.freeze()`` builds a view once and caches it until the
graph is mutated; all the vectorized linear-algebra code in
:mod:`repro.graphs.laplacian` and the spectrum cache in
:mod:`repro.solvers.spectrum_cache` key off this view, so a graph is scanned
edge-by-edge in Python at most zero times after construction.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "CSRView",
    "build_csr_view",
    "EDGE_KEY_BITS",
    "pack_edge_key",
    "pack_edge_keys",
    "unpack_edge_key",
]

#: Width of one vertex id inside a packed ``(u << BITS) | v`` edge key.  The
#: packed form is shared by duplicate detection, ``has_edge`` and the
#: undirected-weight grouping; every user must go through the helpers below
#: so the invariant lives in one place.
EDGE_KEY_BITS = 32
_EDGE_KEY_MASK = (1 << EDGE_KEY_BITS) - 1
#: Keys are built in signed int64 arithmetic, so the *left* operand of the
#: shift must stay below 2^(63 - EDGE_KEY_BITS) = 2^31 to avoid overflow;
#: vertex ids are therefore capped one bit tighter than the key width.
MAX_PACKABLE_VERTEX_ID = (1 << (63 - EDGE_KEY_BITS)) - 1


def pack_edge_key(u: int, v: int) -> int:
    """Pack one vertex pair into a single integer key."""
    u, v = int(u), int(v)
    if u > MAX_PACKABLE_VERTEX_ID or v > MAX_PACKABLE_VERTEX_ID:
        raise ValueError(
            f"vertex ids must be <= {MAX_PACKABLE_VERTEX_ID} to be packed into edge keys"
        )
    return (u << EDGE_KEY_BITS) | v


def pack_edge_keys(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Pack vertex-id arrays into int64 edge keys, validating the width.

    Raises ``ValueError`` for ids above :data:`MAX_PACKABLE_VERTEX_ID`
    (graphs that large need a wider key first) — the int64 shift would wrap
    silently otherwise and desynchronise from the scalar
    :func:`pack_edge_key`.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.size and (
        int(u.min()) < 0
        or int(v.min()) < 0
        or int(u.max()) > MAX_PACKABLE_VERTEX_ID
        or int(v.max()) > MAX_PACKABLE_VERTEX_ID
    ):
        raise ValueError(
            f"vertex ids must be in [0, {MAX_PACKABLE_VERTEX_ID}] to be packed "
            f"into edge keys"
        )
    return (u << np.int64(EDGE_KEY_BITS)) | v


def unpack_edge_key(key: int) -> Tuple[int, int]:
    """Invert :func:`pack_edge_key` / one element of :func:`pack_edge_keys`."""
    return int(key) >> EDGE_KEY_BITS, int(key) & _EDGE_KEY_MASK


class CSRView:
    """Immutable array view of a directed graph.

    Attributes
    ----------
    num_vertices:
        Number of vertices ``n``.
    num_edges:
        Number of directed edges ``m``.
    edges:
        ``(m, 2)`` int64 array of directed edges sorted lexicographically by
        ``(u, v)``; marked read-only.
    indptr, indices:
        Successor structure in CSR form: the successors of ``u`` are
        ``indices[indptr[u]:indptr[u + 1]]`` (sorted ascending).
    out_degrees, in_degrees:
        Int64 degree vectors indexed by vertex id; marked read-only.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "edges",
        "indptr",
        "indices",
        "out_degrees",
        "in_degrees",
        "__dict__",  # for cached_property
    )

    def __init__(self, num_vertices: int, edges: np.ndarray) -> None:
        # Always copy: the view must own its storage so the caller cannot
        # mutate `edges` (and thereby the fingerprint) behind its back.
        edges = np.array(edges, dtype=np.int64, copy=True).reshape(-1, 2)
        if edges.size and (int(edges.min()) < 0 or int(edges.max()) >= num_vertices):
            bad = edges[(edges.min(axis=1) < 0) | (edges.max(axis=1) >= num_vertices)][0]
            raise ValueError(
                f"edge ({int(bad[0])}, {int(bad[1])}) out of range for a view "
                f"with {num_vertices} vertices"
            )
        if edges.shape[0] > 1:
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            edges = edges[order]
        edges = np.ascontiguousarray(edges)
        edges.flags.writeable = False
        self.num_vertices = int(num_vertices)
        self.num_edges = int(edges.shape[0])
        self.edges = edges
        out_deg = np.bincount(edges[:, 0], minlength=num_vertices).astype(np.int64)
        in_deg = np.bincount(edges[:, 1], minlength=num_vertices).astype(np.int64)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(out_deg, out=indptr[1:])
        indices = edges[:, 1].copy()
        for arr in (out_deg, in_deg, indptr, indices):
            arr.flags.writeable = False
        self.out_degrees = out_deg
        self.in_degrees = in_deg
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    # derived, cached
    # ------------------------------------------------------------------
    @cached_property
    def fingerprint(self) -> str:
        """Stable structural hash of ``(n, sorted edge array)``.

        Two graphs have equal fingerprints exactly when they have the same
        vertex count and the same directed edge set, so the fingerprint is a
        safe cache key for anything derived from the graph structure alone
        (Laplacians, spectra, bounds).  Vertex labels/ops do not participate.
        """
        digest = hashlib.sha256()
        digest.update(self.num_vertices.to_bytes(8, "little"))
        digest.update(self.edges.astype("<i8", copy=False).tobytes())
        return digest.hexdigest()

    @cached_property
    def total_degrees(self) -> np.ndarray:
        """Undirected degree vector ``d_out + d_in`` (read-only)."""
        deg = self.out_degrees + self.in_degrees
        deg.flags.writeable = False
        return deg

    @cached_property
    def scipy_csr(self) -> sp.csr_matrix:
        """Directed unweighted adjacency as a SciPy CSR matrix."""
        n = self.num_vertices
        data = np.ones(self.num_edges, dtype=np.float64)
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def successor_slice(self, v: int) -> np.ndarray:
        """Successors of ``v`` as a read-only array slice."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    @property
    def max_out_degree(self) -> int:
        return int(self.out_degrees.max()) if self.num_vertices else 0

    @property
    def max_in_degree(self) -> int:
        return int(self.in_degrees.max()) if self.num_vertices else 0

    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(u, v)`` columns of the edge array (read-only views)."""
        return self.edges[:, 0], self.edges[:, 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRView(n={self.num_vertices}, m={self.num_edges}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


def build_csr_view(num_vertices: int, edges: np.ndarray) -> CSRView:
    """Build a :class:`CSRView` from a vertex count and an ``(m, 2)`` array."""
    return CSRView(num_vertices, edges)
