"""repro — Spectral lower bounds on the I/O complexity of computation graphs.

Reproduction of Jain & Zaharia, SPAA 2020.  The package provides:

* :mod:`repro.graphs` — computation-graph data structures, generators for the
  paper's evaluation graphs (FFT butterfly, naive/Strassen matrix
  multiplication, Bellman-Held-Karp hypercube) and Laplacian assembly;
* :mod:`repro.trace` — an operator-overloading tracer that extracts a
  computation graph from ordinary Python code (the "solver" of §6.1);
* :mod:`repro.core` — the spectral bounds (Theorems 4–6), the partition/QP
  machinery they relax, closed-form spectra and the analytical bounds of §5;
* :mod:`repro.solvers` — dense/Lanczos/power-iteration eigensolvers;
* :mod:`repro.baselines` — the convex min-cut automatic baseline and exact
  references for tiny graphs;
* :mod:`repro.pebbling` — a red-blue-pebble-style schedule simulator that
  produces matching *upper* bounds;
* :mod:`repro.parallel` — processor-assignment utilities for the parallel
  bound;
* :mod:`repro.analysis` — sweep, runtime-measurement and reporting harness
  used by the benchmark suite;
* :mod:`repro.runtime` — the production runtime layer: persistent on-disk
  spectrum store, process-pool sweep orchestrator, batch bound service and
  the ``python -m repro`` CLI;
* :mod:`repro.obs` — unified observability: span-based tracing with
  cross-process propagation, the process-global metrics registry, and
  opt-in per-task profiling (``python -m repro obs report``);
* :mod:`repro.server` — the HTTP serving layer over the bound service:
  versioned ``/v1`` JSON batch queries, Prometheus ``/metrics``, admission
  control and in-flight coalescing (``python -m repro serve``).

Quickstart
----------
>>> from repro import fft_graph, spectral_bound
>>> graph = fft_graph(6)            # 2^6-point FFT butterfly
>>> result = spectral_bound(graph, M=8)
>>> result.value > 0
True
"""

from repro.core.bounds import (
    parallel_spectral_bound,
    spectral_bound,
    spectral_bound_unnormalized,
)
from repro.core.closed_form import (
    erdos_renyi_io_bound,
    fft_io_bound,
    hypercube_io_bound,
)
from repro.core.result import (
    BaselineBoundResult,
    ParallelBoundResult,
    SpectralBoundResult,
)
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    naive_matmul_graph,
    strassen_graph,
)
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import SpectrumStore
from repro.trace.api import trace_computation
from repro.trace.tracer import GraphTracer

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ComputationGraph",
    "GraphTracer",
    "trace_computation",
    "spectral_bound",
    "spectral_bound_unnormalized",
    "parallel_spectral_bound",
    "fft_io_bound",
    "hypercube_io_bound",
    "erdos_renyi_io_bound",
    "SpectralBoundResult",
    "ParallelBoundResult",
    "BaselineBoundResult",
    "fft_graph",
    "naive_matmul_graph",
    "strassen_graph",
    "bellman_held_karp_graph",
    "SpectrumStore",
    "BoundService",
    "BoundQuery",
]
