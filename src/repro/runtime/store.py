"""Persistent on-disk archive of Laplacian spectra.

The in-memory :class:`~repro.solvers.spectrum_cache.SpectrumCache` makes an
eigensolve happen at most once *per process*; :class:`SpectrumStore` extends
that guarantee across processes and runs.  Every entry is one ``.npz`` blob
(the eigenvalue vector plus the solve cost) under ``<root>/blobs/``, named by
a content key derived from the same quantities the in-memory cache keys on:
the graph's structural fingerprint, the normalisation, the resolved
sparse/dense assembly choice, the solver options, and the truncation ``h``.
A single ``index.json`` maps entry ids to their metadata so lookups never
scan the blob directory.

Concurrency model
-----------------
Multiple processes (the sweep orchestrator's pool workers, parallel CI jobs,
a long-running :class:`~repro.runtime.service.BoundService`) share one store
directory:

* blobs and the index are written to a temporary file and atomically
  ``os.replace``d into place, so readers never observe partial files;
* index read-modify-writes hold an ``fcntl`` file lock on ``<root>/.lock``
  (shared for reads, exclusive for writes), so concurrent writers cannot lose
  each other's entries;
* a racing duplicate solve simply overwrites the blob with identical content
  and leaves the existing index entry in place — wasteful, never wrong;
* cold solves can additionally be *coalesced* across processes with a
  *solve lease* (:meth:`SpectrumStore.acquire_lease`): one JSON file per
  spectrum base id under ``<root>/leases/``, guarded by ``.leases.lock``,
  carrying the leader's pid/host/heartbeat/ttl.  Followers poll
  :meth:`wait_for_lease` and then re-read the published spectrum, so N
  workers needing one cold spectrum pay exactly one eigensolve.  A lease
  is only ever advisory — a follower whose wait times out solves anyway
  (wasteful, never wrong), and a leader killed mid-solve hands over via
  ttl expiry or same-host dead-pid detection.

The store keeps cumulative ``solves_recorded`` in the index: every
:meth:`put` is one eigensolve *somebody* paid for, which is what
``python -m repro cache stats`` reports and the CI warm-run smoke asserts on.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import hashlib
import json
import os
import socket
import tempfile
import threading
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs.metrics import global_registry
from repro.solvers.backend import EigenSolverOptions

_STORE_IO_SECONDS = global_registry().histogram(
    "repro_store_io_seconds",
    "Wall-clock latency of persistent store operations.",
    labelnames=("store", "op"),
)


def _timed_io(store: str, op: str):
    """Observe the wrapped store method's latency into the I/O histogram."""

    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _STORE_IO_SECONDS.observe(
                    time.perf_counter() - start, store=store, op=op
                )

        return inner

    return wrap

__all__ = [
    "StoredSpectrum",
    "SpectrumStore",
    "SolveLease",
    "CutStore",
    "STORE_ENV_VAR",
    "STORE_MAX_BYTES_ENV_VAR",
    "LEASE_TTL_ENV_VAR",
    "default_store_root",
    "default_store_max_bytes",
    "default_lease_ttl",
]

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_SPECTRUM_STORE"

#: Environment variable giving the default size cap (bytes) of the store;
#: unset/empty/0 means unbounded.
STORE_MAX_BYTES_ENV_VAR = "REPRO_SPECTRUM_STORE_MAX_BYTES"

#: Environment variable giving the default solve-lease ttl (seconds);
#: ``0`` (or negative) disables cross-process solve leasing entirely.
LEASE_TTL_ENV_VAR = "REPRO_LEASE_TTL_SECONDS"

#: Default solve-lease ttl: long enough that a heartbeating leader never
#: loses a lease mid-eigensolve, short enough that a machine that lost
#: power hands over within half a minute.
DEFAULT_LEASE_TTL_SECONDS = 30.0

_FORMAT_VERSION = 1
_INDEX_NAME = "index.json"
_LOCK_NAME = ".lock"
_BLOB_DIR = "blobs"
_LEASE_DIR = "leases"
_LEASE_LOCK_NAME = ".leases.lock"

_HOSTNAME = socket.gethostname()


def default_store_root() -> Path:
    """The store directory used when none is given.

    ``$REPRO_SPECTRUM_STORE`` if set, else ``~/.cache/repro/spectra``.
    """
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "spectra"


def default_store_max_bytes() -> Optional[int]:
    """The size cap from ``$REPRO_SPECTRUM_STORE_MAX_BYTES`` (None = none)."""
    env = os.environ.get(STORE_MAX_BYTES_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        return None
    return value if value > 0 else None


def default_lease_ttl() -> float:
    """The solve-lease ttl from ``$REPRO_LEASE_TTL_SECONDS``.

    Unset or unparsable means :data:`DEFAULT_LEASE_TTL_SECONDS`; zero or
    negative disables leasing (returned as ``0.0``).
    """
    env = os.environ.get(LEASE_TTL_ENV_VAR, "").strip()
    if not env:
        return DEFAULT_LEASE_TTL_SECONDS
    try:
        value = float(env)
    except ValueError:
        return DEFAULT_LEASE_TTL_SECONDS
    return max(0.0, value)


@dataclass(frozen=True)
class StoredSpectrum:
    """One spectrum loaded from disk.

    ``eigenvalues`` is the *full* stored vector (``num_eigenvalues`` long,
    possibly more than the caller asked for — callers slice); read-only.
    For interval variants (``variant != "exact"``) it holds the certified
    *upper* interval ends and ``eigenvalues_lo`` the lower ends; exact
    entries leave ``eigenvalues_lo`` as ``None``.
    """

    eigenvalues: np.ndarray
    solve_seconds: float
    num_eigenvalues: int
    backend: str = "unknown"
    dtype: str = "float64"
    eigenvalues_lo: Optional[np.ndarray] = None
    variant: str = "exact"


def _canonical_options(options: Optional[EigenSolverOptions]) -> Dict[str, object]:
    return dataclasses.asdict(options or EigenSolverOptions())


def _base_id(
    fingerprint: str,
    normalized: bool,
    sparse: bool,
    options: Optional[EigenSolverOptions],
    variant: str = "exact",
) -> str:
    payload = [fingerprint, bool(normalized), bool(sparse), _canonical_options(options)]
    if variant != "exact":
        # Appended only for non-exact variants so every pre-variant entry id
        # (and any store written by an older build) remains addressable.
        payload.append(str(variant))
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:40]


def _entry_id(base_id: str, num_eigenvalues: int) -> str:
    return f"{base_id}-h{int(num_eigenvalues):06d}"


# ----------------------------------------------------------------------
# shared on-disk primitives (used by SpectrumStore and CutStore)
# ----------------------------------------------------------------------
def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _atomic_write_npz(path: Path, **arrays: np.ndarray) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".npz"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


@contextlib.contextmanager
def _flocked(root: Path, lock_name: str, exclusive: bool):
    """Hold an advisory file lock under ``root`` (no-op where unsupported).

    A store directory that does not exist yet has nothing to lock (and no
    index to protect); readers simply see the empty state.
    """
    if not root.exists():
        yield
        return
    fd = os.open(root / lock_name, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        try:
            import fcntl

            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        yield
    finally:
        os.close(fd)  # closing the descriptor releases the flock


def _read_lease_file(path: Path) -> Optional[Dict[str, object]]:
    """Parse one lease file; ``None`` if absent, a corrupt marker if broken.

    A lease that fails to parse is indistinguishable from a crashed writer,
    so it reads as a dict that :func:`_lease_is_stale` always rejects —
    the next acquirer simply takes over.
    """
    try:
        data = json.loads(path.read_text())
    except OSError:
        return None
    except json.JSONDecodeError:
        return {"corrupt": True}
    if not isinstance(data, dict):
        return {"corrupt": True}
    return data


def _lease_is_stale(meta: Dict[str, object], now: float) -> bool:
    """Whether a lease's holder should be presumed dead.

    Stale iff the heartbeat is older than the ttl, or the holder lives on
    *this* host and its pid no longer exists (``os.kill(pid, 0)``) — the
    fast path that hands over a SIGKILLed leader's lease without waiting
    out the ttl.  A live pid (or one we may not signal) defers to the ttl.
    """
    if meta.get("corrupt"):
        return True
    try:
        heartbeat = float(meta.get("heartbeat_at", 0.0))
        ttl = float(meta.get("ttl", 0.0))
    except (TypeError, ValueError):
        return True
    if ttl <= 0 or now - heartbeat > ttl:
        return True
    pid = meta.get("pid")
    if meta.get("host") == _HOSTNAME and isinstance(pid, int) and pid > 0:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:  # pragma: no cover - e.g. EPERM: pid exists
            pass
    return False


class SolveLease:
    """A held cross-process solve lease (returned by ``acquire_lease``).

    A daemon thread refreshes the on-disk heartbeat every ``ttl / 4``
    seconds, so a live leader keeps the lease through an arbitrarily long
    eigensolve while a dead one expires within one ttl.  :meth:`release`
    (idempotent; also the context-manager exit) stops the heartbeat and
    deletes the lease file — but only while it still carries this lease's
    token, so a takeover after a stale verdict is never clobbered.
    """

    def __init__(self, store: "SpectrumStore", path: Path, token: str, ttl: float) -> None:
        self._store = store
        self.path = path
        self.token = token
        self.ttl = float(ttl)
        self._stop = threading.Event()
        self._released = False
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-lease-{path.stem[:12]}",
            daemon=True,
        )
        self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        interval = max(self.ttl / 4.0, 0.02)
        while not self._stop.wait(interval):
            self._store._refresh_lease(self.path, self.token)

    def release(self) -> None:
        """Drop the lease (idempotent)."""
        if self._released:
            return
        self._released = True
        self._stop.set()
        self._heartbeat.join(timeout=2.0)
        self._store._drop_lease(self.path, self.token)

    def __enter__(self) -> "SolveLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolveLease(path={str(self.path)!r}, released={self._released})"


class SpectrumStore:
    """File-system backed, fingerprint-keyed spectrum archive.

    Parameters
    ----------
    root:
        Store directory (created if missing).  ``None`` uses
        :func:`default_store_root`.
    max_bytes:
        Size budget for the blob directory.  When the total blob size
        exceeds it after a :meth:`put`, least-recently-used entries are
        evicted until the store fits.  ``None`` (default) reads
        ``$REPRO_SPECTRUM_STORE_MAX_BYTES``; unset means unbounded.
    lease_ttl:
        Heartbeat ttl (seconds) of cross-process solve leases.  ``None``
        (default) reads ``$REPRO_LEASE_TTL_SECONDS`` (default 30);
        ``<= 0`` disables leasing (``acquire_lease`` then raises).
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: Optional[int] = None,
        lease_ttl: Optional[float] = None,
    ) -> None:
        self._root = Path(root) if root is not None else default_store_root()
        self._blob_dir = self._root / _BLOB_DIR
        self._lease_dir = self._root / _LEASE_DIR
        self._max_bytes = max_bytes if max_bytes is not None else default_store_max_bytes()
        if self._max_bytes is not None and self._max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {self._max_bytes}")
        self._lease_ttl = max(0.0, float(lease_ttl)) if lease_ttl is not None else default_lease_ttl()
        # Per-handle traffic counters (the persistent counters live in the
        # index; these describe what *this* handle served).  One handle may
        # be shared by many engine threads — SpectrumCache calls get/put
        # outside its own lock — so counter updates take this lock.
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        # Read-path cache of the parsed index, keyed by the index file's
        # (mtime_ns, size, inode): lookups against a large warm store skip
        # re-parsing JSON unless some process actually wrote the index.
        self._index_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def max_bytes(self) -> Optional[int]:
        """Size cap of the blob directory (None = unbounded)."""
        return self._max_bytes

    @property
    def lease_ttl(self) -> float:
        """Solve-lease heartbeat ttl in seconds (0 = leasing disabled)."""
        return self._lease_ttl

    @property
    def hits(self) -> int:
        """Lookups this handle served from disk."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups this handle could not serve."""
        return self._misses

    @property
    def puts(self) -> int:
        """Spectra this handle wrote."""
        return self._puts

    def __len__(self) -> int:
        return len(self._read_index(allow_cached=True)["entries"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpectrumStore(root={str(self._root)!r}, entries={len(self)})"

    # ------------------------------------------------------------------
    # lookup / publish
    # ------------------------------------------------------------------
    @_timed_io("spectrum", "get")
    def get(
        self,
        fingerprint: str,
        num_eigenvalues: int,
        normalized: bool = True,
        sparse: bool = False,
        eig_options: Optional[EigenSolverOptions] = None,
        variant: str = "exact",
    ) -> Optional[StoredSpectrum]:
        """Load a stored spectrum covering ``num_eigenvalues``, or ``None``.

        Any entry with the same (fingerprint, normalisation, assembly,
        options, variant) and a truncation ``h' >= num_eigenvalues``
        qualifies (eigenvalues are ascending, so a longer vector contains
        the answer); the largest such entry is returned so in-memory tiers
        can cache the most reusable vector.  Non-exact variants (e.g.
        ``"coarse-r50-s0"`` interval spectra) live under distinct ids, so an
        exact refresh of the same graph lands next to — never on top of —
        the certified entry.
        """
        h = int(num_eigenvalues)
        if h <= 0:
            return None
        base = _base_id(fingerprint, normalized, sparse, eig_options, variant)
        with self._locked(exclusive=False):
            index = self._read_index(allow_cached=True)
        # All qualifying entries, longest first (a longer vector serves more
        # future requests); later candidates are fallbacks for corrupt blobs.
        candidates = sorted(
            (
                (int(meta["h"]), entry_id)
                for entry_id, meta in index["entries"].items()
                if meta["base"] == base and int(meta["h"]) >= h
            ),
            reverse=True,
        )
        for entry_h, entry_id in candidates:
            blob = self._blob_dir / f"{entry_id}.npz"
            try:
                with np.load(blob) as data:
                    values = np.ascontiguousarray(data["eigenvalues"], dtype=np.float64)
                    solve_seconds = float(data["solve_seconds"])
                    values_lo = None
                    if "eigenvalues_lo" in data.files:
                        values_lo = np.ascontiguousarray(
                            data["eigenvalues_lo"], dtype=np.float64
                        )
            except (OSError, KeyError, ValueError, zipfile.BadZipFile):
                # A blob lost to a partial copy / manual deletion: drop the
                # stale entry (index and file) and try the next candidate.
                self._drop_entry(entry_id)
                continue
            values.flags.writeable = False
            if values_lo is not None:
                values_lo.flags.writeable = False
            meta = index["entries"][entry_id]
            options_meta = meta.get("options") or {}
            with self._counter_lock:
                self._hits += 1
            if self._max_bytes is not None:
                # LRU bookkeeping only matters under a size cap; unbounded
                # stores skip the index rewrite per hit.
                self._touch(entry_id)
            return StoredSpectrum(
                values,
                solve_seconds,
                entry_h,
                backend=str(meta.get("backend", "unknown")),
                dtype=str(options_meta.get("dtype", "float64")),
                eigenvalues_lo=values_lo,
                variant=str(meta.get("variant", "exact")),
            )
        with self._counter_lock:
            self._misses += 1
        return None

    @_timed_io("spectrum", "put")
    def put(
        self,
        fingerprint: str,
        eigenvalues: np.ndarray,
        solve_seconds: float,
        normalized: bool = True,
        sparse: bool = False,
        eig_options: Optional[EigenSolverOptions] = None,
        backend: Optional[str] = None,
        lineage: Optional[str] = None,
        variant: str = "exact",
        eigenvalues_lo: Optional[np.ndarray] = None,
    ) -> str:
        """Publish one solved spectrum; returns the entry id.

        Records the solve in the persistent ``solves_recorded`` counter even
        when another process raced the same entry in first (both paid for an
        eigensolve; the counter tracks work done, not entries).  ``backend``
        records the resolved backend id and ``lineage`` the family name of
        the producing sweep (``cache clear --family`` filters on it); both
        are metadata only and never part of the content key.  ``variant``
        *is* part of the key (non-exact spectra must never be served as
        exact); interval variants pass the certified lower ends as
        ``eigenvalues_lo`` with ``eigenvalues`` holding the upper ends.
        """
        values = np.ascontiguousarray(eigenvalues, dtype=np.float64)
        h = int(values.shape[0])
        base = _base_id(fingerprint, normalized, sparse, eig_options, variant)
        entry_id = _entry_id(base, h)
        self._ensure_dirs()
        blob = self._blob_dir / f"{entry_id}.npz"
        arrays = {
            "eigenvalues": values,
            "solve_seconds": np.float64(solve_seconds),
        }
        if eigenvalues_lo is not None:
            lo = np.ascontiguousarray(eigenvalues_lo, dtype=np.float64)
            if lo.shape != values.shape:
                raise ValueError(
                    f"eigenvalues_lo shape {lo.shape} != eigenvalues {values.shape}"
                )
            arrays["eigenvalues_lo"] = lo
        self._atomic_write_npz(blob, **arrays)
        now = time.time()
        with self._locked(exclusive=True):
            index = self._read_index()
            index["solves_recorded"] = int(index.get("solves_recorded", 0)) + 1
            if entry_id not in index["entries"]:
                index["entries"][entry_id] = {
                    "base": base,
                    "h": h,
                    "fingerprint": fingerprint,
                    "normalized": bool(normalized),
                    "sparse": bool(sparse),
                    "options": _canonical_options(eig_options),
                    "variant": str(variant),
                    "backend": backend or "unknown",
                    "lineage": lineage,
                    "solve_seconds": float(solve_seconds),
                    "created_at": now,
                    "last_used": now,
                }
            else:
                index["entries"][entry_id]["last_used"] = now
            if self._max_bytes is not None:
                self._evict_over_budget(index)
            self._write_index(index)
        with self._counter_lock:
            self._puts += 1
        return entry_id

    # ------------------------------------------------------------------
    # cross-process solve leases
    # ------------------------------------------------------------------
    def acquire_lease(
        self,
        fingerprint: str,
        normalized: bool = True,
        sparse: bool = False,
        eig_options: Optional[EigenSolverOptions] = None,
        variant: str = "exact",
        ttl: Optional[float] = None,
    ) -> Optional[SolveLease]:
        """Try to become the solve leader for one spectrum; ``None`` if held.

        The lease is keyed by the same base id as the stored entries —
        fingerprint, normalisation, assembly, solver options, variant, but
        *not* the truncation ``h`` — so every query shape needing one cold
        spectrum contends for a single lease.  A held-but-stale lease
        (expired heartbeat, or a dead pid on this host) is taken over in
        place.  The winner gets a heartbeating :class:`SolveLease` it must
        :meth:`~SolveLease.release` after publishing via :meth:`put`.
        """
        effective_ttl = max(0.0, float(ttl)) if ttl is not None else self._lease_ttl
        if effective_ttl <= 0:
            raise ValueError("solve leasing is disabled (lease_ttl <= 0)")
        path = self._lease_path(fingerprint, normalized, sparse, eig_options, variant)
        self._lease_dir.mkdir(parents=True, exist_ok=True)
        now = time.time()
        token = f"{_HOSTNAME}:{os.getpid()}:{time.monotonic_ns():x}"
        with self._lease_locked():
            current = _read_lease_file(path)
            if current is not None and not _lease_is_stale(current, now):
                return None
            _atomic_write_text(
                path,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "host": _HOSTNAME,
                        "token": token,
                        "fingerprint": fingerprint,
                        "variant": str(variant),
                        "created_at": now,
                        "heartbeat_at": now,
                        "ttl": effective_ttl,
                    }
                ),
            )
        return SolveLease(self, path, token, effective_ttl)

    def wait_for_lease(
        self,
        fingerprint: str,
        normalized: bool = True,
        sparse: bool = False,
        eig_options: Optional[EigenSolverOptions] = None,
        variant: str = "exact",
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> str:
        """Block while another process holds the solve lease.

        Returns ``"released"`` once the lease file is gone (the leader
        published and released — re-read the store), ``"stale"`` if the
        leader died (try :meth:`acquire_lease` again), or ``"timeout"``
        after ``timeout`` seconds (default: twice the ttl, at least 10 s)
        — at which point the caller should just solve; wasteful, never
        wrong.
        """
        path = self._lease_path(fingerprint, normalized, sparse, eig_options, variant)
        if timeout is None:
            timeout = max(10.0, 2.0 * max(self._lease_ttl, 1.0))
        deadline = time.monotonic() + timeout
        while True:
            meta = _read_lease_file(path)
            if meta is None:
                return "released"
            if _lease_is_stale(meta, time.time()):
                return "stale"
            if time.monotonic() >= deadline:
                return "timeout"
            time.sleep(poll_interval)

    def leases(self) -> List[Dict[str, object]]:
        """Metadata of every lease file (holder, age, staleness)."""
        if not self._lease_dir.exists():
            return []
        now = time.time()
        rows: List[Dict[str, object]] = []
        for path in sorted(self._lease_dir.glob("*.json")):
            meta = _read_lease_file(path)
            if meta is None:  # deleted between glob and read
                continue
            rows.append(
                {
                    "lease": path.stem,
                    "fingerprint": str(meta.get("fingerprint", "?"))[:12],
                    "variant": str(meta.get("variant", "?")),
                    "pid": meta.get("pid"),
                    "host": meta.get("host"),
                    "age_seconds": now - float(meta.get("created_at", now) or now),
                    "ttl": meta.get("ttl"),
                    "stale": _lease_is_stale(meta, now),
                }
            )
        return rows

    def _lease_path(
        self,
        fingerprint: str,
        normalized: bool,
        sparse: bool,
        eig_options: Optional[EigenSolverOptions],
        variant: str,
    ) -> Path:
        base = _base_id(fingerprint, normalized, sparse, eig_options, variant)
        return self._lease_dir / f"{base}.json"

    def _refresh_lease(self, path: Path, token: str) -> None:
        """Rewrite a held lease's heartbeat (heartbeat-thread callback)."""
        with self._lease_locked():
            meta = _read_lease_file(path)
            if meta is not None and meta.get("token") == token:
                meta["heartbeat_at"] = time.time()
                with contextlib.suppress(OSError):
                    _atomic_write_text(path, json.dumps(meta))

    def _drop_lease(self, path: Path, token: str) -> None:
        with self._lease_locked():
            meta = _read_lease_file(path)
            if meta is not None and meta.get("token") == token:
                with contextlib.suppress(OSError):
                    path.unlink()

    def _lease_locked(self):
        return _flocked(self._root, _LEASE_LOCK_NAME, exclusive=True)

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every stored spectrum (id, graph, h, cost, size)."""
        with self._locked(exclusive=False):
            index = self._read_index(allow_cached=True)
        rows: List[Dict[str, object]] = []
        for entry_id, meta in sorted(index["entries"].items()):
            blob = self._blob_dir / f"{entry_id}.npz"
            options_meta = meta.get("options") or {}
            rows.append(
                {
                    "entry": entry_id,
                    "fingerprint": str(meta["fingerprint"])[:12],
                    "lineage": meta.get("lineage") or "-",
                    "variant": str(meta.get("variant", "exact")),
                    "normalized": meta["normalized"],
                    "sparse": meta["sparse"],
                    "backend": str(meta.get("backend", "unknown")),
                    "dtype": str(options_meta.get("dtype", "float64")),
                    "num_eigenvalues": int(meta["h"]),
                    "solve_seconds": float(meta["solve_seconds"]),
                    "bytes": blob.stat().st_size if blob.exists() else 0,
                }
            )
        return rows

    def stats(self) -> Dict[str, object]:
        """Aggregate store statistics (persisted + this handle's traffic)."""
        with self._locked(exclusive=False):
            index = self._read_index(allow_cached=True)
        entries = index["entries"]
        total_bytes = 0
        graphs = set()
        for entry_id, meta in entries.items():
            graphs.add(meta["fingerprint"])
            blob = self._blob_dir / f"{entry_id}.npz"
            if blob.exists():
                total_bytes += blob.stat().st_size
        leases = self.leases()
        return {
            "root": str(self._root),
            "num_entries": len(entries),
            "num_graphs": len(graphs),
            "total_bytes": total_bytes,
            "max_bytes": self._max_bytes,
            "solves_recorded": int(index.get("solves_recorded", 0)),
            "handle_hits": self._hits,
            "handle_misses": self._misses,
            "handle_puts": self._puts,
            "lease_ttl": self._lease_ttl,
            "active_leases": sum(1 for lease in leases if not lease["stale"]),
            "stale_leases": sum(1 for lease in leases if lease["stale"]),
        }

    def clear(
        self,
        lineage: Optional[str] = None,
        fingerprint_prefix: Optional[str] = None,
    ) -> int:
        """Delete entries; returns the count removed.

        Without filters everything goes (index counters included).  With
        ``lineage`` only entries recorded under that family name are removed;
        with ``fingerprint_prefix`` only entries whose graph fingerprint
        starts with the prefix.  Filters compose (AND); a filtered clear
        keeps the ``solves_recorded`` counter (the work was still done).
        """
        if not self._root.exists():
            return 0
        with self._locked(exclusive=True):
            index = self._read_index()
            if lineage is None and fingerprint_prefix is None:
                removed = len(index["entries"])
                for entry_id in index["entries"]:
                    with contextlib.suppress(OSError):
                        (self._blob_dir / f"{entry_id}.npz").unlink()
                self._write_index(self._empty_index())
                return removed
            doomed = [
                entry_id
                for entry_id, meta in index["entries"].items()
                if (lineage is None or meta.get("lineage") == lineage)
                and (
                    fingerprint_prefix is None
                    or str(meta.get("fingerprint", "")).startswith(fingerprint_prefix)
                )
            ]
            for entry_id in doomed:
                with contextlib.suppress(OSError):
                    (self._blob_dir / f"{entry_id}.npz").unlink()
                del index["entries"][entry_id]
            if doomed:
                self._write_index(index)
        return len(doomed)

    def verify(self, fix: bool = False) -> Dict[str, object]:
        """Integrity-check the store; optionally repair it.

        Detects three failure classes:

        * **missing** — index entries whose ``.npz`` blob is gone,
        * **corrupt** — blobs that fail to load or whose eigenvalue vector is
          malformed (wrong length, non-ascending, non-finite),
        * **orphaned** — ``.npz`` files in the blob directory that no index
          entry references (e.g. left behind by an index reset),
        * **stale leases** — solve-lease files whose holder is dead
          (expired heartbeat or dead pid on this host); live leases are
          reported but never flagged.

        With ``fix=True`` missing/corrupt entries are dropped from the index
        and corrupt/orphaned blob files deleted.  Orphan deletion re-scans
        under the exclusive lock and skips blobs younger than a minute:
        :meth:`put` writes the blob *before* indexing it, so a fresh blob
        may simply not be indexed yet by a concurrent writer.  Stale lease
        files are deleted after a re-check under the lease lock (a waiter
        may have legitimately taken one over since the scan).  Returns a
        report dict.
        """
        with self._locked(exclusive=False):
            index = self._read_index()
        missing: List[str] = []
        corrupt: List[str] = []
        for entry_id, meta in sorted(index["entries"].items()):
            blob = self._blob_dir / f"{entry_id}.npz"
            if not blob.exists():
                missing.append(entry_id)
                continue
            try:
                with np.load(blob) as data:
                    values = np.asarray(data["eigenvalues"], dtype=np.float64)
                    float(data["solve_seconds"])
                    lo = None
                    if "eigenvalues_lo" in data.files:
                        lo = np.asarray(data["eigenvalues_lo"], dtype=np.float64)
                ok = (
                    values.ndim == 1
                    and values.shape[0] == int(meta["h"])
                    and bool(np.all(np.isfinite(values)))
                    and bool(np.all(np.diff(values) >= -1e-9))
                )
                if ok and lo is not None:
                    # Interval variants: lower ends must be well-formed and
                    # never exceed the uppers (the interlacing invariant).
                    ok = (
                        lo.shape == values.shape
                        and bool(np.all(np.isfinite(lo)))
                        and bool(np.all(np.diff(lo) >= -1e-9))
                        and bool(np.all(lo <= values + 1e-9))
                    )
            except (OSError, KeyError, ValueError, zipfile.BadZipFile):
                ok = False
            if not ok:
                corrupt.append(entry_id)
        known = {f"{entry_id}.npz" for entry_id in index["entries"]}
        orphaned: List[str] = []
        if self._blob_dir.exists():
            orphaned = sorted(
                name.name
                for name in self._blob_dir.glob("*.npz")
                if name.name not in known
            )
        lease_rows = self.leases()
        stale_leases = sorted(row["lease"] for row in lease_rows if row["stale"])
        removed = 0
        leases_removed = 0
        if fix and stale_leases:
            with self._lease_locked():
                now = time.time()
                for name in stale_leases:
                    path = self._lease_dir / f"{name}.json"
                    meta = _read_lease_file(path)
                    if meta is not None and _lease_is_stale(meta, now):
                        with contextlib.suppress(OSError):
                            path.unlink()
                            leases_removed += 1
        if fix and (missing or corrupt or orphaned):
            with self._locked(exclusive=True):
                index = self._read_index()
                for entry_id in missing + corrupt:
                    if entry_id in index["entries"]:
                        del index["entries"][entry_id]
                        removed += 1
                    with contextlib.suppress(OSError):
                        (self._blob_dir / f"{entry_id}.npz").unlink()
                self._write_index(index)
                # Orphans re-derived from the fresh index inside the lock (a
                # racing put may have indexed one since the scan), and young
                # blobs are left alone — they may be a put in flight whose
                # index write is queued behind this very lock.
                known_now = {f"{entry_id}.npz" for entry_id in index["entries"]}
                cutoff = time.time() - 60.0
                for name in orphaned:
                    if name in known_now:
                        continue
                    blob = self._blob_dir / name
                    with contextlib.suppress(OSError):
                        if blob.stat().st_mtime <= cutoff:
                            blob.unlink()
        return {
            "root": str(self._root),
            "entries_checked": len(index["entries"]),
            "missing": missing,
            "corrupt": corrupt,
            "orphaned_blobs": orphaned,
            "active_leases": sum(1 for row in lease_rows if not row["stale"]),
            "stale_leases": stale_leases,
            "ok": not (missing or corrupt or orphaned or stale_leases),
            "fixed": bool(fix),
            "entries_removed": removed,
            "leases_removed": leases_removed,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_dirs(self) -> None:
        """Create the store tree on first *write*.

        Read-only operations (``get``, ``stats``, ``cache stats`` on a
        mistyped path) must not scatter empty store directories around.
        """
        self._blob_dir.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _empty_index() -> Dict[str, object]:
        return {"format_version": _FORMAT_VERSION, "solves_recorded": 0, "entries": {}}

    def _read_index(self, allow_cached: bool = False) -> Dict[str, object]:
        """Parse the index file.

        ``allow_cached=True`` (read-only paths) reuses the last parsed index
        while the file is byte-identical; write paths always parse fresh and
        never publish their (about-to-be-mutated) dict into the cache.
        """
        path = self._root / _INDEX_NAME
        stat_key = None
        if allow_cached:
            try:
                stat = path.stat()
                stat_key = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
            except OSError:
                stat_key = None
            if stat_key is not None:
                with self._counter_lock:
                    cached = self._index_cache
                if cached is not None and cached[0] == stat_key:
                    return cached[1]
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return self._empty_index()
        if data.get("format_version") != _FORMAT_VERSION:
            return self._empty_index()
        data.setdefault("entries", {})
        if stat_key is not None:
            with self._counter_lock:
                self._index_cache = (stat_key, data)
        return data

    def _write_index(self, index: Dict[str, object]) -> None:
        self._atomic_write_text(self._root / _INDEX_NAME, json.dumps(index, indent=1))
        with self._counter_lock:
            self._index_cache = None

    def _touch(self, entry_id: str) -> None:
        """Refresh an entry's ``last_used`` stamp (LRU bookkeeping)."""
        with self._locked(exclusive=True):
            index = self._read_index()
            meta = index["entries"].get(entry_id)
            if meta is not None:
                meta["last_used"] = time.time()
                self._write_index(index)

    def _evict_over_budget(self, index: Dict[str, object]) -> None:
        """Evict least-recently-used entries until blobs fit ``max_bytes``.

        Called with the exclusive lock held and the (mutable) index dict;
        the caller writes the index afterwards.  The newest entry is never
        evicted — a single over-budget spectrum is better than an empty
        store that re-solves forever.
        """
        entries: Dict[str, Dict] = index["entries"]
        sizes: Dict[str, int] = {}
        for entry_id in entries:
            blob = self._blob_dir / f"{entry_id}.npz"
            try:
                sizes[entry_id] = blob.stat().st_size
            except OSError:
                sizes[entry_id] = 0
        total = sum(sizes.values())
        if total <= self._max_bytes:
            return
        by_age = sorted(
            entries,
            key=lambda e: float(entries[e].get("last_used", entries[e].get("created_at", 0.0))),
        )
        for entry_id in by_age[:-1]:  # keep at least the most recent entry
            if total <= self._max_bytes:
                break
            with contextlib.suppress(OSError):
                (self._blob_dir / f"{entry_id}.npz").unlink()
            total -= sizes.get(entry_id, 0)
            del entries[entry_id]

    def _drop_entry(self, entry_id: str) -> None:
        with contextlib.suppress(OSError):
            (self._blob_dir / f"{entry_id}.npz").unlink()
        with self._locked(exclusive=True):
            index = self._read_index()
            if entry_id in index["entries"]:
                del index["entries"][entry_id]
                self._write_index(index)

    def _atomic_write_text(self, path: Path, text: str) -> None:
        _atomic_write_text(path, text)

    def _atomic_write_npz(self, path: Path, **arrays: np.ndarray) -> None:
        _atomic_write_npz(path, **arrays)

    def _locked(self, exclusive: bool):
        """Hold the store-wide advisory file lock (no-op where unsupported)."""
        return _flocked(self._root, _LOCK_NAME, exclusive)


@dataclass(frozen=True)
class StoredCutTable:
    """One graph's per-vertex convex min-cut table loaded from disk.

    ``vertices``/``values`` are aligned int64 arrays (read-only): entry ``i``
    says ``C(vertices[i], G) == values[i]``.  The table may be partial — a
    capped or pruned sweep only ever pays for the cuts it needed — and
    :meth:`CutStore.merge` unions new entries in.
    """

    vertices: np.ndarray
    values: np.ndarray

    def as_dict(self) -> Dict[int, int]:
        return dict(zip(self.vertices.tolist(), self.values.tolist()))

    def __len__(self) -> int:
        return int(self.vertices.shape[0])


class CutStore:
    """Persistent, fingerprint-keyed archive of convex min-cut tables.

    The cut values ``C(v, G)`` of the convex min-cut baseline are independent
    of the memory size ``M`` *and* of the max-flow backend (all backends are
    exact), so one on-disk table per graph fingerprint makes every warm
    re-run — across processes, pool workers, and sessions — perform zero
    max-flow calls.  Layout mirrors :class:`SpectrumStore` (it shares the
    same root directory by default): one ``.npz`` blob per graph under
    ``<root>/cuts/``, a ``cuts-index.json``, and an advisory ``.cuts.lock``
    for concurrent writers.  The persistent ``flows_recorded`` counter sums
    the max-flow calls somebody actually paid for, which is what the CI
    warm-run smoke asserts on.
    """

    _INDEX_NAME = "cuts-index.json"
    _LOCK_NAME = ".cuts.lock"
    _BLOB_DIR = "cuts"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self._root = Path(root) if root is not None else default_store_root()
        self._blob_dir = self._root / self._BLOB_DIR
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def hits(self) -> int:
        """Lookups this handle served from disk."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups this handle could not serve."""
        return self._misses

    @property
    def puts(self) -> int:
        """Merges this handle wrote."""
        return self._puts

    def __len__(self) -> int:
        return len(self._read_index()["entries"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CutStore(root={str(self._root)!r}, entries={len(self)})"

    # ------------------------------------------------------------------
    # lookup / publish
    # ------------------------------------------------------------------
    @_timed_io("cut", "get")
    def get(self, fingerprint: str) -> Optional[StoredCutTable]:
        """Load the stored cut table for a graph fingerprint, or ``None``."""
        table = self._load(fingerprint)
        with self._counter_lock:
            if table is None:
                self._misses += 1
            else:
                self._hits += 1
        return table

    def _load(self, fingerprint: str) -> Optional[StoredCutTable]:
        """Read a table from disk without touching the traffic counters.

        Internal readers (:meth:`merge` unioning the existing table,
        :meth:`verify` integrity checks) go through here so ``cache stats``
        only reports *lookup* traffic.
        """
        blob = self._blob_dir / f"{fingerprint}.npz"
        try:
            with np.load(blob) as data:
                vertices = np.ascontiguousarray(data["vertices"], dtype=np.int64)
                values = np.ascontiguousarray(data["values"], dtype=np.int64)
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            return None
        if vertices.shape != values.shape or vertices.ndim != 1:
            return None
        vertices.flags.writeable = False
        values.flags.writeable = False
        return StoredCutTable(vertices, values)

    @_timed_io("cut", "merge")
    def merge(
        self,
        fingerprint: str,
        vertices,
        values,
        flow_calls: int = 0,
        backend: Optional[str] = None,
        lineage: Optional[str] = None,
    ) -> int:
        """Union new ``vertex -> cut`` entries into a graph's table.

        Returns the table size after the merge.  ``flow_calls`` counts the
        max-flow solves paid to produce the new entries; it accumulates into
        the persistent ``flows_recorded`` counter even when a racing writer
        published the same cuts first (the counter tracks work done, not
        entries, exactly like ``solves_recorded``).
        """
        new_vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        new_values = np.asarray(values, dtype=np.int64).reshape(-1)
        if new_vertices.shape != new_values.shape:
            raise ValueError("vertices and values must have equal length")
        self._blob_dir.mkdir(parents=True, exist_ok=True)
        now = time.time()
        with _flocked(self._root, self._LOCK_NAME, exclusive=True):
            existing = self._load(fingerprint)
            if existing is not None and len(existing):
                merged_v = np.concatenate([existing.vertices, new_vertices])
                merged_c = np.concatenate([existing.values, new_values])
            else:
                merged_v, merged_c = new_vertices, new_values
            # Later entries win on duplicates (they are identical anyway:
            # the cut value of a vertex is a graph invariant).
            order = np.arange(merged_v.shape[0] - 1, -1, -1)
            uniq, first = np.unique(merged_v[order], return_index=True)
            table_v = uniq
            table_c = merged_c[order][first]
            _atomic_write_npz(
                self._blob_dir / f"{fingerprint}.npz",
                vertices=table_v,
                values=table_c,
            )
            index = self._read_index()
            index["flows_recorded"] = int(index.get("flows_recorded", 0)) + int(
                flow_calls
            )
            meta = index["entries"].setdefault(
                fingerprint, {"created_at": now}
            )
            meta.update(
                {
                    "num_cuts": int(table_v.shape[0]),
                    "backend": backend or meta.get("backend", "unknown"),
                    "lineage": lineage if lineage is not None else meta.get("lineage"),
                    "last_used": now,
                }
            )
            _atomic_write_text(
                self._root / self._INDEX_NAME, json.dumps(index, indent=1)
            )
        with self._counter_lock:
            self._puts += 1
        return int(table_v.shape[0])

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every stored cut table."""
        index = self._read_index()
        rows: List[Dict[str, object]] = []
        for fingerprint, meta in sorted(index["entries"].items()):
            blob = self._blob_dir / f"{fingerprint}.npz"
            rows.append(
                {
                    "fingerprint": fingerprint[:12],
                    "lineage": meta.get("lineage") or "-",
                    "backend": str(meta.get("backend", "unknown")),
                    "num_cuts": int(meta.get("num_cuts", 0)),
                    "bytes": blob.stat().st_size if blob.exists() else 0,
                }
            )
        return rows

    def stats(self) -> Dict[str, object]:
        """Aggregate cut-store statistics (persisted + handle traffic)."""
        index = self._read_index()
        entries = index["entries"]
        total_bytes = 0
        for fingerprint in entries:
            blob = self._blob_dir / f"{fingerprint}.npz"
            if blob.exists():
                total_bytes += blob.stat().st_size
        return {
            "root": str(self._root),
            "num_graphs": len(entries),
            "num_cuts": sum(int(m.get("num_cuts", 0)) for m in entries.values()),
            "total_bytes": total_bytes,
            "flows_recorded": int(index.get("flows_recorded", 0)),
            "handle_hits": self._hits,
            "handle_misses": self._misses,
            "handle_puts": self._puts,
        }

    def clear(
        self,
        lineage: Optional[str] = None,
        fingerprint_prefix: Optional[str] = None,
    ) -> int:
        """Delete cut tables; returns the count removed.

        Without filters everything goes (counters included).  With
        ``lineage`` only tables recorded under that family name are removed;
        with ``fingerprint_prefix`` only matching graphs.  Filters compose
        (AND) and keep the ``flows_recorded`` counter (the work was still
        done) — the same semantics as :meth:`SpectrumStore.clear`.
        """
        if not self._root.exists():
            return 0
        with _flocked(self._root, self._LOCK_NAME, exclusive=True):
            index = self._read_index()
            if lineage is None and fingerprint_prefix is None:
                doomed = list(index["entries"])
                new_index = self._empty_index()
            else:
                doomed = [
                    fp
                    for fp, meta in index["entries"].items()
                    if (lineage is None or meta.get("lineage") == lineage)
                    and (fingerprint_prefix is None or fp.startswith(fingerprint_prefix))
                ]
                for fp in doomed:
                    del index["entries"][fp]
                new_index = index
            for fp in doomed:
                with contextlib.suppress(OSError):
                    (self._blob_dir / f"{fp}.npz").unlink()
            if doomed or (lineage is None and fingerprint_prefix is None):
                _atomic_write_text(
                    self._root / self._INDEX_NAME, json.dumps(new_index, indent=1)
                )
        return len(doomed)

    def verify(self, fix: bool = False) -> Dict[str, object]:
        """Integrity-check the cut store; optionally repair it.

        Mirrors :meth:`SpectrumStore.verify`: **missing** (indexed table
        whose blob is gone), **corrupt** (blob unreadable, malformed, or
        disagreeing with the indexed ``num_cuts``, or negative/out-of-range
        cut values) and **orphaned** (blobs no index entry references).
        With ``fix=True`` missing/corrupt entries are dropped, corrupt blobs
        deleted, and orphans older than a minute removed (a younger blob may
        be a racing :meth:`merge` whose index write is still queued).
        """
        with _flocked(self._root, self._LOCK_NAME, exclusive=False):
            index = self._read_index()
        missing: List[str] = []
        corrupt: List[str] = []
        for fingerprint, meta in sorted(index["entries"].items()):
            blob = self._blob_dir / f"{fingerprint}.npz"
            if not blob.exists():
                missing.append(fingerprint)
                continue
            table = self._load(fingerprint)
            ok = (
                table is not None
                and len(table) == int(meta.get("num_cuts", -1))
                and (len(table) == 0 or int(table.values.min()) >= 0)
            )
            if not ok:
                corrupt.append(fingerprint)
        known = {f"{fingerprint}.npz" for fingerprint in index["entries"]}
        orphaned: List[str] = []
        if self._blob_dir.exists():
            orphaned = sorted(
                blob.name
                for blob in self._blob_dir.glob("*.npz")
                if blob.name not in known
            )
        removed = 0
        if fix and (missing or corrupt or orphaned):
            with _flocked(self._root, self._LOCK_NAME, exclusive=True):
                index = self._read_index()
                for fingerprint in missing + corrupt:
                    if fingerprint in index["entries"]:
                        del index["entries"][fingerprint]
                        removed += 1
                    with contextlib.suppress(OSError):
                        (self._blob_dir / f"{fingerprint}.npz").unlink()
                _atomic_write_text(
                    self._root / self._INDEX_NAME, json.dumps(index, indent=1)
                )
                known_now = {f"{fp}.npz" for fp in index["entries"]}
                cutoff = time.time() - 60.0
                for name in orphaned:
                    if name in known_now:
                        continue
                    blob = self._blob_dir / name
                    with contextlib.suppress(OSError):
                        if blob.stat().st_mtime <= cutoff:
                            blob.unlink()
        return {
            "root": str(self._root),
            "entries_checked": len(index["entries"]),
            "missing": missing,
            "corrupt": corrupt,
            "orphaned_blobs": orphaned,
            "ok": not (missing or corrupt or orphaned),
            "fixed": bool(fix),
            "entries_removed": removed,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _empty_index() -> Dict[str, object]:
        return {"format_version": _FORMAT_VERSION, "flows_recorded": 0, "entries": {}}

    def _read_index(self) -> Dict[str, object]:
        try:
            data = json.loads((self._root / self._INDEX_NAME).read_text())
        except (OSError, json.JSONDecodeError):
            return self._empty_index()
        if data.get("format_version") != _FORMAT_VERSION:
            return self._empty_index()
        data.setdefault("entries", {})
        return data
