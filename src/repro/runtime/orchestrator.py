"""Process-pool orchestration of bound sweeps over graph families.

The paper's figures are *family sweeps*: the same spectral bound evaluated on
every graph of a family for many ``(M, p)`` points.  Each graph's work is
eigensolve-dominated and — because the two normalisations (Theorem 4 vs
Theorem 5) are *independent* eigensolves — the natural unit of parallelism is
one **(graph, method)** pair, not one graph: :class:`SweepOrchestrator`
expands every (family, size) into per-method :class:`SolveTask` objects, each
carrying a cheap vertex-count estimate, and fans them out over a
``concurrent.futures.ProcessPoolExecutor`` **largest-first**.  Scheduling the
dominant task (the family's largest level) before the small fry keeps the
pool busy instead of idling behind it; rows are reassembled in task order, so
the output is identical to the serial sweep.

The convex min-cut baseline gets the same treatment at a finer grain: its
work is ``O(n)`` *independent* per-vertex max-flow calls, so each graph's
``convex-min-cut`` task further splits into candidate-vertex **chunks** (one
per worker by default) that the pool interleaves with the eigensolve tasks;
chunk rows are max-merged on reassembly, which is exact because ``max_v``
over a union of candidate sets is the max of per-chunk maxima.

Workers never receive a live graph.  A task carries either a picklable
builder callable (the generators are module-level functions) or a
:class:`~repro.runtime.families.GraphSpec`; the worker rehydrates the graph
locally, evaluates every ``M`` through the shared per-graph kernel
:func:`repro.analysis.sweep.evaluate_graph_rows`, and — when the
orchestrator was given a persistent :class:`~repro.runtime.store
.SpectrumStore` — publishes every fresh eigensolve (and, through the
sibling :class:`~repro.runtime.store.CutStore`, every fresh min-cut value)
back through the store, so concurrent workers and *future runs* share
results even though each worker process has its own memory cache.  Pool
workers pin BLAS threading to one thread each (see
:func:`pin_worker_blas_threads`), so ``p`` workers consume ``p`` cores
instead of ``p * blas_threads``.

With ``processes=1`` the orchestrator degenerates to the serial loop the
analysis harness always ran: tasks execute in submission order (which also
lets warm-start-capable backends seed consecutive family levels from each
other), one shared in-memory cache across the whole sweep (plus the optional
store tier), zero pickling.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import dataclasses

from repro import obs
from repro.analysis.sweep import METHODS, SweepRow, evaluate_graph_rows
from repro.core.engine import SolveRecord
from repro.graphs.compgraph import ComputationGraph
from repro.runtime.families import GraphSpec, estimate_num_vertices, family_builder
from repro.runtime.store import CutStore, SpectrumStore
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = [
    "SweepTask",
    "SolveTask",
    "TaskRecord",
    "SweepReport",
    "SweepOrchestrator",
    "BLAS_THREAD_ENV_VARS",
    "pin_worker_blas_threads",
]

#: Threading knobs of the BLAS/LAPACK stacks numpy/scipy may link against.
#: Pool workers pin them all to 1: each worker is one schedulable unit, and a
#: worker-level eigensolve that fans out over every core oversubscribes the
#: host as soon as two workers run (p workers x c BLAS threads on c cores).
BLAS_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_worker_blas_threads() -> None:
    """``ProcessPoolExecutor`` initializer: single-threaded BLAS per worker.

    ``setdefault`` keeps explicit operator overrides (e.g. a deliberate
    ``OMP_NUM_THREADS=2``) in force; only unset knobs are pinned.  The env
    vars fully configure spawn-started workers (they import numpy/scipy
    after the initializer) and the lazily initialised OpenMP regions of
    fork-started ones; a BLAS thread pool already *sized* in the parent
    before the fork ignores them, so when :mod:`threadpoolctl` is importable
    it is used as well — its limits apply to already-loaded libraries.
    """
    for name in BLAS_THREAD_ENV_VARS:
        os.environ.setdefault(name, "1")
    try:
        import threadpoolctl
    except ImportError:
        return
    try:
        threadpoolctl.threadpool_limits(1)
    except Exception:  # pragma: no cover - diagnostics-only safety net
        pass


@dataclass(frozen=True)
class SweepTask:
    """One graph's worth of sweep work, in rehydratable form.

    Either ``builder`` (a picklable callable applied to ``size_param``) or
    ``spec`` identifies the graph.  This is the user-facing unit; the
    orchestrator expands it into per-method :class:`SolveTask` units.
    """

    family: str
    size_param: int
    builder: Optional[Callable[[int], ComputationGraph]] = None
    spec: Optional[GraphSpec] = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.spec is None):
            raise ValueError("SweepTask needs exactly one of builder or spec")

    def build_graph(self) -> ComputationGraph:
        if self.builder is not None:
            return self.builder(self.size_param)
        return self.spec.build()

    def estimate_num_vertices(self) -> int:
        """Vertex-count estimate without building the graph (see families)."""
        if self.spec is not None:
            return self.spec.estimate_num_vertices()
        return estimate_num_vertices(self.family, self.size_param)


@dataclass(frozen=True)
class SolveTask:
    """The schedulable unit: one (graph, method[, candidate-chunk]) evaluation.

    ``methods`` usually holds a single method — per-normalisation splitting
    is what lets the pool schedule the two eigensolves of one graph on
    different workers — but carries the whole method tuple when splitting is
    disabled.  ``size_estimate`` orders the queue largest-first;
    ``order_index`` restores row order on reassembly.

    The convex min-cut baseline additionally splits *within* a graph:
    ``(chunk_index, num_chunks)`` restricts the task to one strided slice of
    the candidate vertices (see :func:`repro.analysis.sweep
    .convex_candidates`), so one graph's ``O(n)`` flow calls interleave with
    spectral solve tasks across the pool.  Chunk rows are max-merged on
    reassembly — ``max_v`` over a union is the max of per-slice maxima.
    """

    task: SweepTask
    methods: Tuple[str, ...]
    size_estimate: int
    order_index: int
    chunk_index: int = 0
    num_chunks: int = 1


@dataclass(frozen=True)
class TaskRecord:
    """Per solve-task observability record (surfaces in CLI JSON output).

    Spectral tasks fill ``backend``/``dtype``/``solve_seconds``; convex
    min-cut tasks fill ``flow_backend``/``flow_calls``/``cut_seconds`` (and
    their chunk coordinates when the orchestrator split the per-vertex flow
    calls across workers).
    """

    family: str
    size_param: int
    methods: Tuple[str, ...]
    size_estimate: int
    schedule_rank: int
    seconds: float
    num_eigensolves: int
    backend: str
    dtype: str
    solve_seconds: float
    flow_backend: Optional[str] = None
    flow_calls: int = 0
    cut_seconds: float = 0.0
    chunk_index: int = 0
    num_chunks: int = 1
    #: Trace linkage: the id pair of this task's span when the sweep ran
    #: with tracing enabled (``--trace``), ``None`` otherwise.  JSON output
    #: links into the trace tree instead of duplicating timing fields.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["methods"] = list(self.methods)
        return data


@dataclass
class SweepReport:
    """The outcome of one orchestrated sweep."""

    rows: List[SweepRow]
    num_eigensolves: int
    elapsed_seconds: float
    processes: int
    store_root: Optional[str] = None
    per_task_seconds: List[float] = field(default_factory=list)
    tasks: List[TaskRecord] = field(default_factory=list)
    num_flow_calls: int = 0

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary (what the CLI prints/saves)."""
        return {
            "num_rows": self.num_rows,
            "num_eigensolves": self.num_eigensolves,
            "num_flow_calls": self.num_flow_calls,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "processes": self.processes,
            "store_root": self.store_root,
        }


# Worker payload: everything a pool worker needs, all picklable.  The trace
# element carries the sweep span's context plus the shard base path workers
# write their span shards next to; ``None`` keeps workers fully silent (the
# zero-cost-when-disabled guarantee holds across the pool).
_TaskPayload = Tuple[
    SolveTask,
    Tuple[int, ...],  # memory sizes
    int,  # num_eigenvalues
    bool,  # skip_infeasible
    Optional[int],  # convex_vertex_cap
    Optional[Dict[str, int]],  # max_vertices
    Optional[str],  # store root
    Optional[EigenSolverOptions],
    Optional[str],  # mincut backend id
    Optional[Tuple[obs.TraceContext, Optional[str]]],  # trace ctx + shard base
]

# Rows, eigensolves, seconds, solve records, cut stats, task span id pair.
_TaskOutcome = Tuple[
    List[SweepRow],
    int,
    float,
    List[SolveRecord],
    Optional[Dict[str, object]],
    Optional[Tuple[str, str]],
]


def _task_tag(solve_task: SolveTask) -> str:
    """Filesystem-safe identity for per-task profile artefacts."""
    task = solve_task.task
    tag = f"{task.family}-{task.size_param}-{'+'.join(solve_task.methods)}"
    if solve_task.num_chunks > 1:
        tag += f"-c{solve_task.chunk_index}"
    return "".join(c if c.isalnum() or c in "-+_." else "_" for c in tag)


def _execute_task(payload: _TaskPayload) -> _TaskOutcome:
    """Run one solve task in a pool worker and time it.

    Each invocation builds its own store handles and memory cache: handles
    are not picklable/fork-safe, but the store *directory* is shared, which
    is how workers publish spectra and cut tables to each other and to later
    runs.  Tracing is reconfigured per call: the inherited parent tracer is
    always replaced (fork would share its open file), either with a per-pid
    shard tracer re-rooted under the shipped sweep context or with nothing.
    """
    (
        solve_task,
        memory_sizes,
        num_eigenvalues,
        skip_infeasible,
        convex_vertex_cap,
        max_vertices,
        store_root,
        eig_options,
        mincut_backend,
        trace,
    ) = payload
    parent_context, shard_base = trace if trace is not None else (None, None)
    obs.worker_configure(parent_context, shard_base)
    start = time.perf_counter()
    task = solve_task.task
    with obs.span(
        "task",
        family=task.family,
        size_param=task.size_param,
        methods=list(solve_task.methods),
        chunk_index=solve_task.chunk_index,
        num_chunks=solve_task.num_chunks,
    ) as task_span, obs.maybe_profile(shard_base, _task_tag(solve_task)):
        graph = task.build_graph()
        store = SpectrumStore(store_root) if store_root else None
        cache = SpectrumCache(store=store)
        cut_store = CutStore(store_root) if store_root else None
        chunk = (
            (solve_task.chunk_index, solve_task.num_chunks)
            if solve_task.num_chunks > 1
            else None
        )
        rows, eigensolves, records, cut_stats = evaluate_graph_rows(
            task.family,
            task.size_param,
            graph,
            memory_sizes,
            methods=solve_task.methods,
            num_eigenvalues=num_eigenvalues,
            skip_infeasible=skip_infeasible,
            convex_vertex_cap=convex_vertex_cap,
            max_vertices=max_vertices,
            cache=cache,
            eig_options=eig_options,
            mincut_backend=mincut_backend,
            cut_store=cut_store,
            convex_chunk=chunk,
        )
    span_ids = (
        (task_span.trace_id, task_span.span_id)
        if task_span.trace_id is not None
        else None
    )
    return rows, eigensolves, time.perf_counter() - start, records, cut_stats, span_ids


def _task_record(
    solve_task: SolveTask,
    schedule_rank: int,
    outcome: _TaskOutcome,
    eig_options: Optional[EigenSolverOptions],
) -> TaskRecord:
    _, eigensolves, seconds, records, cut_stats, span_ids = outcome
    solved = [r for r in records if not r.cache_hit]
    reference = solved[0] if solved else (records[0] if records else None)
    options = eig_options or EigenSolverOptions()
    return TaskRecord(
        family=solve_task.task.family,
        size_param=solve_task.task.size_param,
        methods=solve_task.methods,
        size_estimate=solve_task.size_estimate,
        schedule_rank=schedule_rank,
        seconds=seconds,
        num_eigensolves=eigensolves,
        backend=reference.backend if reference is not None else "-",
        dtype=reference.dtype if reference is not None else options.dtype,
        solve_seconds=sum(r.solve_seconds for r in solved),
        flow_backend=str(cut_stats["backend"]) if cut_stats else None,
        flow_calls=int(cut_stats["flow_calls"]) if cut_stats else 0,
        cut_seconds=float(cut_stats["cut_seconds"]) if cut_stats else 0.0,
        chunk_index=solve_task.chunk_index,
        num_chunks=solve_task.num_chunks,
        trace_id=span_ids[0] if span_ids else None,
        span_id=span_ids[1] if span_ids else None,
    )


def _merge_chunk_rows(chunk_rows: List[List[SweepRow]]) -> List[SweepRow]:
    """Combine the rows of one graph's convex chunk tasks.

    Every chunk evaluates the same (method, M) grid over a disjoint slice of
    the candidate vertices, so the merged bound at each grid point is the
    maximum over chunks (``max_v`` over a union of candidate sets); elapsed
    time sums (it is real work done, split across workers).
    """
    reference = chunk_rows[0]
    for other in chunk_rows[1:]:
        if len(other) != len(reference):  # pragma: no cover - expansion invariant
            raise AssertionError("convex chunk tasks produced mismatched row grids")
    merged: List[SweepRow] = []
    for position, row in enumerate(reference):
        siblings = [rows[position] for rows in chunk_rows]
        merged.append(
            dataclasses.replace(
                row,
                bound=max(r.bound for r in siblings),
                elapsed_seconds=sum(r.elapsed_seconds for r in siblings),
            )
        )
    return merged


class SweepOrchestrator:
    """Fan a family sweep out over processes with shared persistent spectra.

    Parameters
    ----------
    store:
        Persistent spectrum store shared by every engine/worker: a
        :class:`SpectrumStore`, a root path, or ``None`` (no persistence).
    processes:
        Worker processes.  ``1`` runs serially in-process; ``None`` uses
        ``os.cpu_count()``.
    num_eigenvalues, skip_infeasible, convex_vertex_cap, max_vertices:
        Forwarded to :func:`repro.analysis.sweep.evaluate_graph_rows`.
    eig_options:
        Solver backend/precision configuration forwarded to every engine
        and worker (``--solver``/``--dtype`` on the CLI).
    split_methods:
        Expand each graph into per-method solve tasks (the default).  Off,
        the task unit is a whole graph with all methods — the pre-split
        behaviour, kept as a baseline for the scheduling benchmarks.
    largest_first:
        Schedule pooled tasks by descending size estimate (the default) so
        the dominant eigensolve starts first.  Serial execution always runs
        in submission order (warm starts chain through ascending levels).
    mincut_backend:
        Max-flow backend id for the convex min-cut baseline (``None`` =
        auto: scipy when available).
    convex_chunks:
        Number of candidate-vertex chunks each graph's convex min-cut task
        splits into (``None`` = one chunk per worker process when pooled,
        no chunking serially).  Chunks are scheduled like any other solve
        task, so per-vertex flow calls interleave with eigensolves.
    pin_blas:
        Pin BLAS threading to 1 in pool workers (the default) so ``p``
        workers use ``p`` cores instead of ``p * blas_threads``.
    """

    def __init__(
        self,
        store: Union[SpectrumStore, str, Path, None] = None,
        processes: Optional[int] = 1,
        num_eigenvalues: int = 100,
        skip_infeasible: bool = True,
        convex_vertex_cap: Optional[int] = None,
        max_vertices: Optional[Dict[str, int]] = None,
        eig_options: Optional[EigenSolverOptions] = None,
        split_methods: bool = True,
        largest_first: bool = True,
        mincut_backend: Optional[str] = None,
        convex_chunks: Optional[int] = None,
        pin_blas: bool = True,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = SpectrumStore(store)
        self._store = store
        self._cut_store = CutStore(store.root) if store is not None else None
        if processes is None:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be positive, got {processes}")
        if convex_chunks is not None and convex_chunks < 1:
            raise ValueError(f"convex_chunks must be positive, got {convex_chunks}")
        self._processes = int(processes)
        self._num_eigenvalues = int(num_eigenvalues)
        self._skip_infeasible = bool(skip_infeasible)
        self._convex_vertex_cap = convex_vertex_cap
        self._max_vertices = max_vertices
        self._eig_options = eig_options
        self._split_methods = bool(split_methods)
        self._largest_first = bool(largest_first)
        self._mincut_backend = mincut_backend
        self._convex_chunks = convex_chunks
        self._pin_blas = bool(pin_blas)

    @property
    def store(self) -> Optional[SpectrumStore]:
        return self._store

    @property
    def processes(self) -> int:
        return self._processes

    @property
    def eig_options(self) -> Optional[EigenSolverOptions]:
        return self._eig_options

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run_family(
        self,
        family: str,
        graph_builder: Optional[Callable[[int], ComputationGraph]],
        size_params: Iterable[int],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Sweep one named family over its size parameters.

        ``graph_builder=None`` resolves the builder from the family registry
        (:data:`repro.runtime.families.FAMILY_BUILDERS`).
        """
        builder = graph_builder if graph_builder is not None else family_builder(family)
        tasks = [
            SweepTask(family=family, size_param=int(size), builder=builder)
            for size in size_params
        ]
        return self.run(tasks, memory_sizes, methods=methods)

    def run_specs(
        self,
        specs: Sequence[GraphSpec],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Sweep explicit graph specs (generator refs or serialized graphs)."""
        tasks = [
            SweepTask(
                family=spec.describe(),
                size_param=spec.size_param if spec.size_param is not None else 0,
                spec=spec,
            )
            for spec in specs
        ]
        return self.run(tasks, memory_sizes, methods=methods)

    def run(
        self,
        tasks: Sequence[SweepTask],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Execute ``tasks`` and return all rows in task order.

        Rows come out grouped by graph (in ``tasks`` order), then by method
        (in ``methods`` order) — exactly the serial harness's order — no
        matter how the pool interleaved the underlying solve tasks.
        """
        memory_tuple = tuple(int(M) for M in memory_sizes)
        method_tuple = tuple(methods)
        # Validate eagerly: a typo'd method must fail before any graph is
        # built (and before it would surface as a pickled pool exception).
        for method in method_tuple:
            if method not in METHODS:
                raise ValueError(
                    f"unknown method {method!r}; expected one of {METHODS}"
                )
        store_root = str(self._store.root) if self._store is not None else None
        start = time.perf_counter()
        solve_tasks = self._expand(tasks, method_tuple)
        with obs.span(
            "sweep",
            num_tasks=len(solve_tasks),
            num_graphs=len(tasks),
            methods=list(method_tuple),
            processes=self._processes,
        ):
            if self._processes == 1 or len(solve_tasks) <= 1:
                outcomes = self._run_serial(solve_tasks, memory_tuple)
                ranks = list(range(len(solve_tasks)))
            else:
                outcomes, ranks = self._run_pooled(
                    solve_tasks, memory_tuple, store_root
                )
        rows: List[SweepRow] = []
        eigensolves = 0
        flow_calls = 0
        per_task_seconds: List[float] = []
        task_records: List[TaskRecord] = []
        index = 0
        while index < len(solve_tasks):
            # Chunked convex tasks of one graph are adjacent by construction;
            # their rows merge into one logical row group.
            group = range(index, index + max(1, solve_tasks[index].num_chunks))
            for j in group:
                _, task_solves, seconds, _, cut_stats, _ = outcomes[j]
                eigensolves += task_solves
                per_task_seconds.append(seconds)
                if cut_stats is not None:
                    flow_calls += int(cut_stats["flow_calls"])
                task_records.append(
                    _task_record(solve_tasks[j], ranks[j], outcomes[j], self._eig_options)
                )
            if len(group) == 1:
                rows.extend(outcomes[index][0])
            else:
                rows.extend(_merge_chunk_rows([outcomes[j][0] for j in group]))
            index = group.stop
        return SweepReport(
            rows=rows,
            num_eigensolves=eigensolves,
            elapsed_seconds=time.perf_counter() - start,
            processes=self._processes,
            store_root=store_root,
            per_task_seconds=per_task_seconds,
            tasks=task_records,
            num_flow_calls=flow_calls,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _expand(
        self, tasks: Sequence[SweepTask], methods: Tuple[str, ...]
    ) -> List[SolveTask]:
        """Expand graph tasks into schedulable solve tasks, in row order.

        Convex min-cut tasks additionally split into candidate-vertex chunks
        (one per worker by default when pooled) so a single graph's ``O(n)``
        flow calls spread across the pool instead of serialising on one
        worker while eigensolves run elsewhere.
        """
        chunks = self._convex_chunks
        if chunks is None:
            chunks = self._processes if self._processes > 1 else 1
        solve_tasks: List[SolveTask] = []
        for task in tasks:
            estimate = task.estimate_num_vertices()
            if self._split_methods and len(methods) > 1:
                method_groups: List[Tuple[str, ...]] = [(m,) for m in methods]
            else:
                method_groups = [methods]
            for group in method_groups:
                if group == ("convex-min-cut",) and chunks > 1:
                    for chunk_index in range(chunks):
                        solve_tasks.append(
                            SolveTask(
                                task,
                                group,
                                max(1, estimate // chunks),
                                len(solve_tasks),
                                chunk_index=chunk_index,
                                num_chunks=chunks,
                            )
                        )
                else:
                    solve_tasks.append(
                        SolveTask(task, group, estimate, len(solve_tasks))
                    )
        return solve_tasks

    def _payload(
        self,
        solve_task: SolveTask,
        memory_sizes: Tuple[int, ...],
        store_root: Optional[str],
        trace: Optional[Tuple[obs.TraceContext, Optional[str]]],
    ) -> _TaskPayload:
        return (
            solve_task,
            memory_sizes,
            self._num_eigenvalues,
            self._skip_infeasible,
            self._convex_vertex_cap,
            self._max_vertices,
            store_root,
            self._eig_options,
            self._mincut_backend,
            trace,
        )

    def _run_pooled(
        self,
        solve_tasks: Sequence[SolveTask],
        memory_sizes: Tuple[int, ...],
        store_root: Optional[str],
    ) -> Tuple[List[_TaskOutcome], List[int]]:
        """Largest-first pooled execution; outcomes returned in task order.

        Submission order is the schedule: ``ProcessPoolExecutor`` hands
        queued work to workers FIFO, so submitting by descending size
        estimate makes the dominant solve start first instead of last —
        the difference between ``max(longest task, total/p)`` and a pool
        that idles behind the largest FFT level it started at the end.
        """
        order = list(range(len(solve_tasks)))
        if self._largest_first:
            order.sort(key=lambda i: (-solve_tasks[i].size_estimate, i))
        ranks = [0] * len(solve_tasks)
        for rank, index in enumerate(order):
            ranks[index] = rank
        workers = min(self._processes, len(solve_tasks))
        outcomes: List[Optional[_TaskOutcome]] = [None] * len(solve_tasks)
        initializer = pin_worker_blas_threads if self._pin_blas else None
        # Ship the sweep span's context so workers re-root under it; after
        # the pool drains (even on task failure), fold the per-pid span
        # shards into the main trace file so one sweep reads as one tree.
        tracer = obs.get_tracer()
        context = obs.current_context()
        trace = (context, tracer.path) if tracer is not None and context else None
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=initializer
            ) as pool:
                futures = {
                    index: pool.submit(
                        _execute_task,
                        self._payload(
                            solve_tasks[index], memory_sizes, store_root, trace
                        ),
                    )
                    for index in order
                }
                for index, future in futures.items():
                    outcomes[index] = future.result()
        finally:
            if trace is not None and trace[1] is not None:
                obs.merge_shards(trace[1], trace[1])
        return outcomes, ranks

    def _run_serial(
        self,
        solve_tasks: Sequence[SolveTask],
        memory_sizes: Tuple[int, ...],
    ) -> List[_TaskOutcome]:
        """In-process execution with one cache shared across the whole sweep.

        This preserves the serial harness's strongest guarantee: one
        eigensolve per (graph, normalisation) for the *entire* sweep, even
        when size parameters repeat.  Tasks run in submission order, so
        warm-start-capable backends chain consecutive family levels.
        """
        cache = SpectrumCache(
            max_entries=max(8, 2 * len(solve_tasks)), store=self._store
        )
        outcomes: List[_TaskOutcome] = []
        built: Tuple[Optional[SweepTask], Optional[ComputationGraph]] = (None, None)
        tracer = obs.get_tracer()
        profile_base = tracer.path if tracer is not None else None
        for solve_task in solve_tasks:
            start = time.perf_counter()
            task = solve_task.task
            with obs.span(
                "task",
                family=task.family,
                size_param=task.size_param,
                methods=list(solve_task.methods),
                chunk_index=solve_task.chunk_index,
                num_chunks=solve_task.num_chunks,
            ) as task_span, obs.maybe_profile(profile_base, _task_tag(solve_task)):
                # Method-split tasks of one graph are adjacent (expansion
                # order): build the graph once and reuse it for its siblings.
                if built[0] is task:
                    graph = built[1]
                else:
                    graph = task.build_graph()
                    built = (task, graph)
                chunk = (
                    (solve_task.chunk_index, solve_task.num_chunks)
                    if solve_task.num_chunks > 1
                    else None
                )
                rows, solves, records, cut_stats = evaluate_graph_rows(
                    task.family,
                    task.size_param,
                    graph,
                    memory_sizes,
                    methods=solve_task.methods,
                    num_eigenvalues=self._num_eigenvalues,
                    skip_infeasible=self._skip_infeasible,
                    convex_vertex_cap=self._convex_vertex_cap,
                    max_vertices=self._max_vertices,
                    cache=cache,
                    eig_options=self._eig_options,
                    mincut_backend=self._mincut_backend,
                    cut_store=self._cut_store,
                    convex_chunk=chunk,
                )
            span_ids = (
                (task_span.trace_id, task_span.span_id)
                if task_span.trace_id is not None
                else None
            )
            outcomes.append(
                (rows, solves, time.perf_counter() - start, records, cut_stats, span_ids)
            )
        return outcomes
