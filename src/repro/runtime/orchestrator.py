"""Process-pool orchestration of bound sweeps over graph families.

The paper's figures are *family sweeps*: the same spectral bound evaluated on
every graph of a family for many ``(M, p)`` points.  Each graph's work is
independent and eigensolve-dominated, which makes the family the natural unit
of parallelism: :class:`SweepOrchestrator` turns each (family, size) pair
into a :class:`SweepTask` and fans the tasks out over a
``concurrent.futures.ProcessPoolExecutor``.

Workers never receive a live graph.  A task carries either a picklable
builder callable (the generators are module-level functions) or a
:class:`~repro.runtime.families.GraphSpec`; the worker rehydrates the graph
locally, evaluates every (method, M) combination through the shared
per-graph kernel :func:`repro.analysis.sweep.evaluate_graph_rows`, and —
when the orchestrator was given a persistent
:class:`~repro.runtime.store.SpectrumStore` — publishes every fresh
eigensolve back through the store, so concurrent workers and *future runs*
share spectra even though each worker process has its own memory cache.

With ``processes=1`` the orchestrator degenerates to the serial loop the
analysis harness always ran: one shared in-memory cache across the whole
sweep (plus the optional store tier), zero pickling.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.sweep import METHODS, SweepRow, evaluate_graph_rows
from repro.graphs.compgraph import ComputationGraph
from repro.runtime.families import GraphSpec, family_builder
from repro.runtime.store import SpectrumStore
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = ["SweepTask", "SweepReport", "SweepOrchestrator"]


@dataclass(frozen=True)
class SweepTask:
    """One graph's worth of sweep work, in rehydratable form.

    Either ``builder`` (a picklable callable applied to ``size_param``) or
    ``spec`` identifies the graph.
    """

    family: str
    size_param: int
    builder: Optional[Callable[[int], ComputationGraph]] = None
    spec: Optional[GraphSpec] = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.spec is None):
            raise ValueError("SweepTask needs exactly one of builder or spec")

    def build_graph(self) -> ComputationGraph:
        if self.builder is not None:
            return self.builder(self.size_param)
        return self.spec.build()


@dataclass
class SweepReport:
    """The outcome of one orchestrated sweep."""

    rows: List[SweepRow]
    num_eigensolves: int
    elapsed_seconds: float
    processes: int
    store_root: Optional[str] = None
    per_task_seconds: List[float] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary (what the CLI prints/saves)."""
        return {
            "num_rows": self.num_rows,
            "num_eigensolves": self.num_eigensolves,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "processes": self.processes,
            "store_root": self.store_root,
        }


# Worker payload: everything a pool worker needs, all picklable.
_TaskPayload = Tuple[
    SweepTask,
    Tuple[int, ...],  # memory sizes
    Tuple[str, ...],  # methods
    int,  # num_eigenvalues
    bool,  # skip_infeasible
    Optional[int],  # convex_vertex_cap
    Optional[Dict[str, int]],  # max_vertices
    Optional[str],  # store root
]


def _execute_task(payload: _TaskPayload) -> Tuple[List[SweepRow], int, float]:
    """Run one task (in a pool worker or inline) and time it.

    Each invocation builds its own store handle and memory cache: handles are
    not picklable/fork-safe, but the store *directory* is shared, which is
    how workers publish spectra to each other and to later runs.
    """
    (
        task,
        memory_sizes,
        methods,
        num_eigenvalues,
        skip_infeasible,
        convex_vertex_cap,
        max_vertices,
        store_root,
    ) = payload
    start = time.perf_counter()
    graph = task.build_graph()
    store = SpectrumStore(store_root) if store_root else None
    cache = SpectrumCache(store=store)
    rows, eigensolves = evaluate_graph_rows(
        task.family,
        task.size_param,
        graph,
        memory_sizes,
        methods=methods,
        num_eigenvalues=num_eigenvalues,
        skip_infeasible=skip_infeasible,
        convex_vertex_cap=convex_vertex_cap,
        max_vertices=max_vertices,
        cache=cache,
    )
    return rows, eigensolves, time.perf_counter() - start


class SweepOrchestrator:
    """Fan a family sweep out over processes with shared persistent spectra.

    Parameters
    ----------
    store:
        Persistent spectrum store shared by every engine/worker: a
        :class:`SpectrumStore`, a root path, or ``None`` (no persistence).
    processes:
        Worker processes.  ``1`` runs serially in-process; ``None`` uses
        ``os.cpu_count()``.
    num_eigenvalues, skip_infeasible, convex_vertex_cap, max_vertices:
        Forwarded to :func:`repro.analysis.sweep.evaluate_graph_rows`.
    """

    def __init__(
        self,
        store: Union[SpectrumStore, str, Path, None] = None,
        processes: Optional[int] = 1,
        num_eigenvalues: int = 100,
        skip_infeasible: bool = True,
        convex_vertex_cap: Optional[int] = None,
        max_vertices: Optional[Dict[str, int]] = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = SpectrumStore(store)
        self._store = store
        if processes is None:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be positive, got {processes}")
        self._processes = int(processes)
        self._num_eigenvalues = int(num_eigenvalues)
        self._skip_infeasible = bool(skip_infeasible)
        self._convex_vertex_cap = convex_vertex_cap
        self._max_vertices = max_vertices

    @property
    def store(self) -> Optional[SpectrumStore]:
        return self._store

    @property
    def processes(self) -> int:
        return self._processes

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run_family(
        self,
        family: str,
        graph_builder: Optional[Callable[[int], ComputationGraph]],
        size_params: Iterable[int],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Sweep one named family over its size parameters.

        ``graph_builder=None`` resolves the builder from the family registry
        (:data:`repro.runtime.families.FAMILY_BUILDERS`).
        """
        builder = graph_builder if graph_builder is not None else family_builder(family)
        tasks = [
            SweepTask(family=family, size_param=int(size), builder=builder)
            for size in size_params
        ]
        return self.run(tasks, memory_sizes, methods=methods)

    def run_specs(
        self,
        specs: Sequence[GraphSpec],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Sweep explicit graph specs (generator refs or serialized graphs)."""
        tasks = [
            SweepTask(
                family=spec.describe(),
                size_param=spec.size_param if spec.size_param is not None else 0,
                spec=spec,
            )
            for spec in specs
        ]
        return self.run(tasks, memory_sizes, methods=methods)

    def run(
        self,
        tasks: Sequence[SweepTask],
        memory_sizes: Iterable[int],
        methods: Sequence[str] = ("spectral",),
    ) -> SweepReport:
        """Execute ``tasks`` and return all rows in task order."""
        memory_tuple = tuple(int(M) for M in memory_sizes)
        method_tuple = tuple(methods)
        # Validate eagerly: a typo'd method must fail before any graph is
        # built (and before it would surface as a pickled pool exception).
        for method in method_tuple:
            if method not in METHODS:
                raise ValueError(
                    f"unknown method {method!r}; expected one of {METHODS}"
                )
        store_root = str(self._store.root) if self._store is not None else None
        start = time.perf_counter()
        if self._processes == 1 or len(tasks) <= 1:
            results = self._run_serial(tasks, memory_tuple, method_tuple)
        else:
            payloads = [
                self._payload(task, memory_tuple, method_tuple, store_root)
                for task in tasks
            ]
            workers = min(self._processes, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_execute_task, payloads))
        rows: List[SweepRow] = []
        eigensolves = 0
        per_task_seconds: List[float] = []
        for task_rows, task_solves, seconds in results:
            rows.extend(task_rows)
            eigensolves += task_solves
            per_task_seconds.append(seconds)
        return SweepReport(
            rows=rows,
            num_eigensolves=eigensolves,
            elapsed_seconds=time.perf_counter() - start,
            processes=self._processes,
            store_root=store_root,
            per_task_seconds=per_task_seconds,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _payload(
        self,
        task: SweepTask,
        memory_sizes: Tuple[int, ...],
        methods: Tuple[str, ...],
        store_root: Optional[str],
    ) -> _TaskPayload:
        return (
            task,
            memory_sizes,
            methods,
            self._num_eigenvalues,
            self._skip_infeasible,
            self._convex_vertex_cap,
            self._max_vertices,
            store_root,
        )

    def _run_serial(
        self,
        tasks: Sequence[SweepTask],
        memory_sizes: Tuple[int, ...],
        methods: Tuple[str, ...],
    ) -> List[Tuple[List[SweepRow], int, float]]:
        """In-process execution with one cache shared across the whole sweep.

        This preserves the serial harness's strongest guarantee: one
        eigensolve per (graph, normalisation) for the *entire* sweep, even
        when size parameters repeat.
        """
        cache = SpectrumCache(
            max_entries=max(8, 2 * len(tasks)), store=self._store
        )
        results: List[Tuple[List[SweepRow], int, float]] = []
        for task in tasks:
            start = time.perf_counter()
            graph = task.build_graph()
            rows, solves = evaluate_graph_rows(
                task.family,
                task.size_param,
                graph,
                memory_sizes,
                methods=methods,
                num_eigenvalues=self._num_eigenvalues,
                skip_infeasible=self._skip_infeasible,
                convex_vertex_cap=self._convex_vertex_cap,
                max_vertices=self._max_vertices,
                cache=cache,
            )
            results.append((rows, solves, time.perf_counter() - start))
        return results
