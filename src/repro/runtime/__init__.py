"""Runtime layer: persistent spectra, pooled sweeps, batch serving.

The modules here make every eigensolve happen at most once *ever*:

* :mod:`repro.runtime.store` — :class:`SpectrumStore`, the on-disk,
  fingerprint-keyed spectrum archive that plugs under
  :class:`~repro.solvers.spectrum_cache.SpectrumCache` as a second tier;
* :mod:`repro.runtime.families` — :class:`GraphSpec` and the named-generator
  registry that lets workers and CLI invocations rehydrate graphs;
* :mod:`repro.runtime.orchestrator` — :class:`SweepOrchestrator`, the
  process-pool fan-out behind :func:`repro.analysis.sweep.sweep`;
* :mod:`repro.runtime.service` — :class:`BoundService`, batch queries
  against warm caches (the serving layer);
* :mod:`repro.runtime.cli` — the ``python -m repro`` front-end.
"""

from repro.runtime.families import FAMILY_BUILDERS, GraphSpec, resolve_graph
from repro.runtime.orchestrator import SweepOrchestrator, SweepReport, SweepTask
from repro.runtime.service import BoundAnswer, BoundQuery, BoundService
from repro.runtime.store import SpectrumStore, default_store_root

__all__ = [
    "FAMILY_BUILDERS",
    "GraphSpec",
    "resolve_graph",
    "SweepOrchestrator",
    "SweepReport",
    "SweepTask",
    "BoundAnswer",
    "BoundQuery",
    "BoundService",
    "SpectrumStore",
    "default_store_root",
]
