"""Named graph families and rehydratable graph references.

Pool workers and CLI invocations cannot receive a live
:class:`~repro.graphs.compgraph.ComputationGraph` — they get a
:class:`GraphSpec`, a tiny picklable/JSON-able description that is
rehydrated on the worker side:

* ``GraphSpec(family="fft", size_param=7)`` — rebuilt by the named
  generator from :data:`FAMILY_BUILDERS` (every deterministic
  single-integer-parameter generator in :mod:`repro.graphs.generators`);
* ``GraphSpec(path="graph.npz")`` — loaded from a CSR-native archive
  written by :func:`repro.graphs.io.save_graph_npz` (``.json`` files from
  :func:`~repro.graphs.io.save_graph` work too).

Rebuilding from a spec is cheap relative to an eigensolve and keeps the
inter-process payloads tiny, which is what makes the process-pool sweep
orchestrator practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    bellman_held_karp_graph,
    binary_tree_reduction_graph,
    chain_graph,
    diamond_graph,
    fft_graph,
    hypercube_graph,
    inner_product_graph,
    lu_factorization_graph,
    naive_matmul_graph,
    prefix_sum_graph,
    strassen_graph,
    triangular_solve_graph,
)
from repro.graphs.io import load_graph, load_graph_npz

__all__ = [
    "FAMILY_BUILDERS",
    "FAMILY_SIZE_ESTIMATORS",
    "GraphSpec",
    "estimate_num_vertices",
    "family_builder",
    "resolve_graph",
]

#: Deterministic generators keyed by the family name the CLI / specs use.
#: Every builder maps one integer size parameter to a computation graph.
FAMILY_BUILDERS: Dict[str, Callable[[int], ComputationGraph]] = {
    "fft": fft_graph,
    "hypercube": hypercube_graph,
    "bhk": bellman_held_karp_graph,
    "matmul": naive_matmul_graph,
    "strassen": strassen_graph,
    "inner-product": inner_product_graph,
    "chain": chain_graph,
    "binary-tree": binary_tree_reduction_graph,
    "diamond": diamond_graph,
    "prefix-sum": prefix_sum_graph,
    "lu": lu_factorization_graph,
    "triangular-solve": triangular_solve_graph,
}


#: Cheap vertex-count estimators, keyed like :data:`FAMILY_BUILDERS`.  Used
#: by the sweep orchestrator to schedule solve tasks largest-first *without*
#: building any graph in the parent process; estimates only need to order
#: tasks correctly, not be exact (most of these happen to be exact anyway).
FAMILY_SIZE_ESTIMATORS: Dict[str, Callable[[int], int]] = {
    "fft": lambda l: (l + 1) * (1 << l),
    "hypercube": lambda d: 1 << d,
    "bhk": lambda l: 1 << l,
    "matmul": lambda n: 2 * n**3 + n**2,
    "strassen": lambda n: max(1, int(4.2 * n ** (np.log2(7)))),
    "inner-product": lambda n: 4 * n - 1,
    "chain": lambda n: n,
    "binary-tree": lambda n: 2 * n - 1,
    "diamond": lambda n: n + 2,
    "prefix-sum": lambda n: 2 * n - 1,
    "lu": lambda n: max(1, (2 * n**3 + 3 * n**2 + n) // 6 + n),
    "triangular-solve": lambda n: max(1, n * (n + 2) - n // 2),
}


def estimate_num_vertices(family: Optional[str], size_param: Optional[int]) -> int:
    """Cheap vertex-count estimate for a (family, size) pair.

    Unknown families fall back to a monotone function of the size parameter
    (still orders a same-family sweep correctly); missing parameters give 0
    (scheduled last).
    """
    if size_param is None:
        return 0
    estimator = FAMILY_SIZE_ESTIMATORS.get(family or "")
    if estimator is not None:
        try:
            return max(0, int(estimator(int(size_param))))
        except (ValueError, OverflowError):
            return 0
    return max(0, int(size_param))


def family_builder(name: str) -> Callable[[int], ComputationGraph]:
    """The generator registered under ``name`` (raises on unknown names)."""
    try:
        return FAMILY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(FAMILY_BUILDERS))
        raise ValueError(f"unknown graph family {name!r}; known families: {known}")


@dataclass(frozen=True)
class GraphSpec:
    """A rehydratable reference to a computation graph.

    Exactly one of (``family`` + ``size_param``) or ``path`` must be set.
    """

    family: Optional[str] = None
    size_param: Optional[int] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        from_family = self.family is not None
        from_path = self.path is not None
        if from_family == from_path:
            raise ValueError(
                "GraphSpec needs either (family, size_param) or path, not both/neither"
            )
        if from_family and self.size_param is None:
            raise ValueError(f"family {self.family!r} spec needs a size_param")

    def describe(self) -> str:
        """Short human-readable name (used in result rows and answers)."""
        if self.family is not None:
            return f"{self.family}:{self.size_param}"
        return Path(str(self.path)).name

    def build(self) -> ComputationGraph:
        """Rehydrate the referenced graph."""
        if self.family is not None:
            return family_builder(self.family)(int(self.size_param))
        path = Path(str(self.path))
        if path.suffix == ".npz":
            return load_graph_npz(path)
        return load_graph(path)

    def estimate_num_vertices(self) -> int:
        """Cheap vertex-count estimate (for largest-first scheduling).

        Family specs use :data:`FAMILY_SIZE_ESTIMATORS`; ``.npz`` specs read
        the ``num_vertices`` scalar from the archive (member access is lazy,
        so the edge array is never decompressed); other paths fall back to
        the file size as an ordering proxy.  Never raises — a broken path is
        estimated as 0 and fails later, on the worker, with a real error.
        """
        if self.family is not None:
            return estimate_num_vertices(self.family, self.size_param)
        path = Path(str(self.path))
        if path.suffix == ".npz":
            try:
                with np.load(path, allow_pickle=False) as data:
                    return int(data["num_vertices"])
            except Exception:
                return 0
        try:
            return int(path.stat().st_size)
        except OSError:
            return 0


def resolve_graph(ref) -> ComputationGraph:
    """Turn a graph reference into a graph.

    Accepts a live :class:`ComputationGraph` (returned as-is), a
    :class:`GraphSpec`, or a path string ending in ``.npz``/``.json``.
    """
    if isinstance(ref, ComputationGraph):
        return ref
    if isinstance(ref, GraphSpec):
        return ref.build()
    if isinstance(ref, (str, Path)):
        return GraphSpec(path=str(ref)).build()
    raise TypeError(f"cannot resolve a graph from {type(ref).__name__}")
