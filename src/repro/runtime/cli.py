"""``python -m repro`` — batch bounds from the command line.

Four subcommands expose the runtime subsystem without writing any Python:

* ``solve`` — evaluate the spectral bound for one graph at one or more
  memory sizes (optionally the Theorem 6 parallel bound via ``-p``);
* ``sweep`` — run a family sweep (the paper's figure workloads) across
  optional worker processes, printing the row table and a summary (the
  ``--json`` payload also carries per solve-task backend/dtype/solve-time
  records, so scheduling and backend choices are observable);
* ``cache`` — inspect (``stats``, ``list``), integrity-check (``verify
  [--fix]``) or reset (``clear``, optionally filtered by ``--family`` /
  ``--fingerprint``) the persistent spectrum store;
* ``serve`` — expose the same :class:`~repro.runtime.service.BoundService`
  over HTTP (the :mod:`repro.server` subsystem: versioned ``/v1`` JSON
  batch queries, Prometheus ``/metrics``, admission control and in-flight
  coalescing).  Against a pre-warmed ``--store`` the whole HTTP path
  answers without a single eigensolve or max-flow call, which the CI serve
  smoke asserts via ``repro_eigensolves_total`` / ``repro_flow_calls_total``.
  ``--workers N`` (or ``$REPRO_SERVE_WORKERS``) boots a pre-forked sharded
  fleet instead: N shared-nothing worker processes over the same store,
  shard-routed by consistent hashing on the graph identity, with
  cross-process solve coalescing via store leases (``--lease-ttl`` /
  ``$REPRO_LEASE_TTL_SECONDS``);
* ``obs`` — observability utilities over :mod:`repro.obs`: ``obs report
  trace.jsonl`` renders a trace (written via ``--trace`` on ``solve`` /
  ``sweep`` / ``serve``) as a top-down span tree plus a self-time table
  (``--json`` for the same as machine-readable data), and ``obs perf
  check`` / ``obs perf report`` run the performance-regression sentinel
  over the ``BENCH_HISTORY.jsonl`` ledger the benchmark harness appends
  to (see :mod:`repro.obs.perf`: counters compare exactly, wall-clock is
  threshold-gated and disabled by ``REPRO_BENCH_TIMING_ASSERT=0``).

``--trace PATH`` on ``solve``, ``sweep`` and ``serve`` enables span-based
tracing for the invocation and writes one JSON span per line to PATH;
sweeps running with worker processes propagate the trace context into each
task and fold the workers' span shards back into the same file.  Setting
``REPRO_PROFILE=1`` additionally cProfiles each sweep task into
``PATH.profile-<task>-<pid>.pstats``.

``solve`` and ``sweep`` take ``--solver`` (``auto``/``dense``/``sparse``/
``lanczos``/``power``/``lobpcg``/``amg``) and ``--dtype``
(``float64``/``float32``) to pick the spectral backend; every cache tier
keys on both, so variants coexist.  ``auto`` routes large graphs to the
AMG-preconditioned LOBPCG backend, and ``$REPRO_SOLVER_BACKEND`` forces a
backend id for every ``auto`` solve (mirroring ``$REPRO_MINCUT_BACKEND``)
without touching scripts — it applies to ``solve``, ``sweep`` and ``serve``
alike.  ``--method spectral-coarse`` (``sweep --methods spectral-coarse``)
computes a *certified interval* bound from an interlacing-coarsened
eigensolve: the reported bound is the provably-safe lower end.  ``--mincut-backend`` (``auto``/``dinic``/``array-dinic``/
``scipy``) picks the max-flow backend of the convex min-cut baseline
(``sweep --methods convex-min-cut`` / ``solve --method convex-min-cut``);
cut values are exact, so all backends share one fingerprint-keyed cut table
and a warm re-run performs zero max-flow calls (``num_flow_calls`` in the
``sweep --json`` payload, ``cuts.flows_recorded`` in ``cache stats``).

All subcommands share one persistent :class:`~repro.runtime.store
.SpectrumStore` (``--store DIR``, ``$REPRO_SPECTRUM_STORE``, or
``~/.cache/repro/spectra`` in that order; ``--no-store`` disables
persistence), so a sweep run twice against the same store performs zero
eigensolves the second time — which is exactly what the CI smoke test
asserts using the ``num_eigensolves`` field of ``sweep --json`` output and
the ``solves_recorded`` counter of ``cache stats``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.analysis.reporting import format_table
from repro.baselines.flow_backends import available_flow_backends
from repro.runtime.families import FAMILY_BUILDERS, GraphSpec
from repro.runtime.orchestrator import SweepOrchestrator
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import CutStore, SpectrumStore, default_store_root
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.backends import available_backends

__all__ = ["main", "build_parser"]


def _store_from_args(args: argparse.Namespace) -> Optional[SpectrumStore]:
    if getattr(args, "no_store", False):
        return None
    root = args.store if args.store is not None else default_store_root()
    return SpectrumStore(root, lease_ttl=getattr(args, "lease_ttl", None))


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="spectrum store directory (default: $REPRO_SPECTRUM_STORE or "
        "~/.cache/repro/spectra)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent spectrum store for this invocation",
    )


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver",
        choices=("auto",) + available_backends(),
        default="auto",
        help="spectral backend (default: auto = dense / sparse / amg by size; "
        "$REPRO_SOLVER_BACKEND forces a backend for auto solves)",
    )
    parser.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default="float64",
        help="eigensolve precision (float32 trades ~1e-6 accuracy for speed)",
    )


def _eig_options_from_args(args: argparse.Namespace) -> Optional[EigenSolverOptions]:
    solver = getattr(args, "solver", "auto")
    dtype = getattr(args, "dtype", "float64")
    if solver == "auto" and dtype == "float64":
        return None
    return EigenSolverOptions(method=solver, dtype=dtype)


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSONL span trace to PATH (render it with "
        "'python -m repro obs report PATH'; REPRO_PROFILE=1 adds per-task "
        "cProfile dumps next to it)",
    )


def _add_mincut_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mincut-backend",
        choices=("auto",) + available_flow_backends(),
        default="auto",
        help="max-flow backend for the convex min-cut baseline "
        "(default: auto = scipy when available; dinic forces the "
        "pure-Python reference)",
    )


def _mincut_backend_from_args(args: argparse.Namespace) -> Optional[str]:
    backend = getattr(args, "mincut_backend", "auto")
    return None if backend == "auto" else backend


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        choices=sorted(FAMILY_BUILDERS),
        help="named graph family (generator)",
    )
    parser.add_argument("--size", type=int, help="family size parameter")
    parser.add_argument(
        "--graph", type=Path, help="path to a saved graph (.npz or .json)"
    )


def _graph_spec_from_args(args: argparse.Namespace) -> GraphSpec:
    if args.graph is not None:
        if args.family is not None:
            raise SystemExit("error: pass either --family/--size or --graph, not both")
        return GraphSpec(path=str(args.graph))
    if args.family is None or args.size is None:
        raise SystemExit("error: pass --family NAME --size N, or --graph PATH")
    return GraphSpec(family=args.family, size_param=args.size)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spectral I/O lower bounds: batch solver, family sweeps, "
        "and persistent spectrum cache management.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="bound one graph at given memory sizes")
    _add_graph_arguments(solve)
    solve.add_argument(
        "--memory-sizes",
        "-M",
        type=int,
        nargs="+",
        required=True,
        help="fast-memory sizes M to evaluate",
    )
    solve.add_argument(
        "--processors", "-p", type=int, default=1, help="processor count (Theorem 6)"
    )
    solve.add_argument(
        "--unnormalized",
        action="store_true",
        help="use the unnormalized Laplacian bound (Theorem 5)",
    )
    solve.add_argument(
        "--method",
        choices=["spectral", "spectral-coarse", "convex-min-cut"],
        default="spectral",
        help="bound method (spectral-coarse = certified interval from an "
        "interlacing-coarsened eigensolve; convex-min-cut = the Elango et "
        "al. baseline)",
    )
    solve.add_argument(
        "--num-eigenvalues", type=int, default=100, help="eigenvalue truncation h"
    )
    solve.add_argument("--json", action="store_true", help="print JSON instead of a table")
    _add_solver_arguments(solve)
    _add_mincut_arguments(solve)
    _add_store_arguments(solve)
    _add_trace_argument(solve)

    sweep = sub.add_parser("sweep", help="sweep a graph family (figure workloads)")
    sweep.add_argument(
        "--family",
        required=True,
        choices=sorted(FAMILY_BUILDERS),
        help="graph family to sweep",
    )
    sweep.add_argument(
        "--sizes", type=int, nargs="+", required=True, help="family size parameters"
    )
    sweep.add_argument(
        "--memory-sizes", "-M", type=int, nargs="+", required=True, help="memory sizes M"
    )
    sweep.add_argument(
        "--methods",
        nargs="+",
        default=["spectral"],
        choices=[
            "spectral",
            "spectral-unnormalized",
            "spectral-coarse",
            "convex-min-cut",
        ],
        help="bound methods to evaluate",
    )
    sweep.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU)",
    )
    sweep.add_argument(
        "--num-eigenvalues", type=int, default=100, help="eigenvalue truncation h"
    )
    sweep.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write rows + summary as JSON ('-' for stdout)",
    )
    _add_solver_arguments(sweep)
    _add_mincut_arguments(sweep)
    _add_store_arguments(sweep)
    _add_trace_argument(sweep)

    serve = sub.add_parser("serve", help="serve bounds over HTTP (repro.server)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--num-eigenvalues", type=int, default=100, help="eigenvalue truncation h"
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=4,
        help="solve batches allowed to run concurrently",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="solve batches allowed to wait for a slot before 429s start",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint attached to 429 responses",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable in-flight coalescing of identical queries",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes; >1 boots a pre-forked sharded fleet "
        "(default: $REPRO_SERVE_WORKERS or 1)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="solve-lease heartbeat ttl for cross-process coalescing "
        "(default: $REPRO_LEASE_TTL_SECONDS or 30; 0 disables leasing)",
    )
    _add_solver_arguments(serve)
    _add_mincut_arguments(serve)
    _add_store_arguments(serve)
    _add_trace_argument(serve)

    obs_cmd = sub.add_parser(
        "obs", help="observability utilities (render traces, perf sentinel)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a --trace JSONL file (span tree + self times)"
    )
    obs_report.add_argument(
        "trace_file", type=Path, metavar="TRACE", help="trace JSONL file to render"
    )
    obs_report.add_argument(
        "--json",
        action="store_true",
        help="emit the span tree and self-time table as JSON instead of text",
    )
    obs_perf = obs_sub.add_parser(
        "perf",
        help="benchmark-history sentinel: check for regressions / report the trajectory",
    )
    obs_perf.add_argument(
        "action",
        choices=["check", "report"],
        help="check: exit non-zero on regressions; report: render the trajectory",
    )
    obs_perf.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="PATH",
        help="history ledger (default: ./BENCH_HISTORY.jsonl)",
    )
    obs_perf.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="K",
        help="baseline = median of the last K same-environment runs "
        "(default: $REPRO_PERF_WINDOW or 5)",
    )
    obs_perf.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="wall-clock/throughput tolerance, e.g. 0.25 = ±25%% "
        "(default: $REPRO_PERF_THRESHOLD or 0.25)",
    )

    cache = sub.add_parser("cache", help="inspect/verify/reset the persistent spectrum store")
    cache.add_argument(
        "action",
        choices=["stats", "list", "clear", "verify"],
        help="what to do with the store",
    )
    cache.add_argument(
        "--family",
        default=None,
        metavar="NAME",
        help="clear: only remove entries recorded under this family lineage",
    )
    cache.add_argument(
        "--fingerprint",
        default=None,
        metavar="PREFIX",
        help="clear: only remove entries whose graph fingerprint starts with PREFIX",
    )
    cache.add_argument(
        "--fix",
        action="store_true",
        help="verify: drop corrupt/missing index entries and delete orphaned blobs",
    )
    _add_store_arguments(cache)

    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    spec = _graph_spec_from_args(args)
    service = BoundService(
        store=_store_from_args(args),
        num_eigenvalues=args.num_eigenvalues,
        eig_options=_eig_options_from_args(args),
        mincut_backend=_mincut_backend_from_args(args),
    )
    normalization = "unnormalized" if args.unnormalized else "normalized"
    queries = [
        BoundQuery(
            graph=spec,
            memory_size=M,
            num_processors=args.processors,
            normalization=normalization,
            method=args.method,
        )
        for M in args.memory_sizes
    ]
    answers = service.submit(queries)
    if args.json:
        print(json.dumps([a.as_dict() for a in answers], indent=2))
    else:
        print(format_table(answers, float_format=".3f"))
        stats = service.stats()
        print(
            f"[eigensolves: {stats['cache_misses']}, memory hits: "
            f"{stats['cache_hits'] - stats['store_hits']}, store hits: "
            f"{stats['store_hits']}, flow calls: {stats['flow_calls']}]"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    orchestrator = SweepOrchestrator(
        store=store,
        processes=args.processes if args.processes > 0 else None,
        num_eigenvalues=args.num_eigenvalues,
        eig_options=_eig_options_from_args(args),
        mincut_backend=_mincut_backend_from_args(args),
    )
    report = orchestrator.run_family(
        args.family, None, args.sizes, args.memory_sizes, methods=tuple(args.methods)
    )
    print(format_table(report.rows, title=f"== sweep: {args.family} =="))
    summary = report.summary()
    print(
        f"[{summary['num_rows']} rows, {summary['num_eigensolves']} eigensolves, "
        f"{summary['num_flow_calls']} flow calls, "
        f"{summary['elapsed_seconds']}s, processes={summary['processes']}, "
        f"store={summary['store_root'] or 'disabled'}]"
    )
    if args.json is not None:
        payload = dict(summary)
        payload["rows"] = [row.as_dict() for row in report.rows]
        payload["tasks"] = [record.as_dict() for record in report.tasks]
        text = json.dumps(payload, indent=2)
        if str(args.json) == "-":
            print(text)
        else:
            args.json.write_text(text + "\n")
    return 0


def build_server_from_args(args: argparse.Namespace):
    """Construct the :class:`~repro.server.runner.BoundServer` ``serve`` runs.

    Factored out of :func:`_cmd_serve` so tests can boot the exact CLI
    server wiring on an ephemeral port without blocking in
    ``serve_forever``.  Imported lazily: the other subcommands must not pay
    for (or depend on) the serving stack.
    """
    from repro.server.runner import BoundServer

    service = BoundService(
        store=_store_from_args(args),
        num_eigenvalues=args.num_eigenvalues,
        eig_options=_eig_options_from_args(args),
        mincut_backend=_mincut_backend_from_args(args),
    )
    return BoundServer(
        service,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        retry_after_seconds=args.retry_after,
        coalesce=not args.no_coalesce,
    )


def _serve_workers(args: argparse.Namespace) -> int:
    if args.workers is not None:
        return max(1, int(args.workers))
    import os

    from repro.server.runner import SERVE_WORKERS_ENV_VAR

    raw = os.environ.get(SERVE_WORKERS_ENV_VAR)
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def build_fleet_from_args(args: argparse.Namespace, workers: int):
    """Construct the :class:`~repro.server.runner.ServerFleet` for ``--workers N``.

    Like :func:`build_server_from_args`, factored out (and lazily
    importing) so tests can boot the exact CLI fleet wiring on ephemeral
    ports without blocking in ``serve_forever``.  The fleet does not take
    a live service: each forked worker builds its own from the config.
    """
    from repro.server.runner import FleetConfig, ServerFleet

    if getattr(args, "no_store", False):
        store_root = None
    else:
        root = args.store if args.store is not None else default_store_root()
        store_root = str(root)
    trace_path = getattr(args, "trace", None)
    config = FleetConfig(
        store_root=store_root,
        num_eigenvalues=args.num_eigenvalues,
        eig_options=_eig_options_from_args(args),
        mincut_backend=_mincut_backend_from_args(args),
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        retry_after_seconds=args.retry_after,
        coalesce=not args.no_coalesce,
        lease_ttl=getattr(args, "lease_ttl", None),
        trace_path=str(trace_path) if trace_path is not None else None,
    )
    return ServerFleet(config, host=args.host, port=args.port, workers=workers)


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    # CI (and any sane supervisor) stops the server with SIGTERM; route it
    # through the same KeyboardInterrupt path as ^C so the fleet/server is
    # drained and reaped instead of orphaning forked workers.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    workers = _serve_workers(args)
    if workers > 1:
        fleet = build_fleet_from_args(args, workers)
        fleet.start()
        store_label = fleet.config.store_root or "disabled"
        print(
            f"serving bounds on {fleet.url} with {workers} workers "
            f"(store: {store_label})"
        )
        for worker_id, url in enumerate(fleet.worker_urls):
            print(f"  worker {worker_id}: {url}")
        print("endpoints: POST /v1/bounds  GET /v1/stats  GET /healthz  GET /metrics")
        try:
            fleet.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            fleet.close()
        return 0
    server = build_server_from_args(args)
    store = server.service.store
    # `is not None`, not truthiness: an empty SpectrumStore has len() == 0.
    store_label = store.root if store is not None else "disabled"
    print(f"serving bounds on {server.url} (store: {store_label})")
    print("endpoints: POST /v1/bounds  GET /v1/stats  GET /healthz  GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "perf":
        return _cmd_obs_perf(args)
    from repro.obs.report import render_report, report_as_json

    try:
        spans = obs.load_spans(str(args.trace_file))
    except FileNotFoundError:
        raise SystemExit(f"error: no such trace file: {args.trace_file}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {args.trace_file} is not valid JSONL: {exc}")
    if args.json:
        print(json.dumps(report_as_json(spans), indent=2))
    else:
        print(render_report(spans), end="")
    return 0


def _cmd_obs_perf(args: argparse.Namespace) -> int:
    from repro.obs import perf

    history_path = args.history if args.history is not None else perf.default_history_path()
    history = perf.load_history(history_path)
    if args.action == "report":
        print(perf.render_trajectory(history), end="")
        return 0
    if not history:
        print(
            f"error: no benchmark history at {history_path}; run "
            f"'python -m pytest benchmarks/' first (it appends to the ledger)",
            file=sys.stderr,
        )
        return 1
    result = perf.check(history, window=args.window, threshold=args.threshold)
    print(result.render(), end="")
    return 0 if result.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    if store is None:
        raise SystemExit("error: cache management needs a store (drop --no-store)")
    cut_store = CutStore(store.root)
    if args.action == "stats":
        stats = store.stats()
        stats["cuts"] = cut_store.stats()
        print(json.dumps(stats, indent=2))
    elif args.action == "list":
        entries = store.entries()
        print(format_table(entries, title=f"== spectrum store: {store.root} =="))
        cut_entries = cut_store.entries()
        if cut_entries:
            print(format_table(cut_entries, title=f"== cut store: {store.root} =="))
    elif args.action == "verify":
        report = store.verify(fix=args.fix)
        report["cuts"] = cut_store.verify(fix=args.fix)
        report["ok"] = bool(report["ok"] and report["cuts"]["ok"])
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] or args.fix else 1
    else:  # clear
        removed = store.clear(
            lineage=args.family, fingerprint_prefix=args.fingerprint
        )
        removed += cut_store.clear(
            lineage=args.family, fingerprint_prefix=args.fingerprint
        )
        print(f"removed {removed} entries from {store.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    handlers = {
        "solve": _cmd_solve,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
    }
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return handlers[args.command](args)
    obs.configure(str(trace_path))
    try:
        return handlers[args.command](args)
    finally:
        obs.disable()  # flush + close the JSONL sink


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
