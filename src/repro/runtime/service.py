"""Long-running batch bound service over a warm spectrum store.

:class:`BoundService` is the serving layer of the runtime subsystem: a
process holds one service instance for its lifetime, and clients submit
*batches* of ``(graph-ref, M, p, normalization)`` queries.  The service keeps
a small LRU of :class:`~repro.core.engine.BoundEngine` instances (one per
distinct graph reference) over a single shared
:class:`~repro.solvers.spectrum_cache.SpectrumCache`, optionally backed by a
persistent :class:`~repro.runtime.store.SpectrumStore` — so against a warm
store the service answers whole batches without a single eigensolve, and a
cold graph pays its eigensolve exactly once for every future query on it.

The CLI's ``solve`` subcommand is a thin wrapper over one service call, and
the :mod:`repro.server` subsystem is exactly the promised HTTP front-end: it
JSON-decodes requests into :class:`BoundQuery` objects and calls
:meth:`BoundService.submit` (``python -m repro serve``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.baselines.convex_mincut import MinCutEngine
from repro.core.engine import BoundEngine
from repro.graphs.compgraph import ComputationGraph
from repro.runtime.families import GraphSpec
from repro.runtime.store import CutStore, SpectrumStore
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache

__all__ = [
    "BoundQuery",
    "BoundAnswer",
    "BoundService",
    "KNOWN_METHODS",
    "KNOWN_NORMALIZATIONS",
]

GraphRef = Union[GraphSpec, ComputationGraph, str]

#: Accepted spellings of the two normalisations (Theorem 4 vs Theorem 5).
_NORMALIZATIONS = {
    "normalized": True,
    "spectral": True,
    "unnormalized": False,
    "spectral-unnormalized": False,
}

#: The closed vocabularies of :class:`BoundQuery` — the HTTP protocol
#: validates against these *before* anything client-supplied can reach a
#: metrics label (unbounded label values would grow /metrics forever).
KNOWN_NORMALIZATIONS = frozenset(_NORMALIZATIONS)
KNOWN_METHODS = frozenset({"spectral", "spectral-coarse", "convex-min-cut"})


@dataclass(frozen=True)
class BoundQuery:
    """One bound request.

    ``graph`` may be a :class:`GraphSpec`, a path to a saved graph
    (``.npz``/``.json``), or a live :class:`ComputationGraph`.
    ``method="convex-min-cut"`` routes to the baseline (``normalization``
    and ``num_processors`` are then ignored); ``method="spectral-coarse"``
    answers with a certified bound *interval* from an interlacing-coarsened
    eigensolve (``bound`` is then the safe lower end, and ``bound_lo`` /
    ``bound_hi`` are populated); the default ``"spectral"`` keeps the
    Theorem 4/5/6 behaviour selected by ``normalization``.
    """

    graph: GraphRef
    memory_size: int
    num_processors: int = 1
    normalization: str = "normalized"
    k: Optional[int] = None
    method: str = "spectral"


@dataclass(frozen=True)
class BoundAnswer:
    """The structured result of one :class:`BoundQuery`.

    ``bound_lo``/``bound_hi`` are populated only for ``spectral-coarse``
    queries; ``bound`` then equals ``bound_lo``, the certified-safe end of
    the interval, so consumers that only read ``bound`` keep a valid lower
    bound regardless of the method.

    ``trace_id`` links the answer to the query span that produced it when
    tracing is enabled.  ``served_by_trace_id`` marks coalesced followers:
    the answer was computed once by a leader request (whose trace id this
    is) and fanned out, so the follower's ``eig_elapsed_seconds`` is
    reported as 0.0 — the solve time is counted once, on the leader.
    """

    graph: str
    memory_size: int
    num_processors: int
    normalization: str
    bound: float
    raw_value: float
    best_k: Optional[int]
    num_vertices: int
    elapsed_seconds: float
    eig_elapsed_seconds: float
    bound_lo: Optional[float] = None
    bound_hi: Optional[float] = None
    trace_id: Optional[str] = None
    served_by_trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class BoundService:
    """Serve batches of spectral bound queries against shared warm caches.

    Parameters
    ----------
    store:
        Persistent spectrum store (instance, root path, or ``None``).
    num_eigenvalues:
        Default ``h`` truncation for every engine the service builds.
    max_engines:
        LRU budget of per-graph engines kept alive between batches.
    eig_options:
        Solver options forwarded to every engine.
    mincut_backend:
        Max-flow backend id for ``method="convex-min-cut"`` queries
        (``None`` = auto).
    """

    def __init__(
        self,
        store: Union[SpectrumStore, str, Path, None] = None,
        num_eigenvalues: int = 100,
        max_engines: int = 64,
        eig_options: Optional[EigenSolverOptions] = None,
        mincut_backend: Optional[str] = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = SpectrumStore(store)
        if max_engines < 1:
            raise ValueError(f"max_engines must be positive, got {max_engines}")
        self._cache = SpectrumCache(max_entries=max(128, 4 * max_engines), store=store)
        self._cut_store = CutStore(store.root) if store is not None else None
        self._num_eigenvalues = int(num_eigenvalues)
        self._eig_options = eig_options
        self._mincut_backend = mincut_backend
        self._max_engines = int(max_engines)
        self._engines: "OrderedDict[object, BoundEngine]" = OrderedDict()
        self._mincut_engines: "OrderedDict[object, MinCutEngine]" = OrderedDict()
        self._lock = threading.Lock()
        self._queries_served = 0
        self._deduped = 0
        # Cumulative across the service lifetime — engines evicted from the
        # LRU must not take their flow-call history with them.
        self._flow_calls = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> SpectrumCache:
        return self._cache

    @property
    def store(self) -> Optional[SpectrumStore]:
        return self._cache.store

    def counters(self) -> Dict[str, int]:
        """The in-memory counters alone — cheap enough for every ``/metrics``
        scrape (:meth:`stats` additionally reads the on-disk store indexes).
        """
        return {
            "queries_served": self._queries_served,
            "deduped": self._deduped,
            "engines_cached": len(self._engines),
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
            "store_hits": self._cache.store_hits,
            "lease_leaders": self._cache.lease_leaders,
            "lease_followers": self._cache.lease_followers,
            "mincut_engines_cached": len(self._mincut_engines),
            "flow_calls": self._flow_calls,
        }

    def stats(self) -> Dict[str, object]:
        """Service counters plus the cache/store tiers' statistics."""
        stats: Dict[str, object] = dict(self.counters())
        if self.store is not None:
            stats["store"] = self.store.stats()
        if self._cut_store is not None:
            stats["cut_store"] = self._cut_store.stats()
        return stats

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def submit(self, queries: Sequence[BoundQuery]) -> List[BoundAnswer]:
        """Answer a batch of queries, in input order.

        Identical queries within one batch are solved once and the answer is
        fanned out to every duplicate position (the ``deduped`` counter in
        :meth:`stats` tallies the positions served for free).  Queries on
        the same graph reference share one engine (and therefore one
        eigensolve per normalisation at most); across batches, engines and
        spectra persist in the service's caches.  Batches from multiple
        threads run concurrently — the service lock only guards the engine
        registry, never the bound evaluations themselves (the spectrum cache
        has its own lock), so one client's cold eigensolve does not stall
        another client's warm batch.
        """
        answers: List[BoundAnswer] = []
        first_seen: Dict[BoundQuery, int] = {}
        deduped = 0
        for index, query in enumerate(queries):
            original = first_seen.setdefault(query, index)
            if original == index:
                answers.append(self._answer(query))
            else:
                answers.append(answers[original])
                deduped += 1
        with self._lock:
            self._queries_served += len(queries)
            self._deduped += deduped
        return answers

    def solve(self, query: BoundQuery) -> BoundAnswer:
        """Convenience wrapper: a batch of one."""
        return self.submit([query])[0]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _answer(self, query: BoundQuery) -> BoundAnswer:
        with obs.span(
            "query",
            method=query.method,
            memory_size=int(query.memory_size),
            normalization=query.normalization,
        ) as active:
            answer = self._answer_inner(query)
        if active.trace_id is not None:
            answer = dataclasses.replace(answer, trace_id=active.trace_id)
        return answer

    def _answer_inner(self, query: BoundQuery) -> BoundAnswer:
        if query.method == "convex-min-cut":
            return self._answer_mincut(query)
        if query.method not in ("spectral", "spectral-coarse"):
            raise ValueError(
                f"unknown method {query.method!r}; expected one of "
                f"{sorted(KNOWN_METHODS)}"
            )
        try:
            normalized = _NORMALIZATIONS[query.normalization]
        except KeyError:
            raise ValueError(
                f"unknown normalization {query.normalization!r}; expected one of "
                f"{sorted(_NORMALIZATIONS)}"
            )
        engine, description = self._engine_for(query.graph)
        start = time.perf_counter()
        if query.method == "spectral-coarse":
            interval = engine.spectral_interval(
                query.memory_size,
                k=query.k,
                normalized=normalized,
                num_processors=int(query.num_processors),
            )
            return BoundAnswer(
                graph=description,
                memory_size=int(query.memory_size),
                num_processors=int(query.num_processors),
                normalization="normalized" if normalized else "unnormalized",
                bound=interval.value,
                raw_value=interval.raw_value_lo,
                best_k=interval.best_k,
                num_vertices=interval.num_vertices,
                elapsed_seconds=time.perf_counter() - start,
                eig_elapsed_seconds=interval.eig_elapsed_seconds,
                bound_lo=interval.value_lo,
                bound_hi=interval.value_hi,
            )
        if int(query.num_processors) == 1:
            if normalized:
                result = engine.spectral(query.memory_size, k=query.k)
            else:
                result = engine.unnormalized(query.memory_size, k=query.k)
        else:
            result = engine.parallel(
                query.memory_size,
                int(query.num_processors),
                k=query.k,
                normalized=normalized,
            )
        return BoundAnswer(
            graph=description,
            memory_size=int(query.memory_size),
            num_processors=int(query.num_processors),
            normalization="normalized" if normalized else "unnormalized",
            bound=result.value,
            raw_value=result.raw_value,
            best_k=result.best_k,
            num_vertices=result.num_vertices,
            elapsed_seconds=time.perf_counter() - start,
            eig_elapsed_seconds=result.eig_elapsed_seconds,
        )

    def _answer_mincut(self, query: BoundQuery) -> BoundAnswer:
        """Serve one convex min-cut query through a (cached) MinCutEngine."""
        engine, description = self._mincut_engine_for(query.graph)
        start = time.perf_counter()
        flows_before = engine.flow_calls
        best_cut, _ = engine.max_cut()
        with self._lock:
            self._flow_calls += engine.flow_calls - flows_before
        bound = max(0.0, 2.0 * (best_cut - int(query.memory_size)))
        return BoundAnswer(
            graph=description,
            memory_size=int(query.memory_size),
            num_processors=1,
            normalization="-",
            bound=bound,
            raw_value=2.0 * (best_cut - int(query.memory_size)),
            best_k=None,
            num_vertices=engine.graph.num_vertices,
            elapsed_seconds=time.perf_counter() - start,
            eig_elapsed_seconds=0.0,
        )

    @staticmethod
    def _ref_key(ref: GraphRef):
        """The LRU key and display name of a graph reference."""
        if isinstance(ref, ComputationGraph):
            return id(ref), f"graph:{ref.fingerprint()[:12]}"
        if isinstance(ref, GraphSpec):
            return ref, ref.describe()
        if isinstance(ref, str):
            return ref, GraphSpec(path=ref).describe()
        raise TypeError(f"cannot serve a graph of type {type(ref).__name__}")

    def _mincut_engine_for(self, ref: GraphRef):
        """The (LRU-cached) convex min-cut engine for a graph reference.

        Mirrors :meth:`_engine_for`; the engine's in-memory cut table (and
        the shared persistent :class:`CutStore`) make repeat queries on the
        same graph flow-free regardless of the memory size asked about.
        """
        key, description = self._ref_key(ref)
        with self._lock:
            engine = self._mincut_engines.get(key)
            if engine is not None:
                self._mincut_engines.move_to_end(key)
                return engine, description
        graph = ref if isinstance(ref, ComputationGraph) else (
            ref.build() if isinstance(ref, GraphSpec) else GraphSpec(path=ref).build()
        )
        lineage = ref.family if isinstance(ref, GraphSpec) else None
        engine = MinCutEngine(
            graph,
            backend=self._mincut_backend,
            store=self._cut_store,
            lineage=lineage,
        )
        with self._lock:
            existing = self._mincut_engines.get(key)
            if existing is not None:
                engine = existing
            else:
                self._mincut_engines[key] = engine
            self._mincut_engines.move_to_end(key)
            while len(self._mincut_engines) > self._max_engines:
                self._mincut_engines.popitem(last=False)
        return engine, description

    def _engine_for(self, ref: GraphRef):
        """The (LRU-cached) engine for a graph reference, plus its name."""
        key, description = self._ref_key(ref)
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine, description
        # Build outside the lock (rehydrating a spec can read disk); a racing
        # duplicate engine is harmless — both share the same spectrum cache.
        lineage = None
        if isinstance(ref, ComputationGraph):
            graph = ref
        elif isinstance(ref, GraphSpec):
            graph = ref.build()
            lineage = ref.family
        else:
            graph = GraphSpec(path=ref).build()
        engine = BoundEngine(
            graph,
            num_eigenvalues=self._num_eigenvalues,
            eig_options=self._eig_options,
            cache=self._cache,
            lineage=lineage,
        )
        with self._lock:
            existing = self._engines.get(key)
            if existing is not None:
                engine = existing
            else:
                self._engines[key] = engine
            self._engines.move_to_end(key)
            while len(self._engines) > self._max_engines:
                self._engines.popitem(last=False)
        return engine, description
