"""Convex min-cut baseline (Elango et al. [13], reconstructed).

The paper's only polynomial-time automatic competitor.  Its published
description (Section 6.3): for every vertex ``v`` the graph is transformed
into a flow problem whose minimum s–t cut ``C(v, G)`` lower-bounds the data
that must be simultaneously "live" when ``v`` is evaluated; the bound is

    J*_G  >=  max_v  max(0, 2 * (C(v, G) - M)),

optionally strengthened by partitioning the graph into small sub-graphs and
summing per-part maxima (the original uses METIS; we use the partitioners of
:mod:`repro.baselines.partitioner`).

Reconstruction.  ``C(v, G)`` is implemented as the minimum *wavefront* over
all convex schedule prefixes that have evaluated ``v``:

    C(v, G) = min over down-closed S ⊆ V with  anc(v) ∪ {v} ⊆ S  and
              desc(v) ∩ S = ∅  of  |{u ∈ S : ∃ (u, w) ∈ E, w ∉ S}|.

Any evaluation order must pass through such a prefix S right after computing
``v``; every boundary vertex of S holds a value that is already computed and
still needed, so at that moment at least ``C(v, G)`` values are live.  At most
``M`` of them can sit in fast memory; each of the remaining ones must be
written to slow memory and read back later — hence ``2 (C(v, G) - M)`` I/Os.
This matches the published behaviour of the baseline: it is linear in ``M``,
its runtime is one max-flow per vertex (``O(n^5)`` worst case, versus
``O(n^3)`` for the spectral method), it is looser than the spectral bound on
the butterfly/hypercube families, and it is trivial on naive matrix
multiplication (where small convex prefixes with tiny wavefronts exist around
every vertex).

The min-cut is computed on a vertex-split flow network (vertex capacity 1,
structural arcs of infinite capacity enforcing down-closure and the
"pay-once-per-boundary-vertex" accounting).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.baselines.maxflow import INFINITE_CAPACITY, MaxFlowSolver
from repro.baselines.partitioner import contiguous_topological_partition
from repro.core.result import BaselineBoundResult
from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_memory_size, check_positive_int

__all__ = [
    "convex_min_cut_value",
    "convex_min_cut_max_value",
    "convex_min_cut_bound",
    "partitioned_convex_min_cut_bound",
]


def convex_min_cut_value(graph: ComputationGraph, vertex: int) -> int:
    """The minimum wavefront ``C(v, G)`` of any convex prefix through ``vertex``.

    Returns 0 when ``vertex`` has no descendants (the prefix can then grow to
    the whole graph, whose wavefront is empty).
    """
    graph._check_vertex(vertex)  # noqa: SLF001 - cheap explicit validation
    descendants = graph.descendants(vertex)
    if not descendants:
        return 0
    ancestors = graph.ancestors(vertex)

    n = graph.num_vertices
    # Node layout: u_in = 2u, u_out = 2u + 1, source = 2n, sink = 2n + 1.
    source = 2 * n
    sink = 2 * n + 1
    solver = MaxFlowSolver(2 * n + 2)

    for u in range(n):
        solver.add_edge(2 * u, 2 * u + 1, 1)
    for u, w in graph.edges():
        # If some successor w leaves the prefix, u's unit edge must be cut.
        solver.add_edge(2 * u + 1, 2 * w, INFINITE_CAPACITY)
        # Down-closure: w inside the prefix forces u inside the prefix.
        solver.add_edge(2 * w, 2 * u, INFINITE_CAPACITY)
    for u in ancestors | {vertex}:
        solver.add_edge(source, 2 * u, INFINITE_CAPACITY)
    for u in descendants:
        solver.add_edge(2 * u, sink, INFINITE_CAPACITY)

    value = solver.max_flow(source, sink)
    if value >= INFINITE_CAPACITY:  # pragma: no cover - cannot happen on DAGs
        raise RuntimeError("convex min-cut reduction produced an unbounded cut")
    return int(value)


def convex_min_cut_max_value(
    graph: ComputationGraph, vertices: Optional[Iterable[int]] = None
) -> tuple[int, Optional[int]]:
    """``max_v C(v, G)`` over the requested vertices and its arg-max.

    The convex min-cut bound for any memory size is
    ``max(0, 2 * (max_v C(v, G) - M))``, so the expensive per-vertex max-flow
    computations only depend on the graph; sweeps over several ``M`` values
    call this once and derive the bounds arithmetically.
    """
    best_cut = 0
    best_vertex: Optional[int] = None
    candidates = list(vertices) if vertices is not None else list(graph.vertices())
    for v in candidates:
        cut = convex_min_cut_value(graph, v)
        if cut > best_cut or best_vertex is None:
            best_cut = cut
            best_vertex = v
    return best_cut, best_vertex


def convex_min_cut_bound(
    graph: ComputationGraph,
    M: int,
    vertices: Optional[Iterable[int]] = None,
) -> BaselineBoundResult:
    """Whole-graph convex min-cut lower bound
    ``max_v max(0, 2 (C(v, G) - M))`` (the variant plotted in Figures 7–10).

    Parameters
    ----------
    graph:
        Computation graph.
    M:
        Fast-memory size.
    vertices:
        Optional subset of vertices to maximise over (defaults to all);
        restricting the set is a valid — just possibly weaker — bound and is
        useful to keep the ``O(n)`` max-flow calls affordable on larger
        graphs.
    """
    check_memory_size(M)
    start = time.perf_counter()
    candidates = list(vertices) if vertices is not None else list(graph.vertices())
    best_cut, best_vertex = convex_min_cut_max_value(graph, candidates)
    best_value = max(0.0, 2.0 * (best_cut - M))
    elapsed = time.perf_counter() - start
    return BaselineBoundResult(
        value=best_value,
        method="convex-min-cut",
        num_vertices=graph.num_vertices,
        memory_size=M,
        witness_vertex=best_vertex,
        details={"max_cut_value": float(best_cut), "vertices_examined": float(len(candidates))},
        elapsed_seconds=elapsed,
    )


def partitioned_convex_min_cut_bound(
    graph: ComputationGraph,
    M: int,
    max_part_size: Optional[int] = None,
) -> BaselineBoundResult:
    """Partitioned variant: sum of per-part convex min-cut bounds.

    The original work suggests sub-graphs of at most ``2 M`` vertices; as the
    paper observes (§6.3), at that size the bound is trivial for the complex
    graphs evaluated here, which is why the whole-graph variant is the one
    plotted.  The partitioned variant is provided for completeness and used in
    the ablation benchmarks.
    """
    check_memory_size(M)
    if max_part_size is None:
        max_part_size = 2 * M
    check_positive_int(max_part_size, "max_part_size")
    start = time.perf_counter()
    total = 0.0
    per_part: Dict[int, float] = {}
    parts: List[List[int]] = contiguous_topological_partition(graph, max_part_size)
    for index, part in enumerate(parts):
        subgraph, _ = graph.subgraph(part)
        best = 0.0
        for v in subgraph.vertices():
            cut = convex_min_cut_value(subgraph, v)
            best = max(best, 2.0 * (cut - M))
        best = max(0.0, best)
        per_part[index] = best
        total += best
    elapsed = time.perf_counter() - start
    return BaselineBoundResult(
        value=total,
        method="convex-min-cut-partitioned",
        num_vertices=graph.num_vertices,
        memory_size=M,
        witness_vertex=None,
        details={"num_parts": float(len(parts)), "max_part_size": float(max_part_size)},
        elapsed_seconds=elapsed,
    )
