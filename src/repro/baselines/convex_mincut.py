"""Convex min-cut baseline (Elango et al. [13], reconstructed).

The paper's only polynomial-time automatic competitor.  Its published
description (Section 6.3): for every vertex ``v`` the graph is transformed
into a flow problem whose minimum s–t cut ``C(v, G)`` lower-bounds the data
that must be simultaneously "live" when ``v`` is evaluated; the bound is

    J*_G  >=  max_v  max(0, 2 * (C(v, G) - M)),

optionally strengthened by partitioning the graph into small sub-graphs and
summing per-part maxima (the original uses METIS; we use the partitioners of
:mod:`repro.baselines.partitioner`).

Reconstruction.  ``C(v, G)`` is implemented as the minimum *wavefront* over
all convex schedule prefixes that have evaluated ``v``:

    C(v, G) = min over down-closed S ⊆ V with  anc(v) ∪ {v} ⊆ S  and
              desc(v) ∩ S = ∅  of  |{u ∈ S : ∃ (u, w) ∈ E, w ∉ S}|.

Any evaluation order must pass through such a prefix S right after computing
``v``; every boundary vertex of S holds a value that is already computed and
still needed, so at that moment at least ``C(v, G)`` values are live.  At most
``M`` of them can sit in fast memory; each of the remaining ones must be
written to slow memory and read back later — hence ``2 (C(v, G) - M)`` I/Os.
This matches the published behaviour of the baseline: it is linear in ``M``,
it is looser than the spectral bound on the butterfly/hypercube families, and
it is trivial on naive matrix multiplication (where small convex prefixes
with tiny wavefronts exist around every vertex).

Execution model.  The min-cut is computed on a vertex-split flow network
(vertex capacity 1, structural arcs of infinite capacity enforcing
down-closure and the "pay-once-per-boundary-vertex" accounting), built *once*
per graph from the frozen CSR view (:class:`~repro.baselines.flownet
.ConvexCutNetwork`) and solved by a pluggable
:class:`~repro.baselines.flow_backends.MaxFlowBackend`.  :class:`MinCutEngine`
adds the two layers that make whole-paper sweeps cheap:

* **cut caching** — ``C(v, G)`` is independent of ``M`` and of the backend,
  so values live in an in-memory table and, optionally, a persistent
  :class:`~repro.runtime.store.CutStore` keyed by the graph fingerprint;
  a warm re-run performs zero max-flow calls;
* **upper-bound pruning** — candidates are visited best-upper-bound-first
  (the ``O(n + E)`` topological-prefix wavefront of
  :meth:`~repro.baselines.flownet.ConvexCutNetwork.prefix_upper_bounds`),
  and a vertex whose ceiling cannot beat the best cut found so far is
  skipped.  Pruning never changes ``max_v C(v, G)``: a skipped vertex
  satisfies ``C(v) <= ub(v) <= best``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.baselines.flow_backends import (
    MaxFlowBackend,
    create_flow_backend,
    resolve_flow_backend_id,
)
from repro.baselines.flownet import ConvexCutNetwork
from repro.baselines.partitioner import contiguous_topological_partition
from repro.core.result import BaselineBoundResult
from repro.graphs.compgraph import ComputationGraph
from repro.utils.validation import check_memory_size, check_positive_int

_MAXFLOW_SECONDS = obs.global_registry().histogram(
    "repro_maxflow_seconds",
    "Wall-clock latency of individual max-flow solves.",
    labelnames=("backend",),
)
_CUT_LOOKUPS = obs.global_registry().counter(
    "repro_cut_lookups_total",
    "Cut-value fetches by serving tier (memory/store hit vs fresh flow).",
    labelnames=("tier",),
)

__all__ = [
    "MinCutEngine",
    "convex_min_cut_value",
    "convex_min_cut_max_value",
    "convex_min_cut_bound",
    "partitioned_convex_min_cut_bound",
]


class MinCutEngine:
    """Per-graph convex min-cut evaluator with caching and pruning.

    Parameters
    ----------
    graph:
        The computation graph (frozen lazily on first use).
    backend:
        Max-flow backend id (``None``/``"auto"`` resolves via
        :func:`~repro.baselines.flow_backends.resolve_flow_backend_id`).
    store:
        Optional persistent :class:`~repro.runtime.store.CutStore`; known
        cut values are loaded once per engine and every newly computed value
        is published back (with the flow calls paid, for auditing).
    prune:
        Skip candidates whose cheap upper bound cannot beat the best cut
        found so far (on by default; exhaustive order is kept for parity
        tests and for callers that need the legacy witness tie-breaking).
    lineage:
        Family tag recorded in the store (``cache`` CLI filters on it).
    """

    def __init__(
        self,
        graph: ComputationGraph,
        backend: Optional[str] = None,
        store=None,
        prune: bool = True,
        lineage: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self._backend_id = resolve_flow_backend_id(backend)
        self._store = store
        self._prune = bool(prune)
        self._lineage = lineage
        self._network: Optional[ConvexCutNetwork] = None
        self._backend: Optional[MaxFlowBackend] = None
        self._known: Dict[int, int] = {}
        self._store_loaded = False
        self._store_served = 0
        self._pruned = 0
        self._cut_seconds = 0.0
        # Backends mutate shared per-network state (residual capacities, the
        # scipy capacity template), so concurrent callers — e.g. BoundService
        # threads sharing one LRU-cached engine — must serialise here.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ComputationGraph:
        """The graph this engine evaluates."""
        return self._graph

    @property
    def backend_id(self) -> str:
        """The resolved max-flow backend id."""
        return self._backend_id

    @property
    def flow_calls(self) -> int:
        """Max-flow solves this engine actually performed."""
        return self._backend.flow_calls if self._backend is not None else 0

    @property
    def store_served(self) -> int:
        """Cut values served from the persistent store (no flow paid)."""
        return self._store_served

    @property
    def pruned(self) -> int:
        """Candidates skipped by the upper-bound prune."""
        return self._pruned

    @property
    def cut_seconds(self) -> float:
        """Cumulative wall-clock spent inside cut evaluations."""
        return self._cut_seconds

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counters (what sweeps record per task).

        ``trace_id``/``span_id`` reflect the active trace at call time (the
        sweep task's span when called from a pool worker), so recorded cut
        stats link into the trace tree instead of duplicating timings.
        """
        context = obs.current_context()
        return {
            "backend": self._backend_id,
            "flow_calls": self.flow_calls,
            "store_served": self._store_served,
            "pruned": self._pruned,
            "cut_seconds": self._cut_seconds,
            "trace_id": context.trace_id if context else None,
            "span_id": context.span_id if context else None,
        }

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def cut_value(self, vertex: int) -> int:
        """``C(vertex, G)``, from cache tiers or one max-flow solve."""
        vertex = self._graph.check_vertex(vertex)
        start = time.perf_counter()
        with self._lock:
            self._load_store_table()
            value = self._known.get(vertex)
            if value is None:
                flows_before = self.flow_calls
                value = self._solve(vertex)
                self._publish(
                    {vertex: value}, flow_calls=self.flow_calls - flows_before
                )
            else:
                _CUT_LOOKUPS.inc(tier="memory")
            self._cut_seconds += time.perf_counter() - start
        return value

    def max_cut(
        self, vertices: Optional[Iterable[int]] = None
    ) -> Tuple[int, Optional[int]]:
        """``max_v C(v, G)`` over the candidates and one attaining vertex.

        Candidates default to all vertices.  With pruning enabled they are
        visited best-upper-bound-first; with it disabled, in the given order
        (the legacy behaviour, whose witness is the first maximiser).
        """
        candidates = (
            np.fromiter(
                (self._graph.check_vertex(v) for v in vertices), dtype=np.int64
            )
            if vertices is not None
            else np.arange(self._graph.num_vertices, dtype=np.int64)
        )
        if candidates.size == 0:
            return 0, None
        start = time.perf_counter()
        with obs.span(
            "mincut", backend=self._backend_id, candidates=int(candidates.size)
        ), self._lock:
            self._load_store_table()
            network = self._get_network()
            best_cut = 0
            best_vertex: Optional[int] = None
            # Known (cached) candidate values are free: scanning them first —
            # in the caller's order, which fixes the witness tie-breaking on
            # warm runs — seeds the prune threshold before any flow is paid.
            for v in candidates.tolist():
                value = self._known.get(v)
                if value is None:
                    continue
                _CUT_LOOKUPS.inc(tier="memory")
                if value > best_cut or best_vertex is None:
                    best_cut = value
                    best_vertex = v
            if self._prune:
                candidates = network.candidate_order(candidates)
                upper_bounds = network.prefix_upper_bounds()
            fresh: Dict[int, int] = {}
            flows_before = self.flow_calls
            for v in candidates.tolist():
                if v in self._known:
                    continue  # already counted in the seeding scan
                if (
                    self._prune
                    and best_vertex is not None
                    and int(upper_bounds[v]) <= best_cut
                ):
                    self._pruned += 1
                    continue
                value = self._solve(v)
                fresh[v] = value
                if value > best_cut or best_vertex is None:
                    best_cut = value
                    best_vertex = v
            self._publish(fresh, flow_calls=self.flow_calls - flows_before)
            self._cut_seconds += time.perf_counter() - start
        return best_cut, best_vertex

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get_network(self) -> ConvexCutNetwork:
        if self._network is None:
            self._network = ConvexCutNetwork(self._graph)
        return self._network

    def _solve(self, vertex: int) -> int:
        network = self._get_network()
        if not network.has_descendants(vertex):
            # The prefix can grow to the whole graph, whose wavefront is
            # empty; no flow problem needs solving.
            value = 0
        else:
            if self._backend is None:
                self._backend = create_flow_backend(self._backend_id, network)
            sources, sinks = network.terminals(vertex)
            flow_start = time.perf_counter()
            value = self._backend.min_cut(sources, sinks)
            _MAXFLOW_SECONDS.observe(
                time.perf_counter() - flow_start, backend=self._backend_id
            )
        _CUT_LOOKUPS.inc(tier="flow")
        self._known[vertex] = value
        return value

    def _load_store_table(self) -> None:
        if self._store is None or self._store_loaded:
            return
        self._store_loaded = True
        table = self._store.get(self._graph.fingerprint())
        if table is not None:
            self._known.update(table.as_dict())
            self._store_served = len(table)
            if self._store_served:
                _CUT_LOOKUPS.inc(self._store_served, tier="store")

    def _publish(self, fresh: Dict[int, int], flow_calls: int) -> None:
        self._known.update(fresh)
        if self._store is None or not fresh:
            return
        self._store.merge(
            self._graph.fingerprint(),
            list(fresh.keys()),
            list(fresh.values()),
            flow_calls=flow_calls,
            backend=self._backend_id,
            lineage=self._lineage,
        )


def convex_min_cut_value(
    graph: ComputationGraph,
    vertex: int,
    backend: Optional[str] = None,
    store=None,
) -> int:
    """The minimum wavefront ``C(v, G)`` of any convex prefix through ``vertex``.

    Returns 0 when ``vertex`` has no descendants (the prefix can then grow to
    the whole graph, whose wavefront is empty).  One-shot convenience over
    :class:`MinCutEngine` — loops over many vertices of one graph should hold
    an engine instead, which builds the flow network once and caches values.
    """
    return MinCutEngine(graph, backend=backend, store=store).cut_value(vertex)


def convex_min_cut_max_value(
    graph: ComputationGraph,
    vertices: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
    store=None,
    prune: bool = True,
) -> Tuple[int, Optional[int]]:
    """``max_v C(v, G)`` over the requested vertices and its arg-max.

    The convex min-cut bound for any memory size is
    ``max(0, 2 * (max_v C(v, G) - M))``, so the expensive per-vertex max-flow
    computations only depend on the graph; sweeps over several ``M`` values
    call this once and derive the bounds arithmetically.
    """
    return MinCutEngine(graph, backend=backend, store=store, prune=prune).max_cut(
        vertices
    )


def convex_min_cut_bound(
    graph: ComputationGraph,
    M: int,
    vertices: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
    store=None,
    prune: bool = True,
) -> BaselineBoundResult:
    """Whole-graph convex min-cut lower bound
    ``max_v max(0, 2 (C(v, G) - M))`` (the variant plotted in Figures 7–10).

    Parameters
    ----------
    graph:
        Computation graph.
    M:
        Fast-memory size.
    vertices:
        Optional subset of vertices to maximise over (defaults to all);
        restricting the set is a valid — just possibly weaker — bound and is
        useful to keep the ``O(n)`` max-flow calls affordable on larger
        graphs.
    backend, store, prune:
        Forwarded to :class:`MinCutEngine` (max-flow backend selection,
        persistent cut table, upper-bound pruning).
    """
    check_memory_size(M)
    start = time.perf_counter()
    engine = MinCutEngine(graph, backend=backend, store=store, prune=prune)
    candidates = list(vertices) if vertices is not None else list(graph.vertices())
    best_cut, best_vertex = engine.max_cut(candidates)
    best_value = max(0.0, 2.0 * (best_cut - M))
    elapsed = time.perf_counter() - start
    return BaselineBoundResult(
        value=best_value,
        method="convex-min-cut",
        num_vertices=graph.num_vertices,
        memory_size=M,
        witness_vertex=best_vertex,
        details={
            "max_cut_value": float(best_cut),
            "vertices_examined": float(len(candidates)),
            "pruned": float(engine.pruned),
            "store_served": float(engine.store_served),
        },
        elapsed_seconds=elapsed,
        backend=engine.backend_id,
        flow_calls=engine.flow_calls,
    )


def partitioned_convex_min_cut_bound(
    graph: ComputationGraph,
    M: int,
    max_part_size: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
    prune: bool = True,
) -> BaselineBoundResult:
    """Partitioned variant: sum of per-part convex min-cut bounds.

    The original work suggests sub-graphs of at most ``2 M`` vertices; as the
    paper observes (§6.3), at that size the bound is trivial for the complex
    graphs evaluated here, which is why the whole-graph variant is the one
    plotted.  The partitioned variant is provided for completeness and used in
    the ablation benchmarks.

    Per-part maxima go through the same backend/caching path as the
    whole-graph bound, and structurally identical parts (equal subgraph
    fingerprints — common under the contiguous partitioners on regular
    graphs) are solved once and reused.
    """
    check_memory_size(M)
    if max_part_size is None:
        max_part_size = 2 * M
    check_positive_int(max_part_size, "max_part_size")
    start = time.perf_counter()
    total = 0.0
    per_part: Dict[int, float] = {}
    max_cut_by_fingerprint: Dict[str, int] = {}
    flow_calls = 0
    parts: List[List[int]] = contiguous_topological_partition(graph, max_part_size)
    backend_id = resolve_flow_backend_id(backend)
    for index, part in enumerate(parts):
        subgraph, _ = graph.subgraph(part)
        fingerprint = subgraph.fingerprint()
        max_cut = max_cut_by_fingerprint.get(fingerprint)
        if max_cut is None:
            engine = MinCutEngine(
                subgraph, backend=backend_id, store=store, prune=prune
            )
            max_cut, _ = engine.max_cut()
            flow_calls += engine.flow_calls
            max_cut_by_fingerprint[fingerprint] = max_cut
        best = max(0.0, 2.0 * (max_cut - M))
        per_part[index] = best
        total += best
    elapsed = time.perf_counter() - start
    return BaselineBoundResult(
        value=total,
        method="convex-min-cut-partitioned",
        num_vertices=graph.num_vertices,
        memory_size=M,
        witness_vertex=None,
        details={
            "num_parts": float(len(parts)),
            "max_part_size": float(max_part_size),
            "unique_parts": float(len(max_cut_by_fingerprint)),
        },
        elapsed_seconds=elapsed,
        backend=backend_id,
        flow_calls=flow_calls,
    )
