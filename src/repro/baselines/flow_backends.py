"""Pluggable max-flow backends for the convex min-cut baseline.

Mirror of the spectral layer's :mod:`repro.solvers.backends`: backends are
registered under an id, constructed *per network* (one
:class:`~repro.baselines.flownet.ConvexCutNetwork` holds the fixed arcs of a
graph's reduction), and solve per-vertex min cuts by swapping only the
source/sink attachments:

* ``dinic`` — the pure-Python Dinic reference: rebuilds a fresh
  :class:`~repro.baselines.maxflow.MaxFlowSolver` per call (the legacy cost
  profile, kept as the parity oracle and benchmark baseline);
* ``array-dinic`` — Dinic on one persistent flat arc structure (``to`` /
  ``head`` / capacity arrays built once from the network's numpy arc table);
  per-vertex solves reset capacities from a saved snapshot instead of
  re-adding ``O(n + m)`` arcs;
* ``scipy`` — :func:`scipy.sparse.csgraph.maximum_flow` (C-compiled) on a
  persistent CSR capacity template whose source/sink slots are flipped in
  place per vertex; selected by default when available.

All backends return the same integer ``C(v, G)`` — the randomized parity
tests in ``tests/test_flow_backends.py`` assert it — so the choice is purely
a speed/portability trade-off.  ``REPRO_MINCUT_BACKEND`` overrides the
default (the escape hatch for suspected backend bugs: set it to ``dinic``
to force the reference implementation everywhere).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.flownet import ConvexCutNetwork
from repro.baselines.maxflow import INFINITE_CAPACITY, MaxFlowSolver, dinic_max_flow

__all__ = [
    "MaxFlowBackend",
    "available_flow_backends",
    "create_flow_backend",
    "register_flow_backend",
    "resolve_flow_backend_id",
    "BACKEND_ENV_VAR",
]

#: Environment variable overriding the default backend id (parity escape
#: hatch: ``REPRO_MINCUT_BACKEND=dinic`` forces the reference everywhere).
BACKEND_ENV_VAR = "REPRO_MINCUT_BACKEND"


class MaxFlowBackend(ABC):
    """One max-flow engine bound to one :class:`ConvexCutNetwork`.

    Subclasses implement :meth:`_solve`; the public :meth:`min_cut` wraps it
    with the ``flow_calls`` counter every caching/pruning layer (and the CI
    warm-run smoke test) audits.
    """

    id: ClassVar[str] = "abstract"

    def __init__(self, network: ConvexCutNetwork) -> None:
        self.network = network
        self.flow_calls = 0

    def min_cut(self, sources: np.ndarray, sinks: np.ndarray) -> int:
        """Min-cut value with ``sources`` attached to the super-source and
        ``sinks`` to the super-sink (both are graph-vertex id arrays)."""
        self.flow_calls += 1
        value = self._solve(
            np.asarray(sources, dtype=np.int64), np.asarray(sinks, dtype=np.int64)
        )
        if value >= INFINITE_CAPACITY:  # pragma: no cover - impossible on DAGs
            raise RuntimeError("convex min-cut reduction produced an unbounded cut")
        return int(value)

    @abstractmethod
    def _solve(self, sources: np.ndarray, sinks: np.ndarray) -> int:
        """Compute the max-flow value for one source/sink attachment."""


class DinicRebuildBackend(MaxFlowBackend):
    """Reference backend: a fresh pure-Python solver per vertex.

    This is the legacy execution model (and therefore the baseline the
    ``bench_mincut_baseline`` speedup is measured against): every call pays
    ``O(n + m)`` Python-level ``add_edge`` work before the first BFS.
    """

    id = "dinic"

    def _solve(self, sources: np.ndarray, sinks: np.ndarray) -> int:
        net = self.network
        solver = MaxFlowSolver(net.num_nodes)
        n = net.num_vertices
        m = net.num_edges
        tails = net.arc_tails
        heads = net.arc_heads
        caps = net.arc_caps
        for i in range(n + 2 * m):  # fixed arcs only; slots added below
            solver.add_edge(int(tails[i]), int(heads[i]), int(caps[i]))
        for u in sources.tolist():
            solver.add_edge(net.source, 2 * u, INFINITE_CAPACITY)
        for u in sinks.tolist():
            solver.add_edge(2 * u, net.sink, INFINITE_CAPACITY)
        return solver.max_flow(net.source, net.sink)


class ArrayDinicBackend(MaxFlowBackend):
    """Dinic on one persistent flat arc structure.

    The adjacency (``to`` targets and per-node arc lists) is built once from
    the network's arc table — vectorized grouping, no Python edge loop — and
    never changes.  A solve copies the capacity snapshot (a C-level list
    copy), flips the source/sink slots of the requested attachment, and runs
    the shared :func:`~repro.baselines.maxflow.dinic_max_flow` kernel.
    """

    id = "array-dinic"

    def __init__(self, network: ConvexCutNetwork) -> None:
        super().__init__(network)
        num_arcs = network.num_arcs
        # Forward arc i becomes solver arc 2i; its residual twin is 2i + 1.
        to = np.empty(2 * num_arcs, dtype=np.int64)
        to[0::2] = network.arc_heads
        to[1::2] = network.arc_tails
        self._to: List[int] = to.tolist()
        owners = np.empty(2 * num_arcs, dtype=np.int64)
        owners[0::2] = network.arc_tails
        owners[1::2] = network.arc_heads
        order = np.argsort(owners, kind="stable")
        boundaries = np.searchsorted(
            owners[order], np.arange(network.num_nodes + 1, dtype=np.int64)
        )
        self._head: List[List[int]] = [
            order[boundaries[i] : boundaries[i + 1]].tolist()
            for i in range(network.num_nodes)
        ]
        caps = np.zeros(2 * num_arcs, dtype=np.int64)
        caps[0::2] = network.arc_caps
        self._cap_template: List[int] = caps.tolist()

    def _solve(self, sources: np.ndarray, sinks: np.ndarray) -> int:
        net = self.network
        cap = self._cap_template.copy()
        for u in sources.tolist():
            cap[2 * int(net.source_arc[u])] = INFINITE_CAPACITY
        for u in sinks.tolist():
            cap[2 * int(net.sink_arc[u])] = INFINITE_CAPACITY
        return dinic_max_flow(
            net.num_nodes, self._to, self._head, cap, net.source, net.sink
        )


class ScipyMaxFlowBackend(MaxFlowBackend):
    """C-compiled solves via :func:`scipy.sparse.csgraph.maximum_flow`.

    One CSR capacity matrix is built per network (source/sink slots present
    as explicit zeros so the sparsity pattern never changes); per-vertex
    solves mutate only the slot entries of the shared ``data`` array.
    Capacities use ``n + 1`` as the "infinite" value — every finite cut in
    the reduction is at most ``n``, and the small constant keeps all flow
    arithmetic comfortably inside the int32 scipy requires.
    """

    id = "scipy"

    def __init__(self, network: ConvexCutNetwork) -> None:
        super().__init__(network)
        import scipy.sparse as sp

        n = network.num_vertices
        self._inf = n + 1
        caps = np.minimum(network.arc_caps, self._inf).astype(np.int32)
        matrix = sp.csr_matrix(
            (caps, (network.arc_tails, network.arc_heads)),
            shape=(network.num_nodes, network.num_nodes),
        )
        matrix.sort_indices()
        indptr, indices = matrix.indptr, matrix.indices
        u_in = 2 * np.arange(n, dtype=np.int64)
        # Source arcs are the (sorted, unique) entries of the source row.
        self._src_pos = indptr[network.source] + np.searchsorted(
            indices[indptr[network.source] : indptr[network.source + 1]], u_in
        )
        # The sink column is the largest node id, so each vertex's sink slot
        # is the last entry of its u_in row.
        self._sink_pos = indptr[u_in + 1] - 1
        if n and (
            not np.array_equal(indices[self._src_pos], u_in)
            or not np.all(indices[self._sink_pos] == network.sink)
        ):  # pragma: no cover - layout invariant
            raise AssertionError("scipy capacity template slot layout broken")
        self._matrix = matrix

    def _solve(self, sources: np.ndarray, sinks: np.ndarray) -> int:
        from scipy.sparse.csgraph import maximum_flow

        data = self._matrix.data
        data[self._src_pos] = 0
        data[self._sink_pos] = 0
        data[self._src_pos[sources]] = self._inf
        data[self._sink_pos[sinks]] = self._inf
        return int(
            maximum_flow(self._matrix, self.network.source, self.network.sink).flow_value
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_FLOW_BACKENDS: Dict[str, Callable[[ConvexCutNetwork], MaxFlowBackend]] = {}


def register_flow_backend(
    backend_id: str, factory: Callable[[ConvexCutNetwork], MaxFlowBackend]
) -> None:
    """Register (or replace) a backend factory under ``backend_id``."""
    _FLOW_BACKENDS[backend_id] = factory


def available_flow_backends() -> Tuple[str, ...]:
    """Registered backend ids, sorted."""
    return tuple(sorted(_FLOW_BACKENDS))


def _scipy_maximum_flow_available() -> bool:
    try:
        from scipy.sparse.csgraph import maximum_flow  # noqa: F401
    except ImportError:  # pragma: no cover - scipy always present in CI
        return False
    return True


def resolve_flow_backend_id(backend_id: Optional[str] = None) -> str:
    """Resolve ``None``/``"auto"`` to a concrete backend id.

    Resolution order: explicit id, ``$REPRO_MINCUT_BACKEND``, then ``scipy``
    when :func:`scipy.sparse.csgraph.maximum_flow` imports, else
    ``array-dinic``.
    """
    if backend_id is not None and backend_id != "auto":
        resolved = backend_id
    else:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env:
            resolved = env
        elif _scipy_maximum_flow_available():
            resolved = "scipy"
        else:
            resolved = "array-dinic"
    if resolved not in _FLOW_BACKENDS:
        known = ", ".join(available_flow_backends())
        raise ValueError(
            f"unknown max-flow backend {resolved!r}; known backends: {known}"
        )
    return resolved


def create_flow_backend(
    backend_id: Optional[str], network: ConvexCutNetwork
) -> MaxFlowBackend:
    """Construct the backend registered under ``backend_id`` for ``network``."""
    return _FLOW_BACKENDS[resolve_flow_backend_id(backend_id)](network)


register_flow_backend(DinicRebuildBackend.id, DinicRebuildBackend)
register_flow_backend(ArrayDinicBackend.id, ArrayDinicBackend)
register_flow_backend(ScipyMaxFlowBackend.id, ScipyMaxFlowBackend)
