"""Reusable vertex-split flow networks for the convex min-cut baseline.

The baseline computes, for every vertex ``v`` of a computation graph, the
min cut ``C(v, G)`` of one and the same transformed network — only the
super-source / super-sink attachments change with ``v``.  The legacy code
nevertheless rebuilt the whole ``2n + 2``-node network from scratch for each
of the ``O(n)`` max-flow calls, iterating ``graph.edges()`` in Python every
time.  :class:`ConvexCutNetwork` builds the *fixed* part once, directly from
the frozen :class:`~repro.graphs.csr.CSRView` with vectorized edge-array
arithmetic, and exposes it as flat arc arrays that every
:class:`~repro.baselines.flow_backends.MaxFlowBackend` shares; per-vertex
solves only swap the source/sink arc capacities.

Node layout (unchanged from the original reduction):

* ``u_in = 2u``, ``u_out = 2u + 1`` — the unit-capacity vertex split;
* structural arcs ``u_out -> w_in`` (pay once per boundary vertex) and
  ``w_in -> u_in`` (down-closure) for every graph edge ``(u, w)``;
* ``source = 2n`` with arcs to ``anc(v) ∪ {v}``, ``sink = 2n + 1`` with arcs
  from ``desc(v)`` — these are the only per-vertex parts, so the network
  pre-allocates one source arc and one sink arc *slot* per vertex (capacity
  0 = absent) that backends flip in place.

The network also provides the cheap per-vertex **upper bound** used for
search pruning: for any topological order, *every* prefix ending at a
position in ``[pos(v), min_{w in succ(v)} pos(w) - 1]`` is a convex schedule
prefix through ``v`` (ancestors all precede ``v``, and the earliest-position
descendant is always a direct successor), so the *window minimum* of the
prefix wavefronts over that range bounds ``C(v, G)`` from above.  All ``n``
prefix wavefronts of one order cost ``O(n + E)`` (a difference array over
live intervals) and the per-vertex window minima one vectorized
sparse-table sweep on top.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.sparse.csgraph import breadth_first_order

from repro.baselines.maxflow import INFINITE_CAPACITY
from repro.graphs.compgraph import ComputationGraph

__all__ = ["ConvexCutNetwork"]


def _window_minimum(
    values: np.ndarray, left: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """``min(values[left[i] : left[i] + lengths[i]])`` for every query.

    Vectorized sparse-table range minimum: level ``k`` holds the minima of
    every aligned window of ``2**k`` values, and a query of length ``L`` is
    the minimum of the two (overlapping) level-``floor(log2 L)`` windows
    covering it.  All lengths must be >= 1.
    """
    if left.size == 0:
        return np.zeros(0, dtype=values.dtype)
    max_length = int(lengths.max())
    levels = [values]
    while (1 << len(levels)) <= max_length:
        previous = levels[-1]
        half = 1 << (len(levels) - 1)
        levels.append(np.minimum(previous[: previous.size - half], previous[half:]))
    result = np.empty(left.shape, dtype=values.dtype)
    query_level = np.floor(np.log2(lengths)).astype(np.int64)
    for level, table in enumerate(levels):
        at_level = query_level == level
        if not at_level.any():
            continue
        starts = left[at_level]
        ends = starts + lengths[at_level] - (1 << level)
        result[at_level] = np.minimum(table[starts], table[ends])
    return result


class ConvexCutNetwork:
    """The fixed part of the per-vertex min-cut reduction, built once.

    Attributes
    ----------
    num_vertices, num_edges:
        Size of the underlying computation graph.
    num_nodes:
        Flow-network node count ``2n + 2``.
    source, sink:
        The super-source (``2n``) and super-sink (``2n + 1``) node ids.
    arc_tails, arc_heads, arc_caps:
        Flat int64 arrays of every *forward* arc (unit, structural, then the
        per-vertex source/sink slots), in a fixed order shared by all
        backends.  Source/sink slots carry capacity 0 in the template.
    source_arc, sink_arc:
        ``source_arc[u]`` / ``sink_arc[u]`` index the arc slot
        ``source -> u_in`` / ``u_in -> sink`` inside the arc arrays.
    """

    def __init__(self, graph: ComputationGraph) -> None:
        view = graph.freeze()
        n = view.num_vertices
        m = view.num_edges
        self.graph = graph
        self.num_vertices = n
        self.num_edges = m
        self.num_nodes = 2 * n + 2
        self.source = 2 * n
        self.sink = 2 * n + 1
        self.fingerprint = view.fingerprint

        u_ids = np.arange(n, dtype=np.int64)
        a, b = view.edge_endpoints()
        # Arc order: n unit arcs, m forward structural, m down-closure,
        # n source slots, n sink slots.
        self.arc_tails = np.concatenate(
            [2 * u_ids, 2 * a + 1, 2 * b, np.full(n, self.source, dtype=np.int64), 2 * u_ids]
        )
        self.arc_heads = np.concatenate(
            [2 * u_ids + 1, 2 * b, 2 * a, 2 * u_ids, np.full(n, self.sink, dtype=np.int64)]
        )
        caps = np.empty(self.num_arcs, dtype=np.int64)
        caps[:n] = 1
        caps[n : n + 2 * m] = INFINITE_CAPACITY
        caps[n + 2 * m :] = 0
        self.arc_caps = caps
        self.source_arc = n + 2 * m + u_ids
        self.sink_arc = n + 2 * m + n + u_ids
        for arr in (self.arc_tails, self.arc_heads, self.arc_caps):
            arr.flags.writeable = False

        # Reachability substrates: adjacency CSR (descendants) and its
        # transpose in CSR form (ancestors), both C-traversable.
        self._adj = view.scipy_csr
        self._adj_t = self._adj.T.tocsr() if m else self._adj
        self._out_degrees = view.out_degrees
        self._bounds: Tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def num_arcs(self) -> int:
        """Number of forward arcs (source/sink slots included)."""
        return 2 * self.num_vertices + 2 * self.num_edges + self.num_vertices

    # ------------------------------------------------------------------
    # per-vertex attachments
    # ------------------------------------------------------------------
    def has_descendants(self, vertex: int) -> bool:
        """True when ``vertex`` has at least one successor (hence descendant)."""
        return bool(self._out_degrees[vertex] > 0)

    def terminals(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """The per-vertex attachments ``(anc(v) ∪ {v}, desc(v))``.

        Both are int64 vertex-id arrays computed by C-level BFS over the CSR
        adjacency (and its transpose) — no Python-level edge iteration.
        """
        vertex = self.graph.check_vertex(vertex)
        if self.num_edges == 0:
            return np.array([vertex], dtype=np.int64), np.empty(0, dtype=np.int64)
        down = breadth_first_order(
            self._adj, vertex, directed=True, return_predecessors=False
        )
        descendants = down[down != vertex].astype(np.int64, copy=False)
        up = breadth_first_order(
            self._adj_t, vertex, directed=True, return_predecessors=False
        )
        return up.astype(np.int64, copy=False), descendants

    # ------------------------------------------------------------------
    # cheap upper bounds (search pruning)
    # ------------------------------------------------------------------
    def prefix_upper_bounds(self) -> np.ndarray:
        """Per-vertex upper bounds ``ub(v) >= C(v, G)``, near-linear total.

        For one topological order, every prefix ending at a position in the
        window ``pos(v) <= i < min_{w in succ(v)} pos(w)`` is a valid convex
        prefix through ``v``: it is down-closed, contains ``anc(v) ∪ {v}``
        (ancestors precede ``v`` in any topological order) and excludes
        ``desc(v)`` (the earliest-position descendant is always a direct
        successor).  The *minimum* wavefront over that window therefore
        bounds the min cut from above — strictly tighter than the single
        prefix ending at ``v`` whenever the wavefront dips before the first
        successor is computed.  A vertex ``u`` is live in exactly the
        prefixes ``pos(u) <= i < max_{w in succ(u)} pos(w)``, so all ``n``
        prefix wavefronts follow from one difference array; the per-vertex
        window minima come from one sparse-table range-minimum sweep
        (``O(n log n)`` build, all vectorized).  Vertices without
        descendants get the exact value 0 (the prefix can grow to the whole
        graph).
        """
        ub, _, _ = self._prefix_bounds()
        return ub

    def candidate_order(self, candidates: np.ndarray) -> np.ndarray:
        """``candidates`` sorted best-upper-bound-first (ties: vertex order).

        Visiting high-ceiling vertices first makes the running maximum climb
        as fast as possible, which is what lets ``ub(v) <= best`` prune the
        remaining (low-ceiling) candidates without a single flow call.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        ub = self.prefix_upper_bounds()
        order = np.lexsort((candidates, -ub[candidates]))
        return candidates[order]

    def _prefix_bounds(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._bounds is None:
            n = self.num_vertices
            order = np.asarray(self.graph.topological_order(), dtype=np.int64)
            pos = np.empty(n, dtype=np.int64)
            pos[order] = np.arange(n, dtype=np.int64)
            ub = np.zeros(n, dtype=np.int64)
            if self.num_edges:
                a, b = self.graph.freeze().edge_endpoints()
                last_use = np.full(n, -1, dtype=np.int64)
                np.maximum.at(last_use, a, pos[b])
                first_use = np.full(n, n, dtype=np.int64)
                np.minimum.at(first_use, a, pos[b])
                live = self._out_degrees > 0
                wavefront = np.zeros(n + 1, dtype=np.int64)
                np.add.at(wavefront, pos[live.nonzero()[0]], 1)
                np.add.at(wavefront, last_use[live], -1)
                np.cumsum(wavefront, out=wavefront)
                # ub(v) = min wavefront over the valid prefix window
                # [pos(v), first_use(v) - 1]; sinks stay at the exact 0.
                candidates = live.nonzero()[0]
                left = pos[candidates]
                ub[candidates] = _window_minimum(
                    wavefront[:n], left, first_use[candidates] - left
                )
            self._bounds = (ub, order, pos)
        return self._bounds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvexCutNetwork(n={self.num_vertices}, m={self.num_edges}, "
            f"nodes={self.num_nodes}, arcs={self.num_arcs})"
        )
