"""Dinic's max-flow / min-cut algorithm (pure Python).

Substrate for the convex min-cut baseline: the per-vertex transformed graphs
have unit vertex capacities and "infinite" structural arcs, so the min cut is
at most ``n`` and Dinic's algorithm (BFS level graph + blocking flows) runs in
``O(E sqrt(V))`` for these unit-capacity-like networks — fast enough for the
thousands of max-flow calls the baseline makes on small and medium graphs.

The implementation uses integer capacities with a large finite constant for
"infinite" arcs (safe because every finite cut in our constructions is at most
the number of graph vertices).

The algorithm itself lives in :func:`dinic_max_flow`, a module-level kernel
over flat arc arrays (``to``/``head``/``cap``), so the reusable flow networks
of :mod:`repro.baselines.flow_backends` can run Dinic repeatedly on one
persistent arc structure — resetting a capacity list is orders of magnitude
cheaper than re-adding every arc through :meth:`MaxFlowSolver.add_edge`.
:class:`MaxFlowSolver` remains the convenient incremental front-end.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Set

__all__ = ["MaxFlowSolver", "INFINITE_CAPACITY", "dinic_max_flow"]

#: Effectively infinite capacity for structural (uncuttable) arcs.
INFINITE_CAPACITY = 1 << 50


def _bfs_levels(
    num_nodes: int, to: Sequence[int], head: Sequence[Sequence[int]],
    cap: Sequence[int], source: int, sink: int,
) -> List[int]:
    level = [-1] * num_nodes
    level[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for idx in head[u]:
            v = to[idx]
            if cap[idx] > 0 and level[v] < 0:
                level[v] = level[u] + 1
                queue.append(v)
    return level


def _blocking_path(
    to: Sequence[int], head: Sequence[Sequence[int]], cap: List[int],
    source: int, sink: int, level: List[int], iters: List[int],
) -> int:
    """Find one augmenting path in the level graph (iterative DFS).

    Returns the amount pushed (0 when the level graph admits no further
    augmenting path).  Using an explicit stack keeps the solver safe on
    the long chain-like networks the convex min-cut reduction produces.
    """
    path: List[int] = []  # edge indices of the current partial path
    u = source
    while True:
        if u == sink:
            bottleneck = min(cap[idx] for idx in path)
            for idx in path:
                cap[idx] -= bottleneck
                cap[idx ^ 1] += bottleneck
            return bottleneck
        advanced = False
        while iters[u] < len(head[u]):
            idx = head[u][iters[u]]
            v = to[idx]
            if cap[idx] > 0 and level[v] == level[u] + 1:
                path.append(idx)
                u = v
                advanced = True
                break
            iters[u] += 1
        if advanced:
            continue
        # Dead end: retreat (and make sure we never try this vertex again
        # within the current level graph).
        level[u] = -1
        if not path:
            return 0
        idx = path.pop()
        u = to[idx ^ 1]
        iters[u] += 1


def dinic_max_flow(
    num_nodes: int,
    to: Sequence[int],
    head: Sequence[Sequence[int]],
    cap: List[int],
    source: int,
    sink: int,
) -> int:
    """Dinic's algorithm on flat arc arrays; returns the max-flow value.

    ``to[idx]`` is the target of arc ``idx``, ``head[u]`` the arc indices out
    of node ``u``, and ``cap`` the *mutable* residual capacities — arcs come
    in ``(forward, reverse)`` pairs with ``reverse == forward ^ 1``, exactly
    the layout :meth:`MaxFlowSolver.add_edge` produces.  ``cap`` is consumed
    in place (on return it holds the residual network), which is what lets a
    persistent network re-run the solver from a capacity snapshot.
    """
    if not 0 <= source < num_nodes or not 0 <= sink < num_nodes:
        raise ValueError(
            f"source/sink out of range for network with {num_nodes} nodes"
        )
    if source == sink:
        raise ValueError("source and sink must differ")
    flow = 0
    while True:
        level = _bfs_levels(num_nodes, to, head, cap, source, sink)
        if level[sink] < 0:
            return flow
        iters = [0] * num_nodes
        while True:
            pushed = _blocking_path(to, head, cap, source, sink, level, iters)
            if pushed == 0:
                break
            flow += pushed


class MaxFlowSolver:
    """Max-flow solver on a directed graph with integer capacities.

    Vertices are integers ``0 .. num_nodes - 1``.  Edges are added with
    :meth:`add_edge`; each call also creates the reverse residual edge with
    zero capacity.  :meth:`max_flow` computes the maximum ``s``-``t`` flow
    with Dinic's algorithm and leaves the residual network in place so
    :meth:`min_cut_source_side` can recover the minimum cut.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self.num_nodes = num_nodes
        self._to: List[int] = []
        self._cap: List[int] = []
        self._head: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge ``u -> v`` with the given capacity.

        Returns the internal edge index (the reverse edge is ``index ^ 1``).
        """
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        index = len(self._to)
        self._to.append(v)
        self._cap.append(int(capacity))
        self._head[u].append(index)
        self._to.append(u)
        self._cap.append(0)
        self._head[v].append(index + 1)
        return index

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def max_flow(self, source: int, sink: int) -> int:
        """Maximum flow value from ``source`` to ``sink``."""
        self._check_node(source)
        self._check_node(sink)
        return dinic_max_flow(
            self.num_nodes, self._to, self._head, self._cap, source, sink
        )

    # ------------------------------------------------------------------
    # cuts
    # ------------------------------------------------------------------
    def min_cut_source_side(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` in the residual network.

        Only meaningful after :meth:`max_flow`; the returned set is the source
        side of a minimum cut.
        """
        self._check_node(source)
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for idx in self._head[u]:
                v = self._to[idx]
                if self._cap[idx] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} out of range for network with {self.num_nodes} nodes")
