"""Balanced graph partitioners (METIS substitute).

The partitioned variant of the convex min-cut baseline splits the computation
graph into small sub-graphs (the original work uses METIS, which is not
available in this offline environment).  Two simple balanced partitioners are
provided instead:

* :func:`contiguous_topological_partition` — blocks of a topological order
  (fast, always balanced, respects the schedule structure of computation
  graphs);
* :func:`spectral_bisection_partition` — recursive Fiedler-vector bisection
  of the undirected Laplacian (closer in spirit to METIS's objective of small
  edge cuts).

Both return a list of vertex lists covering all vertices exactly once.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.laplacian import laplacian
from repro.graphs.orders import natural_topological_order
from repro.utils.validation import check_positive_int

__all__ = ["contiguous_topological_partition", "spectral_bisection_partition"]


def contiguous_topological_partition(
    graph: ComputationGraph, max_part_size: int
) -> List[List[int]]:
    """Split a topological order into contiguous blocks of at most
    ``max_part_size`` vertices.

    The blocks are balanced (sizes differ by at most one) and each block is a
    plausible schedule segment, which is exactly the structure the baseline's
    sub-graph analysis assumes.
    """
    check_positive_int(max_part_size, "max_part_size")
    n = graph.num_vertices
    if n == 0:
        return []
    order = natural_topological_order(graph)
    num_parts = -(-n // max_part_size)  # ceil
    base = n // num_parts
    remainder = n % num_parts
    parts: List[List[int]] = []
    start = 0
    for i in range(num_parts):
        size = base + 1 if i < remainder else base
        parts.append(order[start : start + size])
        start += size
    return parts


def spectral_bisection_partition(
    graph: ComputationGraph, num_parts: int
) -> List[List[int]]:
    """Recursive spectral bisection into (approximately) ``num_parts`` parts.

    Each bisection splits the current vertex set at the median of the Fiedler
    vector of the induced undirected Laplacian, which tends to produce small
    edge cuts — the property METIS optimises for.  ``num_parts`` is rounded up
    to the next power of two internally; trailing empty parts are dropped.
    """
    check_positive_int(num_parts, "num_parts")
    n = graph.num_vertices
    if n == 0:
        return []
    if num_parts == 1:
        return [list(graph.vertices())]

    depth = int(np.ceil(np.log2(num_parts)))
    parts: List[List[int]] = [list(graph.vertices())]
    for _ in range(depth):
        next_parts: List[List[int]] = []
        for part in parts:
            left, right = _bisect(graph, part)
            if right:
                next_parts.extend([left, right])
            else:
                next_parts.append(left)
        parts = next_parts
        if len(parts) >= num_parts:
            break
    return [p for p in parts if p]


def _bisect(graph: ComputationGraph, vertices: List[int]) -> tuple[List[int], List[int]]:
    """Split one vertex set by the sign/median of its Fiedler vector."""
    if len(vertices) <= 1:
        return list(vertices), []
    sub, mapping = graph.subgraph(vertices)
    inverse = {new: old for old, new in mapping.items()}
    lap = laplacian(sub, normalized=False, sparse=False)
    try:
        _, vectors = np.linalg.eigh(lap)
        fiedler = vectors[:, 1] if lap.shape[0] > 1 else np.zeros(lap.shape[0])
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        fiedler = np.arange(lap.shape[0], dtype=float)
    median = np.median(fiedler)
    left = [inverse[i] for i in range(len(vertices)) if fiedler[i] <= median]
    right = [inverse[i] for i in range(len(vertices)) if fiedler[i] > median]
    if not right:  # perfectly symmetric vector: fall back to an even split
        half = len(vertices) // 2
        ordered = sorted(vertices)
        left, right = ordered[:half], ordered[half:]
    return left, right
