"""Baseline lower-bound methods the paper compares against.

* :mod:`maxflow` — a pure-Python Dinic max-flow / min-cut solver (the
  reference kernel of the convex min-cut baseline).
* :mod:`flownet` — the reusable vertex-split flow network of the baseline's
  reduction, built once per graph from the frozen CSR view (plus the cheap
  per-vertex upper bounds used for search pruning).
* :mod:`flow_backends` — pluggable :class:`MaxFlowBackend` registry
  (``dinic`` reference / ``array-dinic`` / C-compiled ``scipy``), mirroring
  the spectral backend registry of :mod:`repro.solvers.backends`.
* :mod:`convex_mincut` — reconstruction of the convex min-cut automatic bound
  of Elango et al. [13], the only polynomial-time automatic baseline the paper
  evaluates (Figures 7–11), with per-graph cut caching and pruning
  (:class:`MinCutEngine`).
* :mod:`partitioner` — balanced graph partitioners standing in for METIS in
  the partitioned variant of the baseline.
* :mod:`exact` — brute-force references for tiny graphs: minimum simulated
  I/O over all evaluation orders (an upper bound on ``J*``) used as a
  soundness oracle for every lower bound, standing in for the intractable
  2S-partition ILP of [12].
"""

from repro.baselines.convex_mincut import (
    MinCutEngine,
    convex_min_cut_bound,
    convex_min_cut_value,
    partitioned_convex_min_cut_bound,
)
from repro.baselines.exact import minimum_io_over_all_orders, minimum_io_upper_bound
from repro.baselines.flow_backends import (
    MaxFlowBackend,
    available_flow_backends,
    create_flow_backend,
    register_flow_backend,
    resolve_flow_backend_id,
)
from repro.baselines.flownet import ConvexCutNetwork
from repro.baselines.maxflow import MaxFlowSolver
from repro.baselines.partitioner import (
    contiguous_topological_partition,
    spectral_bisection_partition,
)

__all__ = [
    "MaxFlowSolver",
    "ConvexCutNetwork",
    "MaxFlowBackend",
    "MinCutEngine",
    "available_flow_backends",
    "create_flow_backend",
    "register_flow_backend",
    "resolve_flow_backend_id",
    "convex_min_cut_value",
    "convex_min_cut_bound",
    "partitioned_convex_min_cut_bound",
    "contiguous_topological_partition",
    "spectral_bisection_partition",
    "minimum_io_over_all_orders",
    "minimum_io_upper_bound",
]
