"""Exact / brute-force references for tiny graphs.

The paper mentions one more automatic method, the exact 2S-partition ILP of
Elango [12], but excludes it from the evaluation because it is combinatorial
in complexity.  In the same spirit this module provides *small-scale exact
references* that need no external solver:

* :func:`minimum_io_over_all_orders` — enumerate every topological order (or
  a capped number of them) and simulate each under one or more eviction
  policies; the minimum simulated I/O is a constructive upper bound on
  ``J*_G`` that becomes very tight on tiny graphs.  Every lower bound in the
  package must stay below it — the soundness oracle used by the tests.
* :func:`minimum_io_upper_bound` — the cheaper heuristic version (a handful
  of schedules instead of all of them) usable on medium graphs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.orders import all_topological_orders
from repro.pebbling.simulator import SimulationResult, best_simulated_io, simulate_order
from repro.utils.validation import check_memory_size, check_positive_int

__all__ = ["minimum_io_over_all_orders", "minimum_io_upper_bound"]


def minimum_io_over_all_orders(
    graph: ComputationGraph,
    M: int,
    policies: Sequence[str] = ("belady",),
    max_orders: int = 50_000,
) -> SimulationResult:
    """Minimum simulated I/O over (up to ``max_orders``) topological orders.

    Exponential in the graph size — intended for graphs of at most ~10–12
    vertices, where the enumeration is exhaustive and the result is an
    essentially exact value of ``J*_G`` (exact up to the eviction policy,
    which Belady makes optimal or near-optimal for a fixed order).

    Parameters
    ----------
    graph:
        The (tiny) computation graph.
    M:
        Fast-memory size.
    policies:
        Eviction policies to try per order.
    max_orders:
        Safety cap on the number of orders enumerated; if the cap is hit the
        result is still a valid upper bound on ``J*_G``, just not exhaustive.
    """
    check_memory_size(M)
    check_positive_int(max_orders, "max_orders")
    best: Optional[SimulationResult] = None
    for order in all_topological_orders(graph, limit=max_orders):
        for policy in policies:
            result = simulate_order(graph, order, M, policy=policy, validate_order=False)
            if best is None or result.total_io < best.total_io:
                best = result
        if best is not None and best.total_io == 0:
            break  # cannot do better than zero
    if best is None:
        # Empty graph: zero vertices, zero I/O.
        best = SimulationResult(
            total_io=0,
            reads=0,
            writes=0,
            trivial_reads=0,
            trivial_writes=0,
            max_resident=0,
            memory_size=M,
            policy=policies[0] if policies else "belady",
        )
    return best


def minimum_io_upper_bound(
    graph: ComputationGraph,
    M: int,
    policies: Sequence[str] = ("belady", "lru"),
    num_random_orders: int = 5,
) -> SimulationResult:
    """Heuristic upper bound on ``J*_G`` for medium graphs.

    Tries the deterministic schedulers plus several random topological orders
    under each policy and returns the best simulation.  Used in the sandwich
    benchmarks where exhaustive enumeration is impossible.
    """
    check_memory_size(M)
    return best_simulated_io(
        graph,
        M,
        schedulers=("natural", "dfs", "min-live"),
        policies=policies,
        num_random_orders=num_random_orders,
    )
