"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in fully offline environments that lack the
``wheel`` package required by PEP 660 editable installs:

    python setup.py develop --no-deps      # legacy editable install
    # or simply run pytest from the repository root (conftest.py adds src/).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
