"""Tests for the graph partitioners (METIS substitute)."""

from __future__ import annotations

import pytest

from repro.baselines.partitioner import (
    contiguous_topological_partition,
    spectral_bisection_partition,
)
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import chain_graph, fft_graph, hypercube_graph


def assert_is_partition(graph, parts):
    covered = sorted(v for part in parts for v in part)
    assert covered == list(graph.vertices())


class TestContiguousPartition:
    def test_respects_max_size(self):
        g = fft_graph(3)
        parts = contiguous_topological_partition(g, max_part_size=10)
        assert_is_partition(g, parts)
        assert all(len(p) <= 10 for p in parts)

    def test_balanced_sizes(self):
        g = chain_graph(10)
        parts = contiguous_topological_partition(g, max_part_size=4)
        sizes = sorted(len(p) for p in parts)
        assert max(sizes) - min(sizes) <= 1

    def test_single_part_when_size_large(self):
        g = chain_graph(5)
        parts = contiguous_topological_partition(g, max_part_size=100)
        assert len(parts) == 1

    def test_empty_graph(self):
        assert contiguous_topological_partition(ComputationGraph(), 4) == []

    def test_parts_are_schedule_prefixes(self):
        """Each part is contiguous in a topological order, so no edge can go
        from a later part back into an earlier part."""
        g = fft_graph(3)
        parts = contiguous_topological_partition(g, max_part_size=8)
        part_of = {}
        for i, part in enumerate(parts):
            for v in part:
                part_of[v] = i
        for u, v in g.edges():
            assert part_of[u] <= part_of[v]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            contiguous_topological_partition(chain_graph(3), 0)


class TestSpectralBisection:
    def test_two_way_split_of_hypercube(self):
        g = hypercube_graph(4)
        parts = spectral_bisection_partition(g, 2)
        assert_is_partition(g, parts)
        assert len(parts) == 2
        sizes = [len(p) for p in parts]
        assert min(sizes) >= g.num_vertices // 4  # reasonably balanced

    def test_four_way_split(self):
        g = fft_graph(3)
        parts = spectral_bisection_partition(g, 4)
        assert_is_partition(g, parts)
        assert len(parts) >= 3  # recursion may merge tiny parts

    def test_single_part(self):
        g = chain_graph(6)
        parts = spectral_bisection_partition(g, 1)
        assert parts == [list(range(6))]

    def test_single_vertex_graph(self):
        g = ComputationGraph(1)
        parts = spectral_bisection_partition(g, 2)
        assert_is_partition(g, parts)

    def test_empty_graph(self):
        assert spectral_bisection_partition(ComputationGraph(), 2) == []

    def test_chain_split_is_contiguousish(self):
        """The Fiedler vector of a path orders vertices along the path, so the
        bisection should produce two halves with a single crossing edge."""
        g = chain_graph(16)
        parts = spectral_bisection_partition(g, 2)
        part_of = {}
        for i, part in enumerate(parts):
            for v in part:
                part_of[v] = i
        crossing = sum(1 for u, v in g.edges() if part_of[u] != part_of[v])
        assert crossing == 1
