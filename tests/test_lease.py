"""Tests for the cross-process solve lease (`SpectrumStore.acquire_lease`).

The lease is what turns a fleet of shared-nothing worker processes into a
coherent serving tier: concurrent cold misses on one spectrum — across
threads, processes, or both — must pay exactly one eigensolve, and a
leader that dies mid-solve must hand its lease over instead of wedging
its followers.  Three layers are covered: the on-disk lease mechanics
(acquire/heartbeat/release, staleness via ttl and dead pids), recovery
(a SIGKILLed leader process), and the end-to-end guarantee through
:class:`SpectrumCache` in two genuinely separate processes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.graphs.generators import fft_graph
from repro.runtime.store import (
    DEFAULT_LEASE_TTL_SECONDS,
    LEASE_TTL_ENV_VAR,
    SpectrumStore,
    default_lease_ttl,
)
from repro.solvers.spectrum_cache import SpectrumCache

FINGERPRINT = "f" * 40
OTHER_FINGERPRINT = "0" * 40


@pytest.fixture
def store(tmp_path):
    return SpectrumStore(tmp_path / "spectra", lease_ttl=5.0)


def lease_file(store: SpectrumStore, fingerprint: str = FINGERPRINT):
    return store._lease_path(fingerprint, True, False, None, "exact")


def write_lease_file(store: SpectrumStore, **overrides) -> None:
    """Plant a lease file as some other holder would have written it."""
    from repro.runtime.store import _HOSTNAME

    now = time.time()
    meta = {
        "pid": os.getpid(),
        "host": _HOSTNAME,
        "token": "planted-token",
        "fingerprint": FINGERPRINT,
        "variant": "exact",
        "created_at": now,
        "heartbeat_at": now,
        "ttl": 30.0,
    }
    meta.update(overrides)
    path = lease_file(store)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(meta))


class TestLeaseTtlConfig:
    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv(LEASE_TTL_ENV_VAR, raising=False)
        assert default_lease_ttl() == DEFAULT_LEASE_TTL_SECONDS
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "12.5")
        assert default_lease_ttl() == 12.5
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "-3")
        assert default_lease_ttl() == 0.0  # disabled, not negative
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "junk")
        assert default_lease_ttl() == DEFAULT_LEASE_TTL_SECONDS

    def test_disabled_leasing_refuses_to_acquire(self, tmp_path):
        disabled = SpectrumStore(tmp_path / "s", lease_ttl=0)
        assert disabled.lease_ttl == 0.0
        with pytest.raises(ValueError):
            disabled.acquire_lease(FINGERPRINT)

    def test_store_stats_report_the_ttl_and_lease_counts(self, store):
        lease = store.acquire_lease(FINGERPRINT)
        stats = store.stats()
        assert stats["lease_ttl"] == 5.0
        assert stats["active_leases"] == 1
        assert stats["stale_leases"] == 0
        lease.release()
        assert store.stats()["active_leases"] == 0


class TestSolveLease:
    def test_acquire_is_exclusive_until_released(self, store):
        lease = store.acquire_lease(FINGERPRINT)
        assert lease is not None
        assert store.acquire_lease(FINGERPRINT) is None  # held
        # A different spectrum is a different lease.
        other = store.acquire_lease(OTHER_FINGERPRINT)
        assert other is not None
        [row_a, row_b] = sorted(store.leases(), key=lambda r: r["fingerprint"])
        assert {row_a["stale"], row_b["stale"]} == {False}
        lease.release()
        lease.release()  # idempotent
        other.release()
        assert store.leases() == []
        with store.acquire_lease(FINGERPRINT) as again:  # context-manager form
            assert again is not None
        assert store.leases() == []

    def test_truncation_is_not_part_of_the_lease_key(self, store):
        # Every h of one spectrum contends for a single lease: that is what
        # lets different-M queries on one graph coalesce onto one solve.
        assert lease_file(store) == store._lease_path(
            FINGERPRINT, True, False, None, "exact"
        )
        # ...but normalisation (like any key ingredient) splits it.
        assert lease_file(store) != store._lease_path(
            FINGERPRINT, False, False, None, "exact"
        )

    def test_wait_returns_released_when_the_leader_publishes(self, store):
        lease = store.acquire_lease(FINGERPRINT)
        timer = threading.Timer(0.2, lease.release)
        timer.start()
        try:
            outcome = store.wait_for_lease(FINGERPRINT, timeout=10.0)
        finally:
            timer.cancel()
        assert outcome == "released"

    def test_wait_times_out_under_a_live_leader(self, store):
        with store.acquire_lease(FINGERPRINT):
            start = time.monotonic()
            outcome = store.wait_for_lease(FINGERPRINT, timeout=0.3)
            assert outcome == "timeout"
            assert time.monotonic() - start < 5.0

    def test_heartbeat_keeps_a_short_ttl_lease_alive(self, store):
        lease = store.acquire_lease(FINGERPRINT, ttl=0.3)
        try:
            time.sleep(1.0)  # several ttls; the heartbeat must carry it
            assert store.acquire_lease(FINGERPRINT, ttl=0.3) is None
            [row] = store.leases()
            assert row["stale"] is False
        finally:
            lease.release()

    def test_expired_heartbeat_is_taken_over(self, store):
        lease = store.acquire_lease(FINGERPRINT, ttl=0.2)
        # Stop the heartbeat without releasing: a leader that froze.
        lease._stop.set()
        lease._heartbeat.join(timeout=2.0)
        time.sleep(0.5)
        assert store.wait_for_lease(FINGERPRINT, timeout=5.0) == "stale"
        takeover = store.acquire_lease(FINGERPRINT)
        assert takeover is not None
        # The zombie's release must not clobber the new holder's lease.
        lease.release()
        [row] = store.leases()
        assert row["stale"] is False
        takeover.release()

    def test_dead_pid_on_this_host_is_stale_before_the_ttl(self, store):
        reaper = multiprocessing.get_context("fork").Process(target=lambda: None)
        reaper.start()
        reaper.join()
        write_lease_file(store, pid=reaper.pid, ttl=3600.0)
        start = time.monotonic()
        assert store.wait_for_lease(FINGERPRINT, timeout=30.0) == "stale"
        assert time.monotonic() - start < 5.0  # dead-pid path, not the ttl
        takeover = store.acquire_lease(FINGERPRINT)
        assert takeover is not None
        takeover.release()

    def test_corrupt_lease_file_is_taken_over(self, store):
        path = lease_file(store)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{half a lease")
        assert store.wait_for_lease(FINGERPRINT, timeout=5.0) == "stale"
        takeover = store.acquire_lease(FINGERPRINT)
        assert takeover is not None
        takeover.release()

    def test_verify_reports_and_fix_removes_stale_leases(self, store):
        write_lease_file(store, heartbeat_at=time.time() - 3600.0, ttl=1.0)
        live = store.acquire_lease(OTHER_FINGERPRINT)
        report = store.verify()
        assert report["ok"] is False
        assert len(report["stale_leases"]) == 1
        assert report["active_leases"] == 1
        fixed = store.verify(fix=True)
        assert fixed["leases_removed"] == 1
        live.release()
        assert store.verify()["ok"] is True


def _hold_lease_until_killed(root, ready):
    """Child process: take the lease with a long ttl, then hang."""
    store = SpectrumStore(root, lease_ttl=30.0)
    lease = store.acquire_lease(FINGERPRINT)
    assert lease is not None
    ready.set()
    time.sleep(600)  # killed long before this returns


class TestKilledLeaderRecovery:
    def test_sigkilled_leader_hands_over_without_waiting_out_the_ttl(self, tmp_path):
        # The stale-lease satellite: a leader killed mid-solve must not
        # wedge its followers for the 30 s ttl — the dead-pid check hands
        # the lease over as soon as a follower looks.
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        root = tmp_path / "spectra"
        leader = ctx.Process(target=_hold_lease_until_killed, args=(root, ready))
        leader.start()
        try:
            assert ready.wait(timeout=30.0)
            store = SpectrumStore(root, lease_ttl=30.0)
            assert store.acquire_lease(FINGERPRINT) is None  # genuinely held
            os.kill(leader.pid, signal.SIGKILL)
            leader.join(timeout=10.0)
            start = time.monotonic()
            outcome = store.wait_for_lease(FINGERPRINT, timeout=60.0)
            elapsed = time.monotonic() - start
            assert outcome == "stale"
            assert elapsed < 10.0  # nowhere near the 30 s ttl
            takeover = store.acquire_lease(FINGERPRINT)
            assert takeover is not None
            takeover.release()
        finally:
            if leader.is_alive():
                leader.kill()
                leader.join(timeout=5.0)


def _cold_solve_worker(root, barrier, results):
    """Child process: one cold spectrum lookup through its own cache."""
    store = SpectrumStore(root, lease_ttl=30.0)
    cache = SpectrumCache(store=store)
    graph = fft_graph(3)
    barrier.wait(timeout=60.0)
    spectrum = cache.spectrum(graph, 8)
    results.put(
        {
            "pid": os.getpid(),
            "eigenvalues": [float(v) for v in spectrum.eigenvalues],
            "misses": cache.misses,
            "leaders": cache.lease_leaders,
            "followers": cache.lease_followers,
        }
    )


class TestCrossProcessCoalescing:
    def test_two_processes_cold_solving_pay_one_eigensolve(self, tmp_path):
        # The cross-process satellite: two *processes* (not threads) race a
        # cold miss on the same fingerprint; the lease must collapse them
        # to exactly one eigensolve, both get the same answer, and the
        # store index survives uncorrupted.
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        results_queue = ctx.Queue()
        root = tmp_path / "spectra"
        workers = [
            ctx.Process(target=_cold_solve_worker, args=(root, barrier, results_queue))
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        try:
            results = [results_queue.get(timeout=120.0) for _ in workers]
        finally:
            for proc in workers:
                proc.join(timeout=30.0)
                if proc.is_alive():
                    proc.kill()
        assert all(proc.exitcode == 0 for proc in workers)
        assert len({result["pid"] for result in results}) == 2

        # Exactly one eigensolve across both processes...
        assert sum(result["misses"] for result in results) == 1
        assert sum(result["leaders"] for result in results) <= 1
        store = SpectrumStore(root)
        assert store.stats()["solves_recorded"] == 1
        # ...both processes hold the identical spectrum...
        first, second = (np.asarray(result["eigenvalues"]) for result in results)
        assert first.shape == (8,)
        np.testing.assert_array_equal(first, second)
        # ...and the shared index is intact, with no lease left behind.
        report = store.verify()
        assert report["ok"] is True
        assert store.leases() == []

    def test_thread_local_caches_coalesce_through_the_store(self, tmp_path):
        # Same guarantee inside one process: two independent caches (as two
        # fleet workers would hold) over one store, racing a cold miss.
        store_a = SpectrumStore(tmp_path / "spectra", lease_ttl=30.0)
        store_b = SpectrumStore(tmp_path / "spectra", lease_ttl=30.0)
        caches = [SpectrumCache(store=store_a), SpectrumCache(store=store_b)]
        graph = fft_graph(3)
        barrier = threading.Barrier(2)
        outcomes = [None, None]

        def lookup(index):
            barrier.wait(timeout=30.0)
            outcomes[index] = caches[index].spectrum(graph, 8)

        threads = [
            threading.Thread(target=lookup, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert all(outcome is not None for outcome in outcomes)
        np.testing.assert_array_equal(
            outcomes[0].eigenvalues, outcomes[1].eigenvalues
        )
        assert sum(cache.misses for cache in caches) == 1
        assert sum(cache.lease_leaders for cache in caches) <= 1
        assert store_a.stats()["solves_recorded"] == 1
        assert store_a.leases() == []

    def test_disabled_leasing_still_solves(self, tmp_path):
        store = SpectrumStore(tmp_path / "spectra", lease_ttl=0)
        cache = SpectrumCache(store=store)
        spectrum = cache.spectrum(fft_graph(3), 8)
        assert spectrum.eigenvalues.shape == (8,)
        assert cache.misses == 1
        assert cache.lease_leaders == 0 and cache.lease_followers == 0
