"""Tests for the closed-form spectra (hypercube, weighted paths, butterfly).

These are the numerical verifications of the analytical results of Section 5
and Appendix A: every closed-form spectrum is compared against the dense
spectrum of the explicitly constructed graph/matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spectra import (
    butterfly_laplacian_spectrum,
    butterfly_path_decomposition,
    butterfly_smallest_eigenvalues,
    butterfly_spectrum_array,
    hypercube_laplacian_spectrum,
    hypercube_spectrum_array,
    path_spectrum,
    path_spectrum_one_weighted_end,
    path_spectrum_two_weighted_ends,
    weighted_path_laplacian,
)
from repro.graphs.generators import fft_graph, hypercube_graph
from repro.graphs.laplacian import laplacian
from repro.solvers.dense import dense_spectrum


class TestHypercubeSpectrum:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_matches_numeric(self, d):
        numeric = dense_spectrum(laplacian(hypercube_graph(d), normalized=False))
        closed = hypercube_spectrum_array(d)
        np.testing.assert_allclose(np.sort(numeric), closed, atol=1e-8)

    def test_multiplicities_sum_to_vertex_count(self):
        for d in range(6):
            total = sum(m for _, m in hypercube_laplacian_spectrum(d))
            assert total == 2**d

    def test_values_are_even_integers(self):
        for value, _ in hypercube_laplacian_spectrum(6):
            assert value == pytest.approx(round(value))
            assert round(value) % 2 == 0


class TestWeightedPathSpectra:
    """Lemma 11: spectra of P_i, P'_i and P''_i."""

    @pytest.mark.parametrize("i", [1, 2, 3, 5, 8])
    def test_plain_path(self, i):
        numeric = np.linalg.eigvalsh(weighted_path_laplacian(i, weighted_ends=0))
        np.testing.assert_allclose(np.sort(numeric), path_spectrum(i), atol=1e-9)

    @pytest.mark.parametrize("i", [1, 2, 3, 5, 8])
    def test_one_weighted_end(self, i):
        numeric = np.linalg.eigvalsh(weighted_path_laplacian(i, weighted_ends=1))
        np.testing.assert_allclose(
            np.sort(numeric), path_spectrum_one_weighted_end(i), atol=1e-9
        )

    @pytest.mark.parametrize("i", [1, 2, 3, 5, 8])
    def test_two_weighted_ends(self, i):
        numeric = np.linalg.eigvalsh(weighted_path_laplacian(i, weighted_ends=2))
        np.testing.assert_allclose(
            np.sort(numeric), path_spectrum_two_weighted_ends(i), atol=1e-9
        )

    def test_odd_eigenvalue_relation(self):
        """λ(P'_i) are the odd-indexed eigenvalues of P_{2i+1} (Lemma 11 proof)."""
        i = 4
        full = path_spectrum(2 * i + 1)
        odd = np.sort(full)[1::2]
        np.testing.assert_allclose(np.sort(path_spectrum_one_weighted_end(i)), odd, atol=1e-9)

    def test_invalid_weighted_ends(self):
        with pytest.raises(ValueError):
            weighted_path_laplacian(3, weighted_ends=3)


class TestButterflySpectrum:
    """Theorem 7: the unwrapped butterfly spectrum including multiplicities."""

    @pytest.mark.parametrize("levels", [0, 1, 2, 3, 4, 5])
    def test_matches_numeric_butterfly_graph(self, levels):
        numeric = dense_spectrum(laplacian(fft_graph(levels), normalized=False))
        closed = butterfly_spectrum_array(levels)
        assert closed.shape[0] == (levels + 1) * 2**levels
        np.testing.assert_allclose(np.sort(numeric), closed, atol=1e-7)

    @pytest.mark.parametrize("levels", [1, 2, 3, 4, 6, 8])
    def test_total_multiplicity(self, levels):
        total = sum(m for _, m in butterfly_laplacian_spectrum(levels))
        assert total == (levels + 1) * 2**levels

    def test_b1_is_a_4_cycle(self):
        np.testing.assert_allclose(butterfly_spectrum_array(1), [0.0, 2.0, 2.0, 4.0], atol=1e-12)

    def test_smallest_eigenvalue_is_zero_and_unique(self):
        spec = butterfly_spectrum_array(4)
        assert spec[0] == pytest.approx(0.0, abs=1e-12)
        assert spec[1] > 1e-6  # the butterfly is connected

    def test_path_decomposition_counts(self):
        """Lemma 10: the decomposition contains the right number of paths."""
        levels = 4
        decomposition = butterfly_path_decomposition(levels)
        total_vertices = sum(length * count for _, length, count in decomposition)
        assert total_vertices == (levels + 1) * 2**levels
        kinds = {kind for kind, _, _ in decomposition}
        assert kinds == {"P", "P'", "P''"}

    def test_smallest_eigenvalues_helper(self):
        smallest = butterfly_smallest_eigenvalues(3, 5)
        assert smallest.shape == (5,)
        assert np.all(np.diff(smallest) >= -1e-12)
        with pytest.raises(ValueError):
            butterfly_smallest_eigenvalues(1, 100)

    def test_spectrum_assembled_from_path_spectra(self):
        """The multiset union of the decomposition's path spectra is the
        butterfly spectrum (Lemma 10 + Lemma 11)."""
        levels = 3
        values = []
        for kind, length, count in butterfly_path_decomposition(levels):
            if kind == "P":
                spec = path_spectrum(length)
            elif kind == "P'":
                spec = path_spectrum_one_weighted_end(length)
            else:
                spec = path_spectrum_two_weighted_ends(length)
            for _ in range(count):
                values.extend(spec.tolist())
        np.testing.assert_allclose(
            np.sort(np.asarray(values)), butterfly_spectrum_array(levels), atol=1e-9
        )
